#!/usr/bin/env bash
# Regenerates every paper artifact (figures + worked examples) into
# results/, then runs the micro-benchmarks. See EXPERIMENTS.md for the
# expected shapes. Total runtime: a few minutes for the experiments plus
# a few more for the micro-benchmarks.
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(sec22_example fig2 sec31_example fig4 fig5 fig6 fig7 fig9 wfi_table delay_bound_table complexity_tail)

cargo build --release -p hpfq-bench

for b in "${BINS[@]}"; do
    echo "==================================================================="
    echo "== $b"
    echo "==================================================================="
    cargo run --release -q -p hpfq-bench --bin "$b"
    echo
done

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    cargo bench --workspace
fi
