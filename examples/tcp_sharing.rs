//! TCP flows under hierarchical link sharing: the scheduler, not TCP's
//! own dynamics, dictates each flow's bandwidth (paper §5.2 in miniature;
//! the full Fig. 8/9 experiment is `cargo run -p hpfq-bench --bin fig9`).
//!
//! ```text
//! cargo run --release --example tcp_sharing
//! ```
//!
//! Three greedy Reno connections with H-WF²Q+ shares 0.5 / 0.3 / 0.2,
//! plus an on/off CBR source that steals half the link for two seconds in
//! the middle — watch the TCPs shrink proportionally and recover.

use hpfq::core::{Hierarchy, Wf2qPlus};
use hpfq::sim::{ScheduledOnOffSource, Simulation, SourceConfig};
use hpfq::tcp::{TcpConfig, TcpSource};

const LINK: f64 = 8e6;

fn main() {
    let mut bld = Hierarchy::builder(LINK, Wf2qPlus::new);
    let root = bld.root();
    let tcp_class = bld.add_internal(root, 0.5).unwrap();
    let burst_leaf = bld.add_leaf(root, 0.5).unwrap();
    let shares = [0.5, 0.3, 0.2];
    let tcp_leaves: Vec<_> = shares
        .iter()
        .map(|&s| bld.add_leaf(tcp_class, s).unwrap())
        .collect();

    let mut sim = Simulation::new(bld.build());
    for (i, &leaf) in tcp_leaves.iter().enumerate() {
        let flow = i as u32;
        sim.stats.trace_flow(flow);
        sim.add_source(
            flow,
            TcpSource::new(
                flow,
                TcpConfig {
                    mss_bytes: 1024,
                    ack_delay: 0.002,
                    ..TcpConfig::default()
                },
            ),
            SourceConfig {
                leaf,
                buffer_bytes: Some(8 * 1024),
                delivery_delay: 0.002,
            },
        );
    }
    // The on/off source claims its 50% share during [2, 4) s.
    sim.add_source(
        9,
        ScheduledOnOffSource::new(9, 1024, 3.9e6, vec![(2.0, 4.0)]),
        SourceConfig {
            leaf: burst_leaf,
            buffer_bytes: Some(16 * 1024),
            delivery_delay: 0.0,
        },
    );
    sim.run(6.0);

    println!("TCP bandwidth (Mbit/s) under H-WF2Q+ shares 0.5/0.3/0.2 of their class:\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "window", "tcp-0 (0.5)", "tcp-1 (0.3)", "tcp-2 (0.2)"
    );
    for (t0, t1) in [(1.0, 2.0), (2.5, 4.0), (4.5, 6.0)] {
        let bws: Vec<f64> = (0..3)
            .map(|f| hpfq::analysis::measures::bandwidth_over(sim.stats.trace(f), t0, t1) / 1e6)
            .collect();
        println!(
            "[{t0},{t1})s {:>12.2} {:>12.2} {:>12.2}",
            bws[0], bws[1], bws[2]
        );
    }
    println!();
    println!("with the burst idle the TCPs split the whole 8 Mbit/s 5:3:2;");
    println!("while it is active they split their class's 4 Mbit/s 5:3:2.");
}
