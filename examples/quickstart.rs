//! Quickstart: a standalone WF²Q+ server with three weighted sessions.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a depth-1 hierarchy (= one WF²Q+ server), enqueues a burst on
//! every session, and prints the transmission order: bandwidth splits
//! 50/30/20 at per-packet granularity, and no session can hog the link
//! even though session A's whole burst is queued first.

use hpfq::core::{Hierarchy, Packet, Wf2qPlus};

fn main() {
    // 1 Mbit/s link; shares must sum to at most 1.
    let mut server = Hierarchy::builder(1_000_000.0, Wf2qPlus::new).build();
    let root = server.root();
    let a = server.add_leaf(root, 0.5).expect("valid share");
    let b = server.add_leaf(root, 0.3).expect("valid share");
    let c = server.add_leaf(root, 0.2).expect("valid share");

    // 1500-byte packets; session A enqueues its burst first.
    let mut id = 0;
    for (flow, leaf, count) in [(0u32, a, 10), (1, b, 6), (2, c, 4)] {
        for _ in 0..count {
            id += 1;
            server.enqueue(leaf, Packet::new(id, flow, 1500, 0.0));
        }
    }

    println!("transmission order (flow ids, shares 0.5/0.3/0.2):");
    let mut counts = [0usize; 3];
    let mut order = Vec::new();
    while let Some(pkt) = server.dequeue() {
        counts[pkt.flow as usize] += 1;
        order.push(pkt.flow);
    }
    println!("  {order:?}");
    println!("packets served per flow: {counts:?}");

    // Check the 5:3:2 split over the first 10 slots.
    let first10 = &order[..10];
    let split: Vec<usize> = (0..3)
        .map(|f| first10.iter().filter(|&&x| x == f).count())
        .collect();
    println!("first 10 slots split: {split:?} (ideal 5/3/2)");
}
