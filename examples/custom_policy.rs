//! Custom scheduling policies on the PIFO substrate — defined entirely
//! outside `hpfq-core`.
//!
//! ```text
//! cargo run --example custom_policy
//! ```
//!
//! The seven in-tree policies are rank programs plugged into
//! [`PifoTree`]; this example shows the same extension point is open to
//! downstream code. Two programs are defined here, with no access to
//! `hpfq-core` internals:
//!
//! * [`PriorityRank`] — weighted strict priority: a session's share picks
//!   its priority class (larger share = served first), FIFO within a
//!   class. A newly backlogged high-priority session preempts the queue
//!   order, so ranks are *not* monotone and the program exercises the
//!   general dual-heap path.
//! * [`SjfRank`] — shortest-job-first: the pending head's length is its
//!   rank, ties in offer order. Starvation-prone by design — it's the
//!   classic counterexample the fair-queueing policies exist to fix, which
//!   makes it a nice smoke test that the substrate doesn't smuggle in
//!   fairness of its own.
//!
//! Both implement only the required hooks (`name`, `rank_backlog`,
//! `rank_continuation`) plus checkpointing for the sequence counter; the
//! eligibility threshold, admission, and virtual-clock hooks keep their
//! defaults.

use hpfq::core::{Hierarchy, Packet, PifoTree, Rank, RankProgram, SessionId, SessionTable};
use hpfq::obs::snap::{SnapError, Value};

/// Weighted strict priority: serve the largest-share backlogged session,
/// FIFO within equal shares.
#[derive(Debug, Clone, Default)]
struct PriorityRank {
    /// Offer counter for FIFO order within a priority class.
    seq: f64,
}

impl RankProgram for PriorityRank {
    fn name(&self) -> &'static str {
        "strict-priority"
    }

    fn rank_backlog(
        &mut self,
        id: SessionId,
        sessions: &mut SessionTable,
        _head_bits: f64,
        _ref_now: Option<f64>,
        _ref_time: f64,
    ) -> Rank {
        // Larger share = smaller primary key = served first.
        self.seq += 1.0;
        Rank::open(-sessions.phi(id), self.seq)
    }

    fn rank_continuation(&mut self, id: SessionId, sessions: &mut SessionTable, _bits: f64) -> Rank {
        self.seq += 1.0;
        Rank::open(-sessions.phi(id), self.seq)
    }

    fn on_busy_reset(&mut self) {
        self.seq = 0.0;
    }

    fn save_state(&self) -> Value {
        Value::map(vec![("seq", Value::F64(self.seq))])
    }

    fn load_state(&mut self, state: &Value, _sessions: &SessionTable) -> Result<(), SnapError> {
        self.seq = state.get("seq")?.as_f64()?;
        Ok(())
    }
}

/// Shortest-job-first: the head packet's length is its rank.
#[derive(Debug, Clone, Default)]
struct SjfRank {
    seq: f64,
}

impl RankProgram for SjfRank {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn rank_backlog(
        &mut self,
        _id: SessionId,
        _sessions: &mut SessionTable,
        head_bits: f64,
        _ref_now: Option<f64>,
        _ref_time: f64,
    ) -> Rank {
        self.seq += 1.0;
        Rank::open(head_bits, self.seq)
    }

    fn rank_continuation(&mut self, _id: SessionId, _sessions: &mut SessionTable, bits: f64) -> Rank {
        self.seq += 1.0;
        Rank::open(bits, self.seq)
    }

    fn on_busy_reset(&mut self) {
        self.seq = 0.0;
    }
}

/// Runs a 3-leaf server under the given program and returns the flow ids
/// in transmission order.
fn serve_order<P: RankProgram + Clone + 'static>(
    program: P,
    sizes: [u32; 3],
) -> (Vec<u32>, &'static str) {
    let name = program.name();
    let mut server = Hierarchy::builder(1_000_000.0, move |rate| {
        PifoTree::new(rate, program.clone())
    })
    .build();
    let root = server.root();
    let leaves = [
        server.add_leaf(root, 0.5).expect("valid share"),
        server.add_leaf(root, 0.3).expect("valid share"),
        server.add_leaf(root, 0.2).expect("valid share"),
    ];
    let mut id = 0;
    // Low-priority / long flows enqueue their whole bursts first.
    for flow in (0..3u32).rev() {
        for _ in 0..4 {
            id += 1;
            server.enqueue(
                leaves[flow as usize],
                Packet::new(id, flow, sizes[flow as usize], 0.0),
            );
        }
    }
    let mut order = Vec::new();
    while let Some(pkt) = server.dequeue() {
        order.push(pkt.flow);
    }
    (order, name)
}

fn main() {
    // Equal packet sizes: flow 2's first packet is already in service
    // when the higher classes arrive (service is non-preemptive), then
    // strict priority drains flow 0 (share 0.5), then 1, then 2 — even
    // though flow 2 enqueued its whole burst first.
    let (order, name) = serve_order(PriorityRank::default(), [1500, 1500, 1500]);
    println!("{name:>16}: {order:?}");
    assert_eq!(order, [2, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]);

    // Distinct sizes: SJF serves 300-byte packets before 800-byte before
    // 1500-byte, regardless of shares or arrival order.
    let (order, name) = serve_order(SjfRank::default(), [1500, 800, 300]);
    println!("{name:>16}: {order:?}");
    assert_eq!(order, [2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0]);

    println!("custom rank programs ran on the PIFO substrate: ok");
}
