//! Observability end-to-end: trace a run to JSONL, aggregate metrics,
//! check the paper's invariants online, then re-read the trace offline.
//!
//! ```text
//! cargo run --release --example observability [trace-path]
//! ```
//!
//! A two-agency hierarchy on a 1 Mbit/s link carries four CBR flows for
//! five seconds while three sinks watch: a [`JsonlObserver`] streaming
//! every event to `trace-path` (default `/tmp/hpfq-trace.jsonl`), a
//! [`MetricsObserver`] aggregating counters and delay histograms, and an
//! [`InvariantObserver`] checking tag order, virtual-time monotonicity,
//! SEFF eligibility, and work conservation as the run happens. The trace
//! is then parsed back and the per-packet service records rebuilt without
//! re-simulating.

use std::io::BufWriter;

use hpfq::analysis::service_records_from_trace;
use hpfq::obs::jsonl::parse_trace;
use hpfq::obs::{InvariantObserver, JsonlObserver, MetricsObserver};
use hpfq::sim::{CbrSource, Simulation, SourceConfig};
use hpfq::{Hierarchy, Wf2qPlus};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/hpfq-trace.jsonl".into());
    let file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
    let sinks = (
        JsonlObserver::new(BufWriter::new(file)),
        (MetricsObserver::new(), InvariantObserver::new()),
    );

    // 1 Mbit/s link, two agencies (60/40), two leaves each.
    let mut bld = Hierarchy::builder_with_observer(1e6, Wf2qPlus::new, sinks);
    let root = bld.root();
    let a = bld.add_internal(root, 0.6).expect("valid share");
    let b = bld.add_internal(root, 0.4).expect("valid share");
    let leaves = [
        bld.add_leaf(a, 0.5).expect("valid share"),
        bld.add_leaf(a, 0.5).expect("valid share"),
        bld.add_leaf(b, 0.5).expect("valid share"),
        bld.add_leaf(b, 0.5).expect("valid share"),
    ];

    let mut sim = Simulation::new(bld.build());
    for (i, &leaf) in leaves.iter().enumerate() {
        let flow = i as u32;
        // 0.35 Mbit/s each: 1.4x oversubscribed, so queues build and the
        // delay histograms have something to show.
        sim.add_source(
            flow,
            CbrSource::new(flow, 500, 0.35e6, 0.0, 5.0),
            SourceConfig::open_loop(leaf),
        );
    }
    sim.run(5.0);

    let total = sim.stats.total_packets;
    let (jsonl, (metrics, invariants)) = sim.into_observer();
    assert_eq!(jsonl.write_errors, 0, "trace writes failed");
    drop(jsonl.into_inner()); // flush the BufWriter before re-reading
    println!("simulated 5 s: {total} packets transmitted");
    println!(
        "invariants: {}",
        if invariants.is_clean() {
            format!("clean ({} events checked)", invariants.events_checked)
        } else {
            invariants.summary()
        }
    );
    println!("\n{}", metrics.report());

    // Offline pass: re-read the trace and rebuild service records.
    let text = std::fs::read_to_string(&path).expect("trace readable");
    let (events, skipped) = parse_trace(&text);
    let (records, anomalies) = service_records_from_trace(&events);
    println!(
        "offline: {} trace lines -> {} events ({} unparseable), \
         {} service records rebuilt ({:?})",
        text.lines().count(),
        events.len(),
        skipped,
        records.len(),
        anomalies,
    );
    assert_eq!(records.len() as u64, total, "offline/live mismatch");
    println!("trace written to {path}");
}
