//! Real-time delay under H-WFQ vs H-WF²Q+ — a compact version of the
//! paper's §5.1 experiment (the full Fig. 3 scenario lives in
//! `cargo run -p hpfq-bench --bin fig4`).
//!
//! ```text
//! cargo run --release --example realtime_delay
//! ```
//!
//! A periodic real-time session shares its class with a backlogged
//! best-effort session while bursty cross traffic hits the link. H-WFQ
//! lets the class run ahead of its fluid schedule and then starves it —
//! delay spikes; H-WF²Q+ keeps every packet under the Corollary-2 bound.

use hpfq::analysis::corollary2_bound;
use hpfq::core::{Hierarchy, SchedulerKind};
use hpfq::sim::{CbrSource, PacketTrainSource, PeriodicOnOffSource, Simulation, SourceConfig};

const LINK: f64 = 10e6;
const PKT: u32 = 1500;

fn run(kind: SchedulerKind) -> (f64, f64, Vec<f64>) {
    let mut bld = Hierarchy::builder(LINK, move |r| kind.build(r));
    let root = bld.root();
    let class = bld.add_internal(root, 0.5).unwrap();
    let rt = bld.add_leaf(class, 0.5).unwrap(); // 2.5 Mbit/s guarantee
    let be = bld.add_leaf(class, 0.5).unwrap();
    let mut cross = Vec::new();
    for _ in 0..10 {
        cross.push(bld.add_leaf(root, 0.05).unwrap());
    }
    let rt_rate = bld.rate(rt);
    let class_rate = bld.rate(class);

    let mut sim = Simulation::new(bld.build());
    sim.stats.trace_flow(0);
    // RT: sparse packets into a usually-empty queue (the §3.1 victim
    // pattern), slightly offset from the cross-traffic period.
    sim.add_source(
        0,
        PeriodicOnOffSource::new(0, PKT, rt_rate, 0.005, 0.041, 0.013, f64::INFINITY),
        SourceConfig::open_loop(rt),
    );
    // BE floods the class, letting it run ahead of its fluid schedule
    // under H-WFQ.
    sim.add_source(
        1,
        CbrSource::new(1, PKT, LINK, 0.0, f64::INFINITY),
        SourceConfig::open_loop(be),
    );
    // Cross traffic: slow trains on each 5% session — queued packets with
    // far-future finish tags, the fuel for WFQ's run-ahead.
    for (i, &leaf) in cross.iter().enumerate() {
        let flow = 2 + i as u32;
        sim.add_source(
            flow,
            PacketTrainSource::new(
                flow,
                PKT,
                3,
                0.0012,
                0.067,
                0.067 * i as f64 / 10.0,
                f64::INFINITY,
            ),
            SourceConfig::open_loop(leaf),
        );
    }
    sim.run(20.0);
    let delays: Vec<f64> = sim.stats.trace(0).iter().map(|r| r.delay() * 1e3).collect();
    let max = delays.iter().cloned().fold(0.0, f64::max);
    let bound = corollary2_bound(
        f64::from(PKT) * 8.0,
        f64::from(PKT) * 8.0,
        &[rt_rate, class_rate],
    ) * 1e3;
    (max, bound, delays)
}

fn main() {
    println!("real-time packet delay, same workload, two hierarchies:\n");
    println!(
        "{:<8} {:>12} {:>12} {:>18}",
        "algo", "mean_ms", "max_ms", "corollary2_ms"
    );
    for kind in [
        SchedulerKind::Wfq,
        SchedulerKind::Scfq,
        SchedulerKind::Wf2qPlus,
    ] {
        let (max, bound, delays) = run(kind);
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        let within = if max <= bound {
            "(within bound)"
        } else {
            "(EXCEEDS bound)"
        };
        println!(
            "{:<8} {mean:>12.2} {max:>12.2} {bound:>12.2} {within}",
            kind.name()
        );
    }
    println!("\nonly a small-WFI scheduler (WF2Q+) carries the paper's per-node");
    println!("guarantees into a hierarchy; H-WFQ's worst case degrades with the");
    println!("cross-traffic pattern while H-WF2Q+ stays under Corollary 2.");
}
