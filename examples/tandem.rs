//! End-to-end delay across a 3-hop tandem of links — the network-of-servers
//! story the single-link harness could never tell.
//!
//! ```text
//! cargo run --release --example tandem
//! ```
//!
//! A leaky-bucket session (σ = one packet, ρ = its guaranteed rate 2 Mbit/s)
//! crosses three 10 Mbit/s links, each saturated by 48 backlogged cross
//! sessions. For a rate-proportional server with a one-packet WFI — WF²Q+ —
//! the per-hop delay bound `σ/r_i + L_max/r` (Theorem 4) composes: with
//! σ = L the sum over hops equals the Parekh–Gallager tandem bound
//! `σ/r_i + (H−1)·L/r_i + Σ_h L_max/r_h`, so measured end-to-end delay must
//! sit under `Σ_h (σ/r_i + L_max/r_h)` plus propagation. SCFQ has no such
//! per-hop guarantee — its delay grows with the *number* of competing
//! sessions (`Σ_{j≠i} L_j/r` per hop) — and at every hop the tandem session
//! pays another round of the 48 cross sessions, blowing through the bound.

use hpfq::analysis::{path_records_from_trace, wf2q_plus_delay_bound};
use hpfq::core::{Hierarchy, MixedScheduler, SchedulerKind};
use hpfq::obs::jsonl::parse_trace;
use hpfq::obs::{JsonlObserver, SharedBuf};
use hpfq::sim::{CbrSource, GreedyLbSource, Hop, Network, Route};

const LINK: f64 = 10e6;
const PKT: u32 = 8192; // tandem-session packets (also L_max on every link)
const CROSS_PKT: u32 = 1500;
const HOPS: usize = 3;
const CROSS_PER_LINK: usize = 48;
const PHI_TANDEM: f64 = 0.2; // guaranteed 2 Mbit/s at every hop
const PROP: [f64; HOPS] = [0.001, 0.001, 0.0];

struct RunResult {
    mean_ms: f64,
    max_ms: f64,
    hop_max_ms: [f64; HOPS],
    paths: usize,
}

fn run(kind: SchedulerKind) -> RunResult {
    let buf = SharedBuf::new();
    let mut net: Network<MixedScheduler, JsonlObserver<SharedBuf>> = Network::new();
    let mut hops = Vec::new();
    for (li, &hop_prop) in PROP.iter().enumerate() {
        let mut bld = Hierarchy::<MixedScheduler, _>::builder_with_observer(
            LINK,
            move |r| kind.build(r),
            JsonlObserver::new(buf.clone()),
        );
        let root = bld.root();
        let leaf = bld.add_leaf(root, PHI_TANDEM).unwrap();
        let mut cross_leaves = Vec::new();
        for _ in 0..CROSS_PER_LINK {
            cross_leaves.push(
                bld.add_leaf(root, (1.0 - PHI_TANDEM) / CROSS_PER_LINK as f64)
                    .unwrap(),
            );
        }
        let link = net.add_link(bld.build());
        hops.push(Hop {
            link,
            leaf,
            buffer_bytes: None,
            prop_delay: hop_prop,
        });
        // Each cross session offers 2× its guaranteed share, so all 48 stay
        // backlogged for the whole run (finite buffers keep memory bounded;
        // single-hop drops don't affect the tandem measurement).
        for (ci, &cl) in cross_leaves.iter().enumerate() {
            let flow = 1000 + (li * CROSS_PER_LINK + ci) as u32;
            let share_bps = (1.0 - PHI_TANDEM) * LINK / CROSS_PER_LINK as f64;
            net.add_route(
                flow,
                CbrSource::new(flow, CROSS_PKT, 2.0 * share_bps, 0.0, 2.5),
                Route::new(vec![Hop {
                    link,
                    leaf: cl,
                    buffer_bytes: Some(16 * u64::from(CROSS_PKT)),
                    prop_delay: 0.0,
                }]),
            );
        }
    }
    // The measured session starts once every link is saturated.
    let r_i = PHI_TANDEM * LINK;
    net.add_route(
        0,
        GreedyLbSource::new(0, PKT, PKT, r_i, 0.2, 2.2),
        Route::new(hops),
    );
    net.run(3.5);
    net.verify_conservation().unwrap();

    let (events, skipped) = parse_trace(&buf.contents());
    assert_eq!(skipped, 0, "trace must parse cleanly");
    let (paths, anomalies) = path_records_from_trace(&events);
    assert_eq!(anomalies.unmatched_ends, 0);
    let tandem: Vec<_> = paths
        .iter()
        .filter(|p| p.flow == 0 && p.hops.len() == HOPS)
        .collect();
    assert!(tandem.len() > 40, "only {} complete paths", tandem.len());

    let mut hop_max_ms = [0.0f64; HOPS];
    let mut max_ms = 0.0f64;
    let mut sum_ms = 0.0f64;
    for p in &tandem {
        let e2e = p.end_to_end() * 1e3;
        max_ms = max_ms.max(e2e);
        sum_ms += e2e;
        for (h, m) in hop_max_ms.iter_mut().enumerate() {
            *m = m.max(p.hop_delay(h) * 1e3);
        }
    }
    RunResult {
        mean_ms: sum_ms / tandem.len() as f64,
        max_ms,
        hop_max_ms,
        paths: tandem.len(),
    }
}

fn main() {
    // Composed bound: Σ_h (σ/r_i + L_max/r_h) + inter-hop propagation.
    // (The last hop's prop delay is delivery, outside the traced path.)
    let sigma_bits = f64::from(PKT) * 8.0;
    let l_max_bits = f64::from(PKT) * 8.0;
    let r_i = PHI_TANDEM * LINK;
    let per_hop = wf2q_plus_delay_bound(sigma_bits, r_i, l_max_bits, LINK);
    let bound_ms = (HOPS as f64 * per_hop + PROP[0] + PROP[1]) * 1e3;

    println!("3-hop tandem, 48 backlogged cross sessions per link:");
    println!(
        "  session: sigma = 1 pkt ({PKT} B), rho = r_i = {} Mbit/s on {} Mbit/s links",
        r_i / 1e6,
        LINK / 1e6
    );
    println!("  composed bound = 3 x (sigma/r_i + L_max/r) + prop = {bound_ms:.2} ms\n");
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>26} {:>10}",
        "algo", "paths", "mean_ms", "max_ms", "per-hop max (ms)", "bound"
    );
    for kind in [SchedulerKind::Wf2qPlus, SchedulerKind::Scfq] {
        let r = run(kind);
        let hops = format!(
            "[{:.1}, {:.1}, {:.1}]",
            r.hop_max_ms[0], r.hop_max_ms[1], r.hop_max_ms[2]
        );
        let verdict = if r.max_ms <= bound_ms {
            "within"
        } else {
            "EXCEEDS"
        };
        println!(
            "{:<8} {:>8} {:>10.2} {:>10.2} {:>26} {:>10}",
            kind.name(),
            r.paths,
            r.mean_ms,
            r.max_ms,
            hops,
            verdict
        );
        if kind == SchedulerKind::Wf2qPlus {
            assert!(
                r.max_ms <= bound_ms,
                "WF2Q+ tandem exceeded its composed bound: {} > {bound_ms}",
                r.max_ms
            );
        } else {
            assert!(
                r.max_ms > bound_ms,
                "SCFQ was expected to blow through the WF2Q+ bound ({} <= {bound_ms})",
                r.max_ms
            );
        }
    }
    println!("\nWF2Q+'s per-hop bound is independent of the session count, so it");
    println!("survives composition across the tandem; SCFQ's per-hop delay carries");
    println!("a sum over *all* competing sessions and pays it again at every hop.");
}
