//! Every one-level scheduler in the crate on one adversarial trace: the
//! Fig. 2 pattern generalized to mixed packet sizes, printing each
//! policy's service order, worst-case fairness and the newcomer delay.
//!
//! ```text
//! cargo run --example algorithm_zoo
//! ```

use hpfq::analysis::{empirical_bwfi, service_curve_from_records};
use hpfq::core::{Hierarchy, SchedulerKind};
use hpfq::sim::{Simulation, SourceConfig, TraceSource};

const LINK: f64 = 1e6;

/// Fig.-2-style duel: one 50% session bursts 21 packets; ten 5% sessions
/// hold one packet each; a latecomer (the measured "newcomer") arrives to
/// an empty queue mid-schedule.
fn run(kind: SchedulerKind) -> (f64, f64) {
    let mut h = Hierarchy::builder(LINK, move |r| kind.build(r)).build();
    let root = h.root();
    let big = h.add_leaf(root, 0.5).unwrap();
    let mut small = Vec::new();
    for _ in 0..9 {
        small.push(h.add_leaf(root, 0.05).unwrap());
    }
    let newcomer = h.add_leaf(root, 0.05).unwrap();

    let mut sim = Simulation::new(h);
    for flow in 0..12u32 {
        sim.stats.trace_flow(flow);
    }
    let pkt = 500u32; // 4 ms on the wire
    sim.add_source(
        0,
        TraceSource::new(0, vec![(0.0, pkt); 21]),
        SourceConfig::open_loop(big),
    );
    for (i, &leaf) in small.iter().enumerate() {
        let flow = 1 + i as u32;
        sim.add_source(
            flow,
            TraceSource::new(flow, vec![(0.0, pkt)]),
            SourceConfig::open_loop(leaf),
        );
    }
    // The newcomer arrives at 20 ms — right after WFQ-family schedulers
    // have let the big session run ahead.
    sim.add_source(
        11,
        TraceSource::new(11, vec![(0.020, pkt)]),
        SourceConfig::open_loop(newcomer),
    );
    sim.run(10.0);

    // Empirical B-WFI of the big session, in packets.
    let w_big = service_curve_from_records(sim.stats.trace(0).iter());
    let all: Vec<_> = (0..12u32)
        .flat_map(|f| sim.stats.trace(f).iter().copied())
        .collect();
    let w_srv = service_curve_from_records(all.iter());
    let arr = vec![(0.0, 21.0 * f64::from(pkt) * 8.0)];
    let wfi_pkts = empirical_bwfi(&arr, &w_big, &w_srv, 0.5) / (f64::from(pkt) * 8.0);

    // Newcomer delay in ms.
    let delay = sim.stats.trace(11)[0].delay() * 1e3;
    (wfi_pkts, delay)
}

fn main() {
    println!("one adversarial trace, every scheduler:\n");
    println!(
        "{:<8} {:>20} {:>20}",
        "algo", "big-session WFI (pkts)", "newcomer delay (ms)"
    );
    for kind in SchedulerKind::ALL {
        let (wfi, delay) = run(kind);
        println!("{:<8} {:>20.2} {:>20.2}", kind.name(), wfi, delay);
    }
    println!();
    println!("WF2Q/WF2Q+ bound the WFI by one packet (paper Theorems 3-4);");
    println!("WFQ/SCFQ/SFQ let the big session run ~N/2 packets ahead, which");
    println!("is exactly what a hierarchical server turns into delay spikes.");
}
