//! Span profiling and Perfetto export end-to-end: run the 3-link tandem
//! under the parallel runtime, print the per-phase wall-clock profile,
//! and write a `trace.json` timeline openable in Perfetto.
//!
//! ```text
//! cargo run --release --example profiling --features profile [trace.json]
//! ```
//!
//! Without `--features profile` the example still runs — epoch recording
//! is a runtime switch stamped in *simulation* time, so the Perfetto
//! export (link tracks + shard epoch tracks) is complete either way — but
//! the span table prints empty, because the profiler compiles down to a
//! zero-sized no-op. With the feature on, the table shows where engine
//! time goes (event pop/handle, enqueue, dispatch, virtual-clock update)
//! and what the parallel phases cost (epoch compute, barrier wait,
//! cross-shard exchange, merge), per shard and in aggregate.

use hpfq::core::{Hierarchy, MixedScheduler, SchedulerKind};
use hpfq::obs::jsonl::{merge_traces, parse_trace};
use hpfq::obs::{chrome_trace, JsonlObserver, SpanProfiler};
use hpfq::sim::{CbrSource, Hop, Network, Route};

const LINKS: usize = 3;
const RATE: f64 = 10e6;
const PKT: u32 = 1500;
const SHARDS: usize = 3;

type Obs = JsonlObserver<Vec<u8>>;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/hpfq-trace.json".into());

    // 3-link tandem: flow 0 crosses every link with 2 ms propagation
    // delay (real lookahead for the conservative scheme); one saturating
    // cross flow per link.
    let kind = SchedulerKind::Wf2qPlus;
    let mut net: Network<MixedScheduler, Obs> = Network::new();
    let mut hops = Vec::new();
    for li in 0..LINKS {
        let mut bld = Hierarchy::<MixedScheduler, Obs>::builder_with_observer(
            RATE,
            move |r| kind.build(r),
            JsonlObserver::new(Vec::new()),
        );
        let root = bld.root();
        let tandem_leaf = bld.add_leaf(root, 0.4).expect("valid share");
        let cross_leaf = bld.add_leaf(root, 0.6).expect("valid share");
        let link = net.add_link(bld.build());
        assert_eq!(link, li);
        hops.push(Hop {
            link,
            leaf: tandem_leaf,
            buffer_bytes: None,
            prop_delay: 0.002,
        });
        let flow = 100 + link as u32;
        net.add_route(
            flow,
            CbrSource::new(flow, PKT, 6e6, 0.0, 2.0),
            Route::new(vec![Hop {
                link,
                leaf: cross_leaf,
                buffer_bytes: Some(16 * u64::from(PKT)),
                prop_delay: 0.0,
            }]),
        );
    }
    net.add_route(0, CbrSource::new(0, PKT, 3e6, 0.0, 2.0), Route::new(hops));

    net.set_record_epochs(true);
    let report = net.run_parallel(3.0, SHARDS);
    net.verify_conservation().expect("conservation holds");
    println!(
        "parallel run: {} shards, fallback {:?}, {} packets",
        report.shards, report.fallback, net.stats.total_packets
    );

    // Per-phase wall-clock profile. Empty (a header-only table) unless
    // built with `--features profile`.
    if SpanProfiler::ENABLED {
        println!("\n{}", net.span_report());
        for (sid, snap) in net.shard_span_snapshots().iter().enumerate() {
            println!("{}", snap.report_text(&format!("shard {sid}")));
        }
    } else {
        println!("\nspan profiler compiled out; rebuild with --features profile");
    }

    // Perfetto timeline: merge the per-link JSONL traces, parse them
    // back, and render tx slices + epoch windows in simulation time.
    let epochs = net.epoch_log().to_vec();
    println!(
        "{} conservative epochs across {} shards",
        epochs.len(),
        report.shards
    );
    let bufs: Vec<String> = net
        .into_observers()
        .into_iter()
        .map(|o| String::from_utf8(o.into_inner()).expect("utf8 trace"))
        .collect();
    let (events, skipped) = parse_trace(&merge_traces(&bufs));
    assert_eq!(skipped, 0, "trace had unparseable lines");
    let json = chrome_trace(&events, &epochs);
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "{} trace events -> {} ({} bytes); open in https://ui.perfetto.dev",
        events.len(),
        path,
        json.len()
    );
}
