//! The paper's Fig. 1 motivating scenario: 11 agencies share a 45 Mbit/s
//! link; Agency A1 is guaranteed 50% and, inside it, best-effort traffic
//! must get at least 20% of A1's bandwidth so real-time traffic cannot
//! starve it.
//!
//! ```text
//! cargo run --release --example link_sharing
//! ```
//!
//! Demonstrates all three simultaneous goals of H-PFQ (paper §1): the
//! real-time class keeps its guarantee, best-effort is never starved, and
//! idle agencies' bandwidth is redistributed through the hierarchy.

use hpfq::core::{Hierarchy, Wf2qPlus};
use hpfq::sim::{CbrSource, Simulation, SourceConfig};

const LINK: f64 = 45e6;
const PKT: u32 = 1500;

fn main() {
    let mut bld = Hierarchy::builder(LINK, Wf2qPlus::new);
    let root = bld.root();
    // Agency A1: 50%, with a real-time subclass (80% of A1) and a
    // best-effort subclass (20% of A1 — the anti-starvation floor).
    let a1 = bld.add_internal(root, 0.5).unwrap();
    let a1_rt = bld.add_leaf(a1, 0.8).unwrap();
    let a1_be = bld.add_leaf(a1, 0.2).unwrap();
    // Agencies A2..A11: 5% each.
    let mut others = Vec::new();
    for _ in 0..10 {
        others.push(bld.add_leaf(root, 0.05).unwrap());
    }

    let mut sim = Simulation::new(bld.build());
    for flow in 0..12u32 {
        sim.stats.trace_flow(flow);
    }
    // A1's real-time class sends hard at 30 Mbit/s (above its 18 Mbit/s
    // guarantee); best-effort floods too. Agencies 2..6 are active at
    // their shares; 7..11 are idle until t=2 s.
    sim.add_source(
        0,
        CbrSource::new(0, PKT, 30e6, 0.0, 10.0),
        SourceConfig::open_loop(a1_rt),
    );
    sim.add_source(
        1,
        CbrSource::new(1, PKT, 20e6, 0.0, 10.0),
        SourceConfig::open_loop(a1_be),
    );
    for (i, &leaf) in others.iter().enumerate() {
        let flow = 2 + i as u32;
        let start = if i < 5 { 0.0 } else { 2.0 };
        sim.add_source(
            flow,
            CbrSource::new(flow, PKT, 5e6, start, 10.0),
            SourceConfig::open_loop(leaf),
        );
    }
    sim.run(4.0);

    let bw = |flow: u32, t0: f64, t1: f64| {
        hpfq::analysis::measures::bandwidth_over(sim.stats.trace(flow), t0, t1) / 1e6
    };
    println!("Fig. 1 link sharing under H-WF2Q+ (45 Mbit/s link), Mbit/s:\n");
    println!(
        "{:<22} {:>14} {:>14}",
        "class", "t in [1,2)s", "t in [3,4)s"
    );
    println!(
        "{:<22} {:>14.2} {:>14.2}",
        "A1 real-time (>=18)",
        bw(0, 1.0, 2.0),
        bw(0, 3.0, 4.0)
    );
    println!(
        "{:<22} {:>14.2} {:>14.2}",
        "A1 best-effort (>=4.5)",
        bw(1, 1.0, 2.0),
        bw(1, 3.0, 4.0)
    );
    let active_early: f64 = (2..7).map(|f| bw(f, 1.0, 2.0)).sum();
    let active_late: f64 = (2..12).map(|f| bw(f, 3.0, 4.0)).sum();
    println!(
        "{:<22} {:>14.2} {:>14}",
        "agencies 2-6 (sum)", active_early, "-"
    );
    println!(
        "{:<22} {:>14} {:>14.2}",
        "agencies 2-11 (sum)", "-", active_late
    );
    println!();
    println!("before t=2 s, five agencies are idle: their 25% flows back to A1");
    println!("(A1 above its 50% guarantee) yet best-effort keeps its 20% floor;");
    println!("after t=2 s all agencies are active and A1 returns to ~50%.");
}
