//! # hpfq — Hierarchical Packet Fair Queueing
//!
//! Facade crate re-exporting the full public API of the workspace, a
//! from-scratch Rust reproduction of *Hierarchical Packet Fair Queueing
//! Algorithms* (Bennett & Zhang, SIGCOMM 1996):
//!
//! * [`events`] — the dependency-free discrete-event core (keyed min-heap
//!   with FIFO tie-breaking, slot-arena storage, clocked engine driver).
//! * [`core`] — the WF²Q+ algorithm, the WFQ/WF²Q/SCFQ/SFQ/DRR/FIFO
//!   baselines, and the H-PFQ hierarchy.
//! * [`fluid`] — the ideal GPS and H-GPS fluid reference servers.
//! * [`sim`] — a discrete-event network simulator with the paper's traffic
//!   sources and measurement infrastructure.
//! * [`tcp`] — a Reno-style TCP model for the link-sharing experiments.
//! * [`analysis`] — theoretical bounds (WFI / SBI / delay) and empirical
//!   metrics extracted from simulation traces.
//! * [`obs`] — observability: typed scheduler events behind a zero-cost
//!   [`obs::Observer`] hook, JSONL trace emission/parsing, a metrics
//!   registry, and an online invariant checker.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory; the `examples/` directory contains runnable scenarios and
//! `crates/hpfq-bench` regenerates every figure of the paper.

pub use hpfq_analysis as analysis;
pub use hpfq_core as core;
pub use hpfq_events as events;
pub use hpfq_fluid as fluid;
pub use hpfq_obs as obs;
pub use hpfq_sim as sim;
pub use hpfq_tcp as tcp;

pub use hpfq_core::{
    Drr, Fifo, Hierarchy, HierarchyBuilder, HpfqError, MixedScheduler, NodeId, NodeScheduler,
    Packet, Scfq, SchedulerKind, SessionId, Sfq, Wf2q, Wf2qPlus, Wfq,
};
