//! Golden test for the Chrome trace-event (Perfetto) exporter on a real
//! parallel run.
//!
//! A 3-link tandem (one flow crossing every link with a propagation delay,
//! plus saturating single-hop cross traffic per link) runs under
//! `run_parallel`, genuinely sharded. The per-link JSONL traces are merged
//! into the canonical stream, parsed back into events, and rendered —
//! together with the runtime's epoch log — as a `trace.json` document.
//! The test pins the document's structure (valid balanced JSON, one track
//! per link, tx slices, one track per shard with epoch slices) and its
//! *byte determinism*: two identical runs must export identical bytes,
//! because the timeline clock is simulation time, never wall clock.
//!
//! With `--features profile` the same run additionally carries wall-clock
//! span aggregates; those are asserted present but deliberately kept out
//! of the exported JSON (they are nondeterministic by nature).

use hpfq::core::{Hierarchy, MixedScheduler, SchedulerKind};
use hpfq::obs::jsonl::{merge_traces, parse_trace};
use hpfq::obs::{chrome_trace, EpochSpan, JsonlObserver};
use hpfq::sim::{CbrSource, Hop, Network, Route};

const LINKS: usize = 3;
const RATE: f64 = 10e6;
const PKT: u32 = 1500;
const PROP: f64 = 0.002;
const HORIZON: f64 = 1.5;
const SHARDS: usize = 3;

type Obs = JsonlObserver<Vec<u8>>;

/// 3-link tandem: flow 0 crosses every link (2 ms propagation per hop, so
/// the conservative scheme gets real lookahead); flows 100..102 are
/// single-hop cross traffic keeping each link busy.
fn tandem() -> Network<MixedScheduler, Obs> {
    let kind = SchedulerKind::Wf2qPlus;
    let mut net: Network<MixedScheduler, Obs> = Network::new();
    let mut hops = Vec::new();
    for li in 0..LINKS {
        let mut bld = Hierarchy::<MixedScheduler, Obs>::builder_with_observer(
            RATE,
            move |r| kind.build(r),
            JsonlObserver::new(Vec::new()),
        );
        let root = bld.root();
        let tandem_leaf = bld.add_leaf(root, 0.4).unwrap();
        let cross_leaf = bld.add_leaf(root, 0.6).unwrap();
        let link = net.add_link(bld.build());
        assert_eq!(link, li);
        hops.push(Hop {
            link,
            leaf: tandem_leaf,
            buffer_bytes: None,
            prop_delay: PROP,
        });
        let flow = 100 + link as u32;
        net.add_route(
            flow,
            CbrSource::new(flow, PKT, 6e6, 0.0, 1.0),
            Route::new(vec![Hop {
                link,
                leaf: cross_leaf,
                buffer_bytes: Some(16 * u64::from(PKT)),
                prop_delay: 0.0,
            }]),
        );
    }
    net.add_route(0, CbrSource::new(0, PKT, 3e6, 0.0, 1.0), Route::new(hops));
    net
}

/// One full pipeline pass: parallel run → merged trace → parsed events →
/// chrome trace JSON. Returns the export plus the raw ingredients so the
/// caller can assert on them.
fn export() -> (String, usize, Vec<EpochSpan>) {
    let mut net = tandem();
    net.set_record_epochs(true);
    let report = net.run_parallel(HORIZON, SHARDS);
    assert_eq!(report.fallback, None, "tandem must genuinely shard");
    assert_eq!(report.shards, SHARDS);
    net.verify_conservation().unwrap();

    let epochs: Vec<EpochSpan> = net.epoch_log().to_vec();
    assert!(
        !epochs.is_empty(),
        "epoch recording was on but logged nothing"
    );

    // With the profiler compiled in, the run must have produced span
    // samples on every shard; without it, the snapshot must be empty.
    let spans = net.span_snapshot();
    if cfg!(feature = "profile") {
        assert!(!spans.is_empty(), "profile build recorded no spans");
        assert_eq!(net.shard_span_snapshots().len(), SHARDS);
    } else {
        assert!(spans.is_empty(), "profile-off build recorded spans");
        assert!(net.shard_span_snapshots().is_empty());
    }

    let bufs: Vec<String> = net
        .into_observers()
        .into_iter()
        .map(|o| String::from_utf8(o.into_inner()).unwrap())
        .collect();
    assert_eq!(bufs.len(), LINKS);
    let merged = merge_traces(&bufs);
    let (events, skipped) = parse_trace(&merged);
    assert_eq!(skipped, 0, "merged trace had unparseable lines");
    assert!(events.len() > 100, "trace too small to be meaningful");

    (chrome_trace(&events, &epochs), events.len(), epochs)
}

/// Structural JSON check without an external parser: balanced braces and
/// brackets outside string literals, no unterminated strings.
fn assert_balanced_json(s: &str) {
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced close");
    }
    assert_eq!(depth, 0, "unbalanced JSON");
    assert!(!in_str, "unterminated string");
}

#[test]
fn tandem_parallel_run_exports_valid_chrome_trace() {
    let (json, n_events, epochs) = export();

    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}\n"));
    assert_balanced_json(&json);

    // One named track per link under the "links" process.
    assert!(json.contains("\"args\":{\"name\":\"links\"}"), "{json}");
    for link in 0..LINKS {
        assert!(
            json.contains(&format!("\"args\":{{\"name\":\"link {link}\"}}")),
            "missing track for link {link}"
        );
    }
    // Transmission slices are complete (`ph:X`) events in the tx category.
    assert!(json.contains("\"cat\":\"tx\",\"ph\":\"X\""), "no tx slices");
    // The tandem flow itself shows up on the timeline.
    assert!(json.contains("\"name\":\"tx f0\""), "tandem flow absent");

    // Epoch slices land on per-shard tracks under the "shards" process.
    assert!(json.contains("\"args\":{\"name\":\"shards\"}"), "{json}");
    let shards_seen: std::collections::BTreeSet<usize> = epochs.iter().map(|e| e.shard).collect();
    assert_eq!(shards_seen.len(), SHARDS, "epochs missing for some shard");
    for shard in &shards_seen {
        assert!(
            json.contains(&format!("\"args\":{{\"name\":\"shard {shard}\"}}")),
            "missing track for shard {shard}"
        );
    }
    assert!(
        json.contains("\"cat\":\"epoch\",\"ph\":\"X\",\"pid\":2"),
        "no epoch slices"
    );

    // Every epoch is well-formed: windows ordered, work actually done.
    // (Epoch `events` count engine events handled, not trace lines, so
    // the only cross-check against the trace is non-triviality.)
    let total_epoch_events: u64 = epochs.iter().map(|e| e.events).sum();
    assert!(total_epoch_events > 0, "no events handled in any epoch");
    assert!(n_events > 100, "trace too small");
    for e in &epochs {
        assert!(e.t1 >= e.t0, "inverted epoch window {e:?}");
        assert!(e.t1 <= HORIZON + 1e-9, "epoch past horizon {e:?}");
    }
}

#[test]
fn chrome_trace_export_is_byte_deterministic() {
    let (a, _, _) = export();
    let (b, _, _) = export();
    assert_eq!(a, b, "trace.json must be a pure function of the run");
}
