//! Golden byte-identity oracle for deterministic parallel execution.
//!
//! `Network::run_parallel(n)` promises *bit-identical* results to the
//! sequential `run()` — same merged JSONL trace, same per-flow statistics,
//! same per-link conservation ledgers — for any shard count. These tests
//! pin that promise on the two reference scenarios:
//!
//! * the reduced Fig. 3 single-link workload (outage commands + finite
//!   buffer in the mix), where every parallel request must *fall back*
//!   to the sequential path and still reproduce it byte-for-byte;
//! * a 3-hop tandem with cross traffic, a mid-run outage on the middle
//!   link and flow churn (`RemoveFlow` mid-path), where `n ∈ {2, 4}`
//!   genuinely shards across `std::thread::scope` workers.
//!
//! Traces are collected through per-link `JsonlObserver<Vec<u8>>` sinks
//! and merged with [`merge_traces`], whose `(t, link)` stable sort makes
//! the merged bytes a pure function of the per-link streams — the same
//! canonical form regardless of how execution interleaved the links.

use hpfq::core::{Hierarchy, MixedScheduler, SchedulerKind};
use hpfq::obs::jsonl::merge_traces;
use hpfq::obs::JsonlObserver;
use hpfq::sim::{
    CbrSource, FallbackReason, FlowStats, Hop, LinkLedger, Network, PacketTrainSource,
    PeriodicOnOffSource, PoissonSource, Route, ServiceRecord, SimCommand,
};

const LINK: f64 = 45e6;
const PKT: u32 = 8192;

type Obs = JsonlObserver<Vec<u8>>;

fn sink() -> Obs {
    JsonlObserver::new(Vec::new())
}

/// Everything a run leaves behind that the oracle compares.
#[derive(Debug, PartialEq)]
struct Snapshot {
    flows: Vec<(u32, FlowStats)>,
    records: Vec<(u32, Vec<ServiceRecord>)>,
    total_bytes: u64,
    total_packets: u64,
    last_departure: f64,
    ledgers: Vec<LinkLedger>,
    merged: String,
}

/// Drains a finished network into its comparable snapshot.
fn snapshot(net: Network<MixedScheduler, Obs>, flows: &[u32], traced: &[u32]) -> Snapshot {
    net.verify_conservation().unwrap();
    let flows = flows.iter().map(|&f| (f, net.stats.flow(f))).collect();
    let records = traced
        .iter()
        .map(|&f| (f, net.stats.trace(f).to_vec()))
        .collect();
    let total_bytes = net.stats.total_bytes;
    let total_packets = net.stats.total_packets;
    let last_departure = net.stats.last_departure;
    let ledgers = (0..net.link_count()).map(|l| net.link_ledger(l)).collect();
    let bufs: Vec<String> = net
        .into_observers()
        .into_iter()
        .map(|o| String::from_utf8(o.into_inner()).unwrap())
        .collect();
    Snapshot {
        flows,
        records,
        total_bytes,
        total_packets,
        last_departure,
        ledgers,
        merged: merge_traces(&bufs),
    }
}

fn assert_snapshots_match(seq: &Snapshot, par: &Snapshot, label: &str) {
    assert_eq!(seq.flows, par.flows, "{label}: per-flow stats diverged");
    assert_eq!(
        seq.records, par.records,
        "{label}: service records diverged"
    );
    assert_eq!(seq.total_bytes, par.total_bytes, "{label}: total bytes");
    assert_eq!(seq.total_packets, par.total_packets, "{label}: packets");
    assert_eq!(
        seq.last_departure, par.last_departure,
        "{label}: last departure"
    );
    assert_eq!(seq.ledgers, par.ledgers, "{label}: link ledgers diverged");
    if seq.merged != par.merged {
        // Find the first diverging line so the failure is actionable
        // without diffing megabytes by eye.
        for (i, (a, b)) in seq.merged.lines().zip(par.merged.lines()).enumerate() {
            assert_eq!(a, b, "{label}: traces diverge at merged line {i}");
        }
        panic!(
            "{label}: trace lengths diverge ({} vs {} lines)",
            seq.merged.lines().count(),
            par.merged.lines().count()
        );
    }
}

/// The reduced Fig. 3 workload on one link: N-R → {N-2 → {N-1 → {RT-1,
/// BE-1}, PS-6, CS-6}, PS-1, CS-1}, five sources, a 30 ms outage, one
/// finite buffer. Mirrors `network_vs_simulation::fig3ish`.
fn fig3_net() -> Network<MixedScheduler, Obs> {
    let kind = SchedulerKind::Wf2qPlus;
    let mut bld = Hierarchy::<MixedScheduler, Obs>::builder_with_observer(
        LINK,
        move |r| kind.build(r),
        sink(),
    );
    let root = bld.root();
    let n2 = bld.add_internal(root, 0.5).unwrap();
    let n1 = bld.add_internal(n2, 0.494).unwrap();
    let rt1 = bld.add_leaf(n1, 0.81).unwrap();
    let be1 = bld.add_leaf(n1, 0.19).unwrap();
    let ps1 = bld.add_leaf(root, 0.05).unwrap();
    let cs1 = bld.add_leaf(root, 0.05).unwrap();
    let ps6 = bld.add_leaf(n2, 0.0506).unwrap();

    let mut net: Network<MixedScheduler, Obs> = Network::new();
    net.add_link(bld.build());
    net.stats.trace_flow(1);
    net.add_route(
        1,
        PeriodicOnOffSource::new(1, PKT, 9e6, 0.025, 0.100, 0.200, f64::INFINITY),
        Route::single(rt1, None, 0.0),
    );
    net.add_route(
        2,
        CbrSource::new(2, PKT, 12e6, 0.0, f64::INFINITY),
        Route::single(be1, Some(3 * u64::from(PKT)), 0.0),
    );
    net.add_route(
        11,
        PoissonSource::new(11, PKT, 2.25e6, 0.0, f64::INFINITY, 7),
        Route::single(ps1, None, 0.001),
    );
    net.add_route(
        31,
        PacketTrainSource::new(
            31,
            PKT,
            7,
            f64::from(PKT) * 8.0 / LINK,
            0.193,
            0.05,
            f64::INFINITY,
        ),
        Route::single(cs1, None, 0.0),
    );
    net.add_route(
        16,
        PoissonSource::new(16, PKT, 1.14e6, 0.0, f64::INFINITY, 9),
        Route::single(ps6, None, 0.0),
    );
    net.schedule_command(0.9, SimCommand::SetLinkRate(0.0));
    net.schedule_command(0.93, SimCommand::SetLinkRate(LINK));
    net
}

/// A 3-hop tandem (flow 0) with saturating single-hop cross traffic on
/// every link, a tight mid-path buffer, a mid-run outage on the middle
/// link, and churn: one cross flow leaves early, the tandem flow itself
/// is removed mid-path late in the run (its downstream detachments ride
/// cross-shard `Detach` events under parallel execution).
fn tandem_net() -> Network<MixedScheduler, Obs> {
    let kind = SchedulerKind::Wf2qPlus;
    let mut net: Network<MixedScheduler, Obs> = Network::new();
    let mut hops = Vec::new();
    for li in 0..3usize {
        let mut bld = Hierarchy::<MixedScheduler, Obs>::builder_with_observer(
            10e6,
            move |r| kind.build(r),
            sink(),
        );
        let root = bld.root();
        let phi = if li == 1 { 0.2 } else { 0.5 };
        let tandem_leaf = bld.add_leaf(root, phi).unwrap();
        let cross_leaf = bld.add_leaf(root, 1.0 - phi).unwrap();
        let link = net.add_link(bld.build());
        assert_eq!(link, li);
        hops.push(Hop {
            link,
            leaf: tandem_leaf,
            buffer_bytes: if li == 1 {
                Some(2 * u64::from(PKT))
            } else {
                None
            },
            prop_delay: 0.002,
        });
        let flow = 100 + link as u32;
        net.add_route(
            flow,
            CbrSource::new(flow, PKT, 8e6, 0.0, 5.0),
            Route::new(vec![Hop {
                link,
                leaf: cross_leaf,
                buffer_bytes: Some(16 * u64::from(PKT)),
                prop_delay: 0.0,
            }]),
        );
    }
    net.stats.trace_flow(0);
    net.add_route(0, CbrSource::new(0, PKT, 4e6, 0.0, 5.0), Route::new(hops));
    // 50 ms outage on the middle link mid-run.
    net.schedule_command(1.0, SimCommand::SetLinkRateOn { link: 1, bps: 0.0 });
    net.schedule_command(1.05, SimCommand::SetLinkRateOn { link: 1, bps: 10e6 });
    // Churn: a cross flow leaves, then the tandem flow is torn down
    // mid-path while packets are still in flight between hops.
    net.schedule_command(2.0, SimCommand::RemoveFlow(101));
    net.schedule_command(3.0, SimCommand::RemoveFlow(0));
    net
}

const FIG3_FLOWS: &[u32] = &[1, 2, 11, 31, 16];
const TANDEM_FLOWS: &[u32] = &[0, 100, 101, 102];

#[test]
fn fig3_single_link_parallel_falls_back_byte_identically() {
    let mut seq = fig3_net();
    seq.run(2.0);
    let golden = snapshot(seq, FIG3_FLOWS, &[1]);
    assert!(
        golden.merged.lines().count() > 1000,
        "trace too small to be meaningful"
    );

    for n in [1usize, 2, 4] {
        let mut net = fig3_net();
        let report = net.run_parallel(2.0, n);
        // One link can't shard: every request falls back, and the
        // fallback path must still be the byte-identical sequential run.
        assert_eq!(report.fallback, Some(FallbackReason::SingleShard), "n={n}");
        assert_eq!(report.shards, 1, "n={n}");
        let snap = snapshot(net, FIG3_FLOWS, &[1]);
        assert_snapshots_match(&golden, &snap, &format!("fig3 n={n}"));
    }
}

#[test]
fn tandem_parallel_matches_sequential_byte_for_byte() {
    let mut seq = tandem_net();
    seq.run(8.0);
    let golden = snapshot(seq, TANDEM_FLOWS, &[0]);
    assert!(
        golden.merged.lines().count() > 1000,
        "trace too small to be meaningful"
    );
    // The scenario is non-trivial: churn purged bytes mid-path.
    let tandem = golden.flows.iter().find(|&&(f, _)| f == 0).unwrap();
    assert!(tandem.1.purged_bytes > 0, "{:?}", tandem.1);

    for n in [1usize, 2, 4] {
        let mut net = tandem_net();
        let report = net.run_parallel(8.0, n);
        if n == 1 {
            assert_eq!(report.fallback, Some(FallbackReason::SingleShard));
        } else {
            assert_eq!(report.fallback, None, "n={n} must genuinely shard");
            // 4 requested shards clamp to the 3 links available.
            assert_eq!(report.shards, n.min(3), "n={n}");
            assert!(report.epochs > 0, "n={n} ran zero epochs");
            // Lookahead is the tandem route's inter-shard hop spacing.
            assert_eq!(report.lookahead, 0.002, "n={n}");
        }
        let snap = snapshot(net, TANDEM_FLOWS, &[0]);
        assert_snapshots_match(&golden, &snap, &format!("tandem n={n}"));
    }
}
