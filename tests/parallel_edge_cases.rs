//! Epoch-machinery edge cases for `Network::run_parallel`.
//!
//! The conservative-epoch scheme has two boundary conditions worth
//! pinning explicitly rather than leaving to the byte-identity sweep:
//!
//! * a **zero-propagation-delay** inter-shard hop leaves no conservative
//!   lookahead window at all — the run must *fall back* to sequential
//!   execution (and terminate!), not deadlock in zero-width epochs;
//! * a flow **quarantined mid-epoch** whose route continues on a remote
//!   shard: the strike happens on the ingress shard, but the downstream
//!   leaf detachment must reach the other shard as an ordinary
//!   cross-shard `Detach` event and produce the same final state a
//!   sequential run reaches.

use hpfq::core::{Hierarchy, MixedScheduler, NodeId, Packet, SchedulerKind};
use hpfq::obs::EscalationPolicy;
use hpfq::sim::{CbrSource, FallbackReason, Hop, Network, Route, SimCommand, Source, SourceOutput};

const PKT: u32 = 8192;

/// Builds a two-link tandem: flow 0 crosses both links with `prop_delay`
/// between them, one saturating cross flow per link. Returns the network
/// and the tandem flow's hops.
fn two_link_tandem(prop_delay: f64) -> (Network<MixedScheduler>, Vec<Hop>) {
    let kind = SchedulerKind::Wf2qPlus;
    let mut net: Network<MixedScheduler> = Network::new();
    let mut hops = Vec::new();
    for _ in 0..2usize {
        let mut bld = Hierarchy::<MixedScheduler>::builder(10e6, move |r| kind.build(r));
        let root = bld.root();
        let leaf = bld.add_leaf(root, 0.5).unwrap();
        let cross_leaf = bld.add_leaf(root, 0.5).unwrap();
        let link = net.add_link(bld.build());
        hops.push(Hop {
            link,
            leaf,
            buffer_bytes: None,
            prop_delay,
        });
        let flow = 100 + link as u32;
        net.add_route(
            flow,
            CbrSource::new(flow, PKT, 8e6, 0.0, 2.0),
            Route::new(vec![Hop {
                link,
                leaf: cross_leaf,
                buffer_bytes: None,
                prop_delay: 0.0,
            }]),
        );
    }
    net.add_route(
        0,
        CbrSource::new(0, PKT, 4e6, 0.0, 2.0),
        Route::new(hops.clone()),
    );
    (net, hops)
}

#[test]
fn zero_prop_delay_hop_falls_back_instead_of_deadlocking() {
    // Sequential reference.
    let (mut seq, _) = two_link_tandem(0.0);
    seq.run(4.0);
    seq.verify_conservation().unwrap();

    // Parallel request: links 0 and 1 land on different shards, the
    // tandem route crosses them with zero propagation delay, so the
    // conservative window is empty. The only sound answer is sequential
    // fallback — this call returning at all is half the assertion.
    let (mut par, _) = two_link_tandem(0.0);
    let report = par.run_parallel(4.0, 2);
    assert_eq!(report.fallback, Some(FallbackReason::ZeroLookahead));
    assert_eq!(report.shards, 1);
    par.verify_conservation().unwrap();

    for flow in [0u32, 100, 101] {
        assert_eq!(seq.stats.flow(flow), par.stats.flow(flow), "flow {flow}");
    }
    for link in 0..2 {
        assert_eq!(seq.link_ledger(link), par.link_ledger(link), "link {link}");
    }
    assert!(par.stats.flow(0).packets > 100, "tandem flow actually ran");
}

/// Sends valid CBR packets until `bad_after`, then emits only invalid
/// (zero-length) packets. Those fail `Packet::validate` at admission and
/// strike the flow — no fault injector needed (an injector would force
/// `run_parallel` into sequential fallback, defeating the test).
#[derive(Debug)]
struct SourGrapes {
    flow: u32,
    interval: f64,
    seq: u64,
    bad_after: u64,
    stop: f64,
}

impl SourGrapes {
    fn new(flow: u32, rate_bps: f64, bad_after: u64, stop: f64) -> Self {
        SourGrapes {
            flow,
            interval: f64::from(PKT) * 8.0 / rate_bps,
            seq: 0,
            bad_after,
            stop,
        }
    }
}

impl Source for SourGrapes {
    fn start(&mut self) -> SourceOutput {
        SourceOutput::wake_at(0.0)
    }

    fn on_wake(&mut self, now: f64) -> SourceOutput {
        if now >= self.stop {
            return SourceOutput::none();
        }
        self.seq += 1;
        let id = (u64::from(self.flow) << 40) | self.seq;
        let pkt = if self.seq > self.bad_after {
            // Built by literal: `Packet::new` debug-asserts against zero
            // length, and producing exactly that malformed packet is this
            // source's whole job.
            Packet {
                id,
                flow: self.flow,
                len_bytes: 0,
                birth: now,
                arrival: now,
            }
        } else {
            Packet::new(id, self.flow, PKT, now)
        };
        SourceOutput {
            packets: vec![pkt],
            wakes: vec![now + self.interval],
        }
    }

    fn label(&self) -> String {
        format!("sour-grapes-{}", self.flow)
    }
}

/// Two links, each on its own shard; flow 7 routes across both. Returns
/// the network and flow 7's per-hop leaves.
fn quarantine_scenario() -> (Network<MixedScheduler>, Vec<(usize, NodeId)>) {
    let kind = SchedulerKind::Wf2qPlus;
    let mut net: Network<MixedScheduler> = Network::new();
    let mut hops = Vec::new();
    let mut leaves = Vec::new();
    for _ in 0..2usize {
        let mut bld = Hierarchy::<MixedScheduler>::builder(10e6, move |r| kind.build(r));
        let root = bld.root();
        let leaf = bld.add_leaf(root, 0.4).unwrap();
        let cross_leaf = bld.add_leaf(root, 0.6).unwrap();
        let link = net.add_link(bld.build());
        hops.push(Hop {
            link,
            leaf,
            buffer_bytes: None,
            prop_delay: 0.002,
        });
        leaves.push((link, leaf));
        let flow = 50 + link as u32;
        net.add_route(
            flow,
            CbrSource::new(flow, 1000, 5e6, 0.0, 3.0),
            Route::new(vec![Hop {
                link,
                leaf: cross_leaf,
                buffer_bytes: None,
                prop_delay: 0.0,
            }]),
        );
    }
    // 20 good packets (~0.66 s), then garbage: the third invalid packet
    // trips the standard ladder mid-run, while flow 7 still has packets
    // queued at (and in flight toward) the remote shard's hop.
    net.add_route(
        7,
        SourGrapes::new(7, 2e6, 20, 3.0),
        Route::new(hops.clone()),
    );
    net.set_escalation_policy(EscalationPolicy::standard());
    // Keep some churn in the same window so the quarantine's cross-shard
    // Detach shares epochs with other boundary traffic.
    net.schedule_command(1.5, SimCommand::RemoveFlow(50));
    (net, leaves)
}

#[test]
fn remote_shard_quarantine_detaches_both_hops_and_matches_sequential() {
    let (mut seq, _) = quarantine_scenario();
    seq.run(5.0);
    seq.verify_conservation().unwrap();
    assert!(
        seq.escalation().is_quarantined(7),
        "scenario must quarantine"
    );

    let (mut par, leaves) = quarantine_scenario();
    let report = par.run_parallel(5.0, 2);
    assert_eq!(
        report.fallback, None,
        "standard policy never halts; must shard"
    );
    assert_eq!(report.shards, 2);
    assert!(report.epochs > 0);
    par.verify_conservation().unwrap();

    // The ladder's verdict reached both shards.
    assert!(par.escalation().is_quarantined(7));
    assert_eq!(par.escalation().strikes(7), seq.escalation().strikes(7));
    assert!(!par.is_halted());
    // The flow's leaf is detached at the ingress shard AND the remote one.
    for &(link, leaf) in &leaves {
        assert!(
            par.link_server(link).is_detached(leaf),
            "leaf on link {link} still attached after remote quarantine"
        );
    }
    // Final state is exactly the sequential one.
    for flow in [7u32, 50, 51] {
        assert_eq!(seq.stats.flow(flow), par.stats.flow(flow), "flow {flow}");
    }
    for link in 0..2 {
        assert_eq!(seq.link_ledger(link), par.link_ledger(link), "link {link}");
    }
    // The strikes came from admission-validation drops.
    assert!(
        par.stats.flow(7).fault_drops >= 3,
        "strikes came from drops"
    );
}
