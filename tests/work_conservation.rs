//! Work conservation and packet conservation across every scheduling
//! policy, standalone and hierarchical: a PFQ server never idles while
//! packets are queued, transmits every packet exactly once, and preserves
//! per-flow FIFO order.

use hpfq::core::{Hierarchy, MixedScheduler, NodeId, SchedulerKind};
use hpfq::obs::InvariantObserver;
use hpfq::sim::{CbrSource, Simulation, SourceConfig, TraceSource};
use std::collections::HashMap;

fn two_level(kind: SchedulerKind) -> (Hierarchy<MixedScheduler>, Vec<NodeId>) {
    let mut bld = Hierarchy::builder(1e6, move |r| kind.build(r));
    let root = bld.root();
    let a = bld.add_internal(root, 0.6).unwrap();
    let b = bld.add_internal(root, 0.4).unwrap();
    let leaves = vec![
        bld.add_leaf(a, 0.5).unwrap(),
        bld.add_leaf(a, 0.5).unwrap(),
        bld.add_leaf(b, 0.25).unwrap(),
        bld.add_leaf(b, 0.75).unwrap(),
    ];
    (bld.build(), leaves)
}

#[test]
fn saturated_link_transmits_at_capacity_under_every_policy() {
    for kind in SchedulerKind::ALL {
        let (h, leaves) = two_level(kind);
        let mut sim = Simulation::new(h);
        for (i, &leaf) in leaves.iter().enumerate() {
            let flow = i as u32;
            sim.add_source(
                flow,
                CbrSource::new(flow, 500, 0.5e6, 0.0, 100.0), // 4x oversubscribed
                SourceConfig::open_loop(leaf),
            );
        }
        sim.run(10.0);
        // 10 s at 1 Mbit/s = 1.25e6 bytes; allow sub-packet slack at both
        // ends.
        assert!(
            sim.stats.total_bytes >= 1_248_000,
            "{}: only {} bytes in 10 s",
            kind.name(),
            sim.stats.total_bytes
        );
    }
}

#[test]
fn every_packet_transmitted_exactly_once_and_in_flow_order() {
    for kind in SchedulerKind::ALL {
        let (h, leaves) = two_level(kind);
        let mut sim = Simulation::new(h);
        let mut expected = 0usize;
        for (i, &leaf) in leaves.iter().enumerate() {
            let flow = i as u32;
            sim.stats.trace_flow(flow);
            // A finite trace: bursts + trailing trickle.
            let mut entries: Vec<(f64, u32)> = Vec::new();
            for k in 0..30 {
                entries.push((0.01 * f64::from(i as u32), 400 + 10 * (k % 5)));
            }
            for k in 0..20 {
                entries.push((1.0 + 0.05 * k as f64, 600));
            }
            expected += entries.len();
            sim.add_source(
                flow,
                TraceSource::new(flow, entries),
                SourceConfig::open_loop(leaf),
            );
        }
        sim.run(1000.0);
        let mut seen: HashMap<u64, u32> = HashMap::new();
        let mut total = 0usize;
        for flow in 0..leaves.len() as u32 {
            let trace = sim.stats.trace(flow);
            total += trace.len();
            let mut last_id = None;
            for rec in trace {
                assert_eq!(rec.flow, flow);
                *seen.entry(rec.id).or_insert(0) += 1;
                // FIFO within the flow: ids (sequence numbers) increase.
                if let Some(prev) = last_id {
                    assert!(rec.id > prev, "{}: flow {flow} reordered", kind.name());
                }
                last_id = Some(rec.id);
                // Causality: service after arrival, non-negative delay.
                assert!(rec.start >= rec.arrival - 1e-12);
                assert!(rec.end > rec.start);
            }
        }
        assert_eq!(total, expected, "{}: packet count mismatch", kind.name());
        assert!(
            seen.values().all(|&c| c == 1),
            "{}: duplicate ids",
            kind.name()
        );
    }
}

/// The link serializes transmissions: service intervals never overlap.
/// The same run is watched by an [`InvariantObserver`], whose online
/// work-conservation check complements the throughput test above.
#[test]
fn transmissions_do_not_overlap() {
    let kind = SchedulerKind::Wf2qPlus;
    let mut bld =
        Hierarchy::builder_with_observer(1e6, move |r| kind.build(r), InvariantObserver::new());
    let root = bld.root();
    let a = bld.add_internal(root, 0.6).unwrap();
    let b = bld.add_internal(root, 0.4).unwrap();
    let leaves = [
        bld.add_leaf(a, 0.5).unwrap(),
        bld.add_leaf(a, 0.5).unwrap(),
        bld.add_leaf(b, 0.25).unwrap(),
        bld.add_leaf(b, 0.75).unwrap(),
    ];
    let mut sim = Simulation::new(bld.build());
    for (i, &leaf) in leaves.iter().enumerate() {
        let flow = i as u32;
        sim.stats.trace_flow(flow);
        sim.add_source(
            flow,
            CbrSource::new(flow, 700, 0.4e6, 0.0, 5.0),
            SourceConfig::open_loop(leaf),
        );
    }
    sim.run(20.0);
    let mut intervals: Vec<(f64, f64)> = (0..leaves.len() as u32)
        .flat_map(|f| sim.stats.trace(f).iter().map(|r| (r.start, r.end)))
        .collect();
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for w in intervals.windows(2) {
        assert!(w[1].0 >= w[0].1 - 1e-9, "overlapping transmissions: {w:?}");
    }
    let inv = sim.observer();
    assert!(inv.events_checked > 0);
    assert!(inv.is_clean(), "{}", inv.summary());
}
