//! Deterministic verification of the paper's delay bounds: Theorem 4(3)
//! for standalone WF²Q+ and Corollary 2 for H-WF²Q+, under adversarial
//! (greedy leaky-bucket) sources with saturating cross traffic.

use hpfq::analysis::{corollary2_bound, wf2q_plus_delay_bound};
use hpfq::core::{Hierarchy, SchedulerKind, Wf2qPlus};
use hpfq::sim::{CbrSource, GreedyLbSource, Simulation, SourceConfig};

const PKT: u32 = 1000; // 8000 bits
const LMAX: f64 = 8000.0;

/// Theorem 4(3): σ/r_i + L_max/r for a (σ, r_i)-constrained session under
/// standalone WF²Q+, regardless of what the other sessions do.
#[test]
fn theorem4_standalone_bound() {
    let rate = 1e6;
    for phi in [0.1, 0.3, 0.5] {
        let mut h = Hierarchy::builder(rate, Wf2qPlus::new).build();
        let root = h.root();
        let measured = h.add_leaf(root, phi).unwrap();
        let cross = h.add_leaf(root, 1.0 - phi).unwrap();
        let r_i = phi * rate;
        let sigma_pkts = 4u32;
        let mut sim = Simulation::new(h);
        sim.stats.trace_flow(0);
        sim.add_source(
            0,
            GreedyLbSource::new(0, PKT, sigma_pkts * PKT, r_i, 0.0, 20.0),
            SourceConfig::open_loop(measured),
        );
        sim.add_source(
            1,
            CbrSource::new(1, PKT, rate, 0.0, 20.0), // cross floods the link
            SourceConfig::open_loop(cross),
        );
        sim.run(30.0);
        let sigma_bits = f64::from(sigma_pkts * PKT) * 8.0;
        let bound = wf2q_plus_delay_bound(sigma_bits, r_i, LMAX, rate);
        let trace = sim.stats.trace(0);
        assert!(trace.len() > 100);
        for rec in trace {
            assert!(
                rec.delay() <= bound + 1e-9,
                "phi={phi}: delay {} > bound {bound}",
                rec.delay()
            );
        }
        // The bound is tight-ish: the worst observed delay should come
        // within 40% of it under this adversarial load.
        let worst = trace.iter().map(|r| r.delay()).fold(0.0, f64::max);
        assert!(
            worst > 0.6 * bound,
            "phi={phi}: worst {worst} vs bound {bound}"
        );
    }
}

/// Corollary 2 in a three-level hierarchy, with saturating cross traffic
/// at every level.
#[test]
fn corollary2_three_levels() {
    let rate = 2e6;
    let mut bld = Hierarchy::builder(rate, Wf2qPlus::new);
    let root = bld.root();
    let c1 = bld.add_internal(root, 0.6).unwrap();
    let x1 = bld.add_leaf(root, 0.4).unwrap();
    let c2 = bld.add_internal(c1, 0.5).unwrap();
    let x2 = bld.add_leaf(c1, 0.5).unwrap();
    let measured = bld.add_leaf(c2, 0.5).unwrap();
    let x3 = bld.add_leaf(c2, 0.5).unwrap();

    let r_i = bld.rate(measured);
    let rates_path = vec![r_i, bld.rate(c2), bld.rate(c1)];

    let mut sim = Simulation::new(bld.build());
    sim.stats.trace_flow(0);
    let sigma_pkts = 3u32;
    sim.add_source(
        0,
        GreedyLbSource::new(0, PKT, sigma_pkts * PKT, r_i, 0.0, 20.0),
        SourceConfig::open_loop(measured),
    );
    for (flow, leaf) in [(1u32, x1), (2, x2), (3, x3)] {
        sim.add_source(
            flow,
            CbrSource::new(flow, PKT, rate, 0.0, 20.0),
            SourceConfig::open_loop(leaf),
        );
    }
    sim.run(30.0);

    let sigma_bits = f64::from(sigma_pkts * PKT) * 8.0;
    let bound = corollary2_bound(sigma_bits, LMAX, &rates_path);
    let trace = sim.stats.trace(0);
    assert!(trace.len() > 100);
    for rec in trace {
        assert!(
            rec.delay() <= bound + 1e-9,
            "delay {} > Corollary-2 bound {bound}",
            rec.delay()
        );
    }
}

/// The same adversarial workload under H-WFQ violates the WF²Q+ bound —
/// the reason Theorem 2 needs small per-node WFIs. (WFQ still meets its
/// own, much looser, bound; this documents the gap.)
#[test]
fn wfq_exceeds_the_wf2q_plus_bound_in_a_hierarchy() {
    let rate = 1e6;
    let build = |kind: SchedulerKind| {
        let mut bld = Hierarchy::builder(rate, move |r| kind.build(r));
        let root = bld.root();
        let class = bld.add_internal(root, 0.5).unwrap();
        let rt = bld.add_leaf(class, 0.5).unwrap();
        let be = bld.add_leaf(class, 0.5).unwrap();
        let mut cross = Vec::new();
        for _ in 0..10 {
            cross.push(bld.add_leaf(root, 0.05).unwrap());
        }
        (bld.build(), rt, be, cross)
    };
    let worst_delay = |kind: SchedulerKind| -> f64 {
        let (h, rt, be, cross) = build(kind);
        let mut sim = Simulation::new(h);
        sim.stats.trace_flow(0);
        // BE floods its class; cross sessions send one packet each every
        // 100 ms; the measured session sends one packet every 250 ms into
        // an empty queue (the §3.1 victim pattern).
        sim.add_source(
            0,
            CbrSource::new(0, PKT, 8000.0 * 4.0, 0.013, 20.0),
            SourceConfig::open_loop(rt),
        );
        sim.add_source(
            1,
            CbrSource::new(1, PKT, rate, 0.0, 20.0),
            SourceConfig::open_loop(be),
        );
        for (i, &leaf) in cross.iter().enumerate() {
            let flow = 2 + i as u32;
            sim.add_source(
                flow,
                CbrSource::new(flow, PKT, 80_000.0, 0.0, 20.0),
                SourceConfig::open_loop(leaf),
            );
        }
        sim.run(30.0);
        sim.stats
            .trace(0)
            .iter()
            .map(|r| r.delay())
            .fold(0.0, f64::max)
    };
    let rt_rate = 0.25 * rate;
    let bound = corollary2_bound(LMAX, LMAX, &[rt_rate, 0.5 * rate]);
    let wfq = worst_delay(SchedulerKind::Wfq);
    let plus = worst_delay(SchedulerKind::Wf2qPlus);
    assert!(
        plus <= bound + 1e-9,
        "H-WF2Q+ {plus} must respect its bound {bound}"
    );
    assert!(
        wfq > plus,
        "H-WFQ worst delay {wfq} should exceed H-WF2Q+'s {plus}"
    );
}
