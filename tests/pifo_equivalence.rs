//! PIFO-substrate equivalence oracle: every policy served by
//! [`PifoTree`] (via [`SchedulerKind::build`]) must be **byte-identical**
//! to its hand-rolled original (via [`SchedulerKind::build_legacy`],
//! behind the `legacy-schedulers` feature) — same dispatch decisions, same
//! tags, same virtual time bits, same JSONL traces and statistics on the
//! reduced Fig. 3 workload with an outage and flow churn in the mix, and
//! the same continuations across a PIFO snapshot → restore → resume.
//!
//! Randomized churn + outage differential suites ride behind the
//! `proptest-tests` feature alongside `tests/proptest_invariants.rs`:
//!
//! ```text
//! cargo test --features proptest-tests --test pifo_equivalence
//! ```
//!
//! [`PifoTree`]: hpfq::core::PifoTree
//! [`SchedulerKind::build`]: hpfq::core::SchedulerKind::build
//! [`SchedulerKind::build_legacy`]: hpfq::core::SchedulerKind::build_legacy

use hpfq::core::{
    EligibleBackend, Hierarchy, MixedScheduler, NodeId, NodeScheduler, SchedulerKind, SessionId,
};
use hpfq::obs::{JsonlObserver, Observer, SharedBuf};
use hpfq::sim::{
    CbrSource, PacketTrainSource, PeriodicOnOffSource, PoissonSource, SimCommand, Simulation,
    SourceConfig,
};

const LINK: f64 = 45e6;
const PKT: u32 = 8192;

// ---------------------------------------------------------------------------
// Scheduler-level lockstep: every dispatch decision, tag, and virtual-time
// bit agrees between the PIFO-backed scheduler and the hand-rolled one.
// ---------------------------------------------------------------------------

/// Deterministic packet-length pattern (primes keep lengths from aliasing
/// into round numbers).
fn len_pattern(i: u64) -> f64 {
    [1000.0, 3000.0, 500.0, 7000.0, 1500.0, 11000.0][(i % 6) as usize]
}

/// Asserts `pifo` and `legacy` agree bit-for-bit on one observable step.
fn assert_lockstep(kind: SchedulerKind, step: u64, pifo: &MixedScheduler, legacy: &MixedScheduler) {
    assert_eq!(
        pifo.backlogged(),
        legacy.backlogged(),
        "{} step {step}: backlogged count diverged",
        kind.name()
    );
    assert_eq!(
        pifo.virtual_time().to_bits(),
        legacy.virtual_time().to_bits(),
        "{} step {step}: virtual time diverged ({} vs {})",
        kind.name(),
        pifo.virtual_time(),
        legacy.virtual_time()
    );
}

/// Drives both backends through the same deterministic dispatch / requeue /
/// churn / drain schedule, checking every selection, both tags, and the
/// virtual clock at every step. The schedule periodically drains both
/// schedulers completely so the busy-period reset path is exercised too.
fn drive_lockstep(kind: SchedulerKind, n: usize, steps: u64, seed: u64) {
    let pifo = kind.build(1e6);
    let legacy = kind.build_legacy(1e6);
    drive_lockstep_pair(kind, pifo, legacy, n, steps, seed);
}

/// Drives any two schedulers of the same kind through the same schedule,
/// asserting bit-identical selections, tags, and virtual times. Used both
/// for PIFO-vs-legacy and for backend-vs-backend (calendar/treap vs dual
/// heap) equivalence.
fn drive_lockstep_pair(
    kind: SchedulerKind,
    mut pifo: MixedScheduler,
    mut legacy: MixedScheduler,
    n: usize,
    steps: u64,
    seed: u64,
) {
    for _ in 0..n {
        pifo.add_session(1.0 / n as f64);
        legacy.add_session(1.0 / n as f64);
    }
    let mut queued: Vec<u64> = (0..n as u64).map(|i| 2 + (i + seed) % 4).collect();
    for (i, &q) in queued.iter().enumerate() {
        if q > 0 {
            let bits = len_pattern(i as u64 + seed);
            pifo.backlog(SessionId(i), bits, None);
            legacy.backlog(SessionId(i), bits, None);
        }
    }
    for step in 0..steps {
        let a = pifo.select_next();
        let b = legacy.select_next();
        assert_eq!(a, b, "{} step {step}: selection diverged", kind.name());
        let Some(id) = a else {
            // Both drained: busy period over; restart deterministically.
            for (i, q) in queued.iter_mut().enumerate() {
                *q = 1 + (i as u64 + step) % 3;
                let bits = len_pattern(step + i as u64);
                pifo.backlog(SessionId(i), bits, None);
                legacy.backlog(SessionId(i), bits, None);
            }
            continue;
        };
        let (ps, pf) = pifo.tags(id);
        let (ls, lf) = legacy.tags(id);
        assert_eq!(
            (ps.to_bits(), pf.to_bits()),
            (ls.to_bits(), lf.to_bits()),
            "{} step {step}: tags diverged ({ps},{pf}) vs ({ls},{lf})",
            kind.name()
        );
        assert_lockstep(kind, step, &pifo, &legacy);
        queued[id.0] -= 1;
        // Occasionally a fresh arrival lands on an idle session mid-run.
        if (step * 7 + seed).is_multiple_of(11) {
            for (i, q) in queued.iter_mut().enumerate() {
                if *q == 0 && SessionId(i) != id {
                    *q = 2;
                    let bits = len_pattern(step + 1);
                    pifo.backlog(SessionId(i), bits, None);
                    legacy.backlog(SessionId(i), bits, None);
                    break;
                }
            }
        }
        let next = (queued[id.0] > 0).then(|| len_pattern(step + 2));
        pifo.requeue(id, next);
        legacy.requeue(id, next);
        assert_lockstep(kind, step, &pifo, &legacy);
    }
}

#[test]
fn every_policy_matches_legacy_in_lockstep() {
    for kind in SchedulerKind::ALL.into_iter().filter(|k| k.has_legacy()) {
        drive_lockstep(kind, 5, 600, 3);
        drive_lockstep(kind, 9, 400, 17);
    }
}

// ---------------------------------------------------------------------------
// Network-level golden traces: the reduced Fig. 3 workload (outage, finite
// buffer, flow churn) replays byte-for-byte under both backends.
// ---------------------------------------------------------------------------

/// A reduced Fig. 3 hierarchy, generic over the node factory so the same
/// topology can be built PIFO-backed or legacy-backed.
fn fig3ish<O: Observer>(
    obs: O,
    node: impl Fn(f64) -> MixedScheduler + Copy + 'static,
) -> (Hierarchy<MixedScheduler, O>, Vec<NodeId>) {
    let mut bld = Hierarchy::<MixedScheduler, O>::builder_with_observer(LINK, node, obs);
    let root = bld.root();
    let n2 = bld.add_internal(root, 0.5).unwrap();
    let n1 = bld.add_internal(n2, 0.494).unwrap();
    let rt1 = bld.add_leaf(n1, 0.81).unwrap();
    let be1 = bld.add_leaf(n1, 0.19).unwrap();
    let ps1 = bld.add_leaf(root, 0.05).unwrap();
    let cs1 = bld.add_leaf(root, 0.05).unwrap();
    let ps6 = bld.add_leaf(n2, 0.0506).unwrap();
    (bld.build(), vec![rt1, be1, ps1, cs1, ps6])
}

/// Runs the reduced Fig. 3 scenario to `horizon` and returns the raw JSONL
/// trace plus the per-flow statistics the oracle compares.
fn run_fig3ish(
    node: impl Fn(f64) -> MixedScheduler + Copy + 'static,
    horizon: f64,
) -> (String, Vec<String>) {
    let buf = SharedBuf::new();
    let (h, leaves) = fig3ish(JsonlObserver::new(buf.clone()), node);
    let mut sim = Simulation::new(h);
    sim.stats.trace_flow(1);
    let mut attach =
        |flow: u32, src: Box<dyn hpfq::sim::Source>, leaf: usize, buffer: Option<u64>| {
            sim.add_source(
                flow,
                src,
                SourceConfig {
                    leaf: leaves[leaf],
                    buffer_bytes: buffer,
                    delivery_delay: 0.0,
                },
            );
        };
    attach(
        1,
        Box::new(PeriodicOnOffSource::new(
            1,
            PKT,
            9e6,
            0.025,
            0.100,
            0.200,
            f64::INFINITY,
        )),
        0,
        None,
    );
    // BE-1 floods through a finite buffer so drop accounting is exercised.
    attach(
        2,
        Box::new(CbrSource::new(2, PKT, 12e6, 0.0, f64::INFINITY)),
        1,
        Some(3 * u64::from(PKT)),
    );
    attach(
        11,
        Box::new(PoissonSource::new(11, PKT, 2.25e6, 0.0, f64::INFINITY, 7)),
        2,
        None,
    );
    attach(
        31,
        Box::new(PacketTrainSource::new(
            31,
            PKT,
            7,
            f64::from(PKT) * 8.0 / LINK,
            0.193,
            0.05,
            f64::INFINITY,
        )),
        3,
        None,
    );
    attach(
        16,
        Box::new(PoissonSource::new(16, PKT, 1.14e6, 0.0, f64::INFINITY, 9)),
        4,
        None,
    );
    // A 30 ms outage and mid-run flow churn exercise the epoch/credit and
    // detach machinery on both backends.
    sim.schedule_command(0.9, SimCommand::SetLinkRate(0.0));
    sim.schedule_command(0.93, SimCommand::SetLinkRate(LINK));
    sim.schedule_command(1.2, SimCommand::RemoveFlow(16));
    sim.run(horizon);
    sim.verify_conservation().unwrap();
    let mut stats = vec![format!(
        "total {} {} {}",
        sim.stats.total_bytes, sim.stats.total_packets, sim.stats.last_departure
    )];
    for flow in [1u32, 2, 11, 31, 16] {
        stats.push(format!("flow {flow} {:?}", sim.stats.flow(flow)));
    }
    stats.push(format!("records {:?}", sim.stats.trace(1)));
    (buf.contents(), stats)
}

#[test]
fn fig3_trace_is_byte_identical_for_every_policy() {
    for kind in SchedulerKind::ALL.into_iter().filter(|k| k.has_legacy()) {
        let (trace_p, stats_p) = run_fig3ish(move |r| kind.build(r), 1.6);
        let (trace_l, stats_l) = run_fig3ish(move |r| kind.build_legacy(r), 1.6);
        assert!(
            trace_p.lines().count() > 500,
            "{}: trace too small to be meaningful",
            kind.name()
        );
        assert_eq!(
            stats_p,
            stats_l,
            "{}: statistics diverged from legacy",
            kind.name()
        );
        assert_eq!(
            trace_p,
            trace_l,
            "{}: PIFO trace diverged from legacy",
            kind.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Snapshot → restore → resume: a PIFO run interrupted mid-busy-period and
// restored into a fresh scheduler must continue exactly like the
// *hand-rolled* original run straight through.
// ---------------------------------------------------------------------------

#[test]
fn pifo_snapshot_resume_matches_legacy_straight_run() {
    const N: usize = 6;
    for kind in SchedulerKind::ALL.into_iter().filter(|k| k.has_legacy()) {
        let mut legacy = kind.build_legacy(1e6);
        let mut pifo = kind.build(1e6);
        for _ in 0..N {
            legacy.add_session(1.0 / N as f64);
            pifo.add_session(1.0 / N as f64);
        }
        let mut queued: Vec<u64> = (0..N as u64).map(|i| 3 + i % 3).collect();
        let mut queued_l = queued.clone();
        for (i, &q) in queued.iter().enumerate() {
            if q > 0 {
                legacy.backlog(SessionId(i), len_pattern(i as u64), None);
                pifo.backlog(SessionId(i), len_pattern(i as u64), None);
            }
        }
        let run = |s: &mut MixedScheduler, q: &mut [u64], start: u64, steps: u64| {
            let mut log = Vec::new();
            for step in start..start + steps {
                let Some(id) = s.select_next() else {
                    for (i, qq) in q.iter_mut().enumerate() {
                        *qq = 1 + (i as u64 + step) % 3;
                        s.backlog(SessionId(i), len_pattern(step + i as u64), None);
                    }
                    continue;
                };
                let tags = s.tags(id);
                log.push((id.0, tags.0.to_bits(), tags.1.to_bits()));
                q[id.0] -= 1;
                let next = (q[id.0] > 0).then(|| len_pattern(step + 2));
                s.requeue(id, next);
            }
            log
        };
        let mut legacy_log = run(&mut legacy, &mut queued_l, 0, 150);
        legacy_log.extend(run(&mut legacy, &mut queued_l, 150, 150));

        let mut pifo_log = run(&mut pifo, &mut queued, 0, 150);
        let snap = pifo.save_state();
        let mut resumed = kind.build(1e6);
        for _ in 0..N {
            resumed.add_session(1.0 / N as f64);
        }
        resumed.load_state(&snap).unwrap();
        assert_eq!(
            resumed.save_state().to_bytes(),
            snap.to_bytes(),
            "{}: PIFO save→load→save is not byte-stable",
            kind.name()
        );
        pifo_log.extend(run(&mut resumed, &mut queued, 150, 150));
        assert_eq!(
            pifo_log,
            legacy_log,
            "{}: restored PIFO run diverges from the legacy straight run",
            kind.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Backend equivalence: every eligible-set backend (dual heap, calendar,
// treap where applicable) must pop in the exact same rank order, so the
// full dispatch sequence — selections, tags, virtual-time bits, network
// traces — is byte-identical across backends for every policy.
// ---------------------------------------------------------------------------

#[test]
fn every_backend_matches_dual_heap_in_lockstep() {
    for kind in SchedulerKind::ALL {
        for &backend in EligibleBackend::all_for(kind) {
            if backend == EligibleBackend::DualHeap {
                continue;
            }
            let alt = kind.build_with_backend(1e6, backend);
            let heap = kind.build(1e6);
            drive_lockstep_pair(kind, alt, heap, 5, 600, 3);
            let alt = kind.build_with_backend(1e6, backend);
            let heap = kind.build(1e6);
            drive_lockstep_pair(kind, alt, heap, 9, 400, 17);
        }
    }
}

#[test]
fn fig3_trace_is_byte_identical_across_backends() {
    for kind in SchedulerKind::ALL {
        let (trace_h, stats_h) = run_fig3ish(move |r| kind.build(r), 1.6);
        for &backend in EligibleBackend::all_for(kind) {
            if backend == EligibleBackend::DualHeap {
                continue;
            }
            let (trace_b, stats_b) =
                run_fig3ish(move |r| kind.build_with_backend(r, backend), 1.6);
            assert_eq!(
                stats_b,
                stats_h,
                "{} on {}: statistics diverged from dual heap",
                kind.name(),
                backend.name()
            );
            assert_eq!(
                trace_b,
                trace_h,
                "{} on {}: trace diverged from dual heap",
                kind.name(),
                backend.name()
            );
        }
    }
}

/// Snapshots are backend-portable: the rank-model membership saved from a
/// calendar-backed run restores into a dual-heap scheduler (and vice versa)
/// and both continue identically.
#[test]
fn snapshot_restores_across_backends() {
    const N: usize = 6;
    for kind in SchedulerKind::ALL {
        for (&from, &to) in [
            (&EligibleBackend::Calendar, &EligibleBackend::DualHeap),
            (&EligibleBackend::DualHeap, &EligibleBackend::Calendar),
        ] {
            let mut a = kind.build_with_backend(1e6, from);
            let mut b = kind.build_with_backend(1e6, to);
            for _ in 0..N {
                a.add_session(1.0 / N as f64);
                b.add_session(1.0 / N as f64);
            }
            let mut queued: Vec<u64> = (0..N as u64).map(|i| 3 + i % 3).collect();
            for (i, &q) in queued.iter().enumerate() {
                if q > 0 {
                    a.backlog(SessionId(i), len_pattern(i as u64), None);
                }
            }
            // Run `a` mid-busy-period, then restore into `b` (the other
            // backend) and drive both forward in lockstep.
            for step in 0..40u64 {
                let Some(id) = a.select_next() else { break };
                queued[id.0] -= 1;
                let next = (queued[id.0] > 0).then(|| len_pattern(step + 2));
                a.requeue(id, next);
            }
            b.load_state(&a.save_state()).unwrap();
            for step in 0..80u64 {
                let x = a.select_next();
                let y = b.select_next();
                assert_eq!(
                    x,
                    y,
                    "{} {}->{} step {step}: post-restore selection diverged",
                    kind.name(),
                    from.name(),
                    to.name()
                );
                let Some(id) = x else { break };
                assert_eq!(
                    a.tags(id).1.to_bits(),
                    b.tags(id).1.to_bits(),
                    "{} {}->{} step {step}: tags diverged",
                    kind.name(),
                    from.name(),
                    to.name()
                );
                queued[id.0] = queued[id.0].saturating_sub(1);
                let next = (queued[id.0] > 0).then(|| len_pattern(step + 5));
                a.requeue(id, next);
                b.requeue(id, next);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Randomized churn + outage differential suites (proptest-tests feature).
// ---------------------------------------------------------------------------

#[cfg(feature = "proptest-tests")]
mod random_differential {
    use super::*;
    use hpfq::sim::SmallRng;

    /// One random admissible op schedule driven into two schedulers that
    /// must stay bit-identical: random backlogs on idle sessions, random
    /// service continuations/drains, random full-drain idle gaps.
    fn drive_random_schedule(
        kind: SchedulerKind,
        label: &str,
        case: u64,
        mut pifo: MixedScheduler,
        mut legacy: MixedScheduler,
    ) {
        let mut rng = SmallRng::seed_from_u64(0x91f0_0000 + case);
        let n = rng.gen_range_usize(2, 12);
        for i in 0..n {
            let phi = 1.0 / n as f64 * if i % 2 == 0 { 1.2 } else { 0.8 };
            pifo.add_session(phi);
            legacy.add_session(phi);
        }
        // queued[i] > 0 ⇔ session i is offered to the scheduler.
        let mut queued = vec![0u64; n];
        for step in 0..rng.gen_range_usize(50, 400) as u64 {
            // Random arrivals on idle sessions (more likely when
            // everything is idle, so busy periods restart).
            let idle_all = queued.iter().all(|&q| q == 0);
            let arrivals = if idle_all {
                rng.gen_range_usize(1, n + 1)
            } else {
                rng.gen_range_usize(0, 3)
            };
            for _ in 0..arrivals {
                let i = rng.gen_range_usize(0, n);
                let bits = (rng.gen_range_usize(1, 24) * 500) as f64;
                if queued[i] == 0 {
                    pifo.backlog(SessionId(i), bits, None);
                    legacy.backlog(SessionId(i), bits, None);
                    queued[i] = rng.gen_range_usize(1, 5) as u64;
                }
            }
            let a = pifo.select_next();
            let b = legacy.select_next();
            assert_eq!(a, b, "{} {label} case {case} step {step}", kind.name());
            let Some(id) = a else { continue };
            let (ps, pf) = pifo.tags(id);
            let (ls, lf) = legacy.tags(id);
            assert_eq!(
                (ps.to_bits(), pf.to_bits()),
                (ls.to_bits(), lf.to_bits()),
                "{} {label} case {case} step {step}: tags",
                kind.name()
            );
            assert_eq!(
                pifo.virtual_time().to_bits(),
                legacy.virtual_time().to_bits(),
                "{} {label} case {case} step {step}: virtual time",
                kind.name()
            );
            queued[id.0] -= 1;
            let next = (queued[id.0] > 0).then(|| (rng.gen_range_usize(1, 24) * 500) as f64);
            pifo.requeue(id, next);
            legacy.requeue(id, next);
        }
    }

    /// Arbitrary admissible op sequences against the hand-rolled legacy
    /// oracle (policies that have one — rr is PIFO-native).
    #[test]
    fn random_schedules_agree_for_every_policy() {
        for kind in SchedulerKind::ALL.into_iter().filter(|k| k.has_legacy()) {
            for case in 0..24u64 {
                drive_random_schedule(
                    kind,
                    "vs-legacy",
                    case,
                    kind.build(1e6),
                    kind.build_legacy(1e6),
                );
            }
        }
    }

    /// The same randomized schedules with the calendar (and, for WF²Q+,
    /// treap) eligible set selected against the dual-heap default — the
    /// lockstep differential CI runs with the calendar backend.
    #[test]
    fn random_schedules_agree_across_backends() {
        for kind in SchedulerKind::ALL {
            for &backend in EligibleBackend::all_for(kind) {
                if backend == EligibleBackend::DualHeap {
                    continue;
                }
                for case in 0..24u64 {
                    drive_random_schedule(
                        kind,
                        backend.name(),
                        case,
                        kind.build_with_backend(1e6, backend),
                        kind.build(1e6),
                    );
                }
            }
        }
    }

    /// One randomized outage/churn run of the Fig. 3 topology; returns the
    /// raw JSONL trace.
    fn run_random(
        node: impl Fn(f64) -> MixedScheduler + Copy + 'static,
        out_start: f64,
        out_len: f64,
        churn_at: f64,
    ) -> String {
        let buf = SharedBuf::new();
        let (h, leaves) = fig3ish(JsonlObserver::new(buf.clone()), node);
        let mut sim = Simulation::new(h);
        sim.add_source(
            1,
            CbrSource::new(1, PKT, 9e6, 0.0, f64::INFINITY),
            SourceConfig {
                leaf: leaves[0],
                buffer_bytes: None,
                delivery_delay: 0.0,
            },
        );
        sim.add_source(
            2,
            PoissonSource::new(2, PKT, 6e6, 0.0, f64::INFINITY, 5),
            SourceConfig {
                leaf: leaves[1],
                buffer_bytes: Some(2 * u64::from(PKT)),
                delivery_delay: 0.0,
            },
        );
        sim.add_source(
            3,
            CbrSource::new(3, PKT, 3e6, 0.1, f64::INFINITY),
            SourceConfig {
                leaf: leaves[4],
                buffer_bytes: None,
                delivery_delay: 0.0,
            },
        );
        sim.schedule_command(out_start, SimCommand::SetLinkRate(0.0));
        sim.schedule_command(out_start + out_len, SimCommand::SetLinkRate(LINK));
        sim.schedule_command(churn_at, SimCommand::RemoveFlow(3));
        sim.run(1.5);
        sim.verify_conservation().unwrap();
        buf.contents()
    }

    /// Random outage windows + random churn on the Fig. 3 workload: the
    /// full network traces must stay byte-identical.
    #[test]
    fn random_outage_and_churn_traces_agree() {
        for case in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(0x07a6_e000 + case);
            let legacy_kinds: Vec<SchedulerKind> = SchedulerKind::ALL
                .into_iter()
                .filter(|k| k.has_legacy())
                .collect();
            let kind = legacy_kinds[rng.gen_range_usize(0, legacy_kinds.len())];
            let out_start = rng.gen_range_f64(0.2, 1.0);
            let out_len = rng.gen_range_f64(0.005, 0.08);
            let churn_at = rng.gen_range_f64(0.3, 1.3);
            let trace_p = run_random(move |r| kind.build(r), out_start, out_len, churn_at);
            let trace_l = run_random(move |r| kind.build_legacy(r), out_start, out_len, churn_at);
            assert_eq!(
                trace_p,
                trace_l,
                "{} case {case}: random outage/churn trace diverged",
                kind.name()
            );
        }
    }
}
