//! End-to-end accuracy of H-WF²Q+ against the ideal H-GPS fluid system:
//! for the same arrival pattern, every leaf's cumulative packet-system
//! service must stay within a few packets of its fluid service — the
//! hierarchical generalization of the one-packet-accuracy property that
//! motivates WF²Q+ (paper §3.3–3.4 and Theorem 4).

use hpfq::core::{Hierarchy, NodeId, Wf2qPlus};
use hpfq::fluid::{Arrival, FluidNodeId, FluidSim, FluidTree};
use hpfq::sim::{Simulation, SourceConfig, TraceSource};
use hpfq_analysis::service_curve_from_records;
use hpfq_sim::SmallRng;

const LINK: f64 = 1e6;
const PKT: u32 = 500; // 4000 bits

struct Mirror {
    h: Hierarchy<Wf2qPlus>,
    fluid: FluidTree,
    leaves: Vec<(NodeId, FluidNodeId)>,
}

/// Builds mirrored 2-level trees: `classes` internal nodes, each with
/// `per_class` leaves, shares perturbed by `rng`.
fn build(classes: usize, per_class: usize, rng: &mut SmallRng) -> Mirror {
    let mut bld = Hierarchy::builder(LINK, Wf2qPlus::new);
    let mut fluid = FluidTree::new();
    let mut leaves = Vec::new();
    // Random class shares summing to 1.
    let raw: Vec<f64> = (0..classes).map(|_| rng.gen_range_f64(0.5, 2.0)).collect();
    let total: f64 = raw.iter().sum();
    for &w in &raw {
        let phi = w / total;
        let c = bld.add_internal(bld.root(), phi).unwrap();
        let fc = fluid.add_internal(fluid.root(), phi).unwrap();
        let raw_l: Vec<f64> = (0..per_class)
            .map(|_| rng.gen_range_f64(0.5, 2.0))
            .collect();
        let total_l: f64 = raw_l.iter().sum();
        for &wl in &raw_l {
            let phil = wl / total_l;
            leaves.push((
                bld.add_leaf(c, phil).unwrap(),
                fluid.add_leaf(fc, phil).unwrap(),
            ));
        }
    }
    Mirror {
        h: bld.build(),
        fluid,
        leaves,
    }
}

#[test]
fn packet_service_tracks_fluid_service() {
    let mut rng = SmallRng::seed_from_u64(2024);
    for trial in 0..5 {
        let mirror = build(3, 3, &mut rng);
        let nleaves = mirror.leaves.len();

        // Random bursty arrivals: each leaf gets bursts at random times.
        let mut arrivals_per_leaf: Vec<Vec<f64>> = vec![Vec::new(); nleaves];
        for arr in &mut arrivals_per_leaf {
            let bursts = rng.gen_range_u32(1, 5);
            for _ in 0..bursts {
                let t0 = rng.gen_range_f64(0.0, 2.0);
                let n = rng.gen_range_u32(1, 20);
                for k in 0..n {
                    arr.push(t0 + k as f64 * 1e-4);
                }
            }
            arr.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }

        // Fluid run.
        let mut fluid_arr = Vec::new();
        for (i, times) in arrivals_per_leaf.iter().enumerate() {
            for (k, &t) in times.iter().enumerate() {
                fluid_arr.push(Arrival {
                    time: t,
                    leaf: mirror.leaves[i].1,
                    bits: f64::from(PKT) * 8.0,
                    id: (i * 1000 + k) as u64,
                });
            }
        }
        fluid_arr.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
        let fluid_res = FluidSim::run(&mirror.fluid, LINK, &fluid_arr);

        // Packet run.
        let mut sim = Simulation::new(mirror.h);
        for (i, times) in arrivals_per_leaf.iter().enumerate() {
            let flow = i as u32;
            sim.stats.trace_flow(flow);
            sim.add_source(
                flow,
                TraceSource::new(flow, times.iter().map(|&t| (t, PKT)).collect()),
                SourceConfig::open_loop(mirror.leaves[i].0),
            );
        }
        sim.run(1000.0);

        // Compare cumulative service curves on a time grid.
        let horizon = fluid_res.end_time;
        let pkt_bits = f64::from(PKT) * 8.0;
        // Tolerance: one packet of lead (SEFF) plus the Theorem-1 B-WFI
        // lag summed over two levels — comfortably under 4 packets here.
        let tol = 4.0 * pkt_bits;
        for (i, &(_, fleaf)) in mirror.leaves.iter().enumerate() {
            let curve = service_curve_from_records(sim.stats.trace(i as u32).iter());
            let fcurve = &fluid_res.service[fleaf.0];
            let mut t = 0.0;
            while t <= horizon {
                let dev = curve.value_at(t) - fcurve.value_at(t);
                assert!(
                    dev.abs() <= tol,
                    "trial {trial} leaf {i} t={t}: packet {} vs fluid {} (dev {dev})",
                    curve.value_at(t),
                    fcurve.value_at(t),
                );
                t += 0.01;
            }
            // Total service identical (both drain everything).
            assert!(
                (curve.total() - fcurve.total()).abs() < 1e-6,
                "trial {trial} leaf {i} totals differ"
            );
        }
    }
}

/// The hierarchical bandwidth-distribution property (paper eq. 9) on the
/// packet system: two backlogged sibling classes split their parent's
/// bandwidth by their shares even while an unrelated class floods.
#[test]
fn sibling_shares_respected_under_flooding() {
    let mut bld = Hierarchy::builder(LINK, Wf2qPlus::new);
    let root = bld.root();
    let a = bld.add_internal(root, 0.5).unwrap();
    let b = bld.add_leaf(root, 0.5).unwrap();
    let a1 = bld.add_leaf(a, 0.7).unwrap();
    let a2 = bld.add_leaf(a, 0.3).unwrap();

    let mut sim = Simulation::new(bld.build());
    for flow in 0..3u32 {
        sim.stats.trace_flow(flow);
    }
    let deep: Vec<(f64, u32)> = (0..2000).map(|_| (0.0, PKT)).collect();
    sim.add_source(
        0,
        TraceSource::new(0, deep.clone()),
        SourceConfig::open_loop(a1),
    );
    sim.add_source(
        1,
        TraceSource::new(1, deep.clone()),
        SourceConfig::open_loop(a2),
    );
    sim.add_source(2, TraceSource::new(2, deep), SourceConfig::open_loop(b));
    sim.run(4.0);

    let bw = |flow: u32| hpfq_analysis::measures::bandwidth_over(sim.stats.trace(flow), 0.5, 3.5);
    assert!((bw(0) / LINK - 0.35).abs() < 0.01, "a1 {}", bw(0));
    assert!((bw(1) / LINK - 0.15).abs() < 0.01, "a2 {}", bw(1));
    assert!((bw(2) / LINK - 0.50).abs() < 0.01, "b {}", bw(2));
}
