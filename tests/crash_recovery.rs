//! Crash containment golden tests: an injected worker panic must be
//! caught, classified, rolled back to the last epoch checkpoint, and
//! retried — and the completed run must still be **byte-identical** to
//! the sequential oracle. Also pins the multi-stint path itself: forcing
//! tiny stints (frequent checkpoint/re-split cycles) must not perturb a
//! single byte either.
//!
//! Topology: the same 3-hop tandem with cross traffic, mid-run outage,
//! and flow churn as `parallel_determinism.rs` — the adversarial
//! scenario, not a friendly one.

use hpfq::core::{Hierarchy, MixedScheduler, SchedulerKind};
use hpfq::obs::jsonl::merge_traces;
use hpfq::obs::JsonlObserver;
use hpfq::sim::{
    CbrSource, FlowStats, Hop, LinkLedger, Network, Route, ServiceRecord, ShardFailure, SimCommand,
};

const PKT: u32 = 8192;

type Obs = JsonlObserver<Vec<u8>>;

fn sink() -> Obs {
    JsonlObserver::new(Vec::new())
}

#[derive(Debug, PartialEq)]
struct Golden {
    flows: Vec<(u32, FlowStats)>,
    records: Vec<(u32, Vec<ServiceRecord>)>,
    total_bytes: u64,
    total_packets: u64,
    last_departure: f64,
    ledgers: Vec<LinkLedger>,
    merged: String,
}

fn drain(net: Network<MixedScheduler, Obs>) -> Golden {
    net.verify_conservation().unwrap();
    let flows = [0u32, 100, 101, 102]
        .iter()
        .map(|&f| (f, net.stats.flow(f)))
        .collect();
    let records = vec![(0u32, net.stats.trace(0).to_vec())];
    let total_bytes = net.stats.total_bytes;
    let total_packets = net.stats.total_packets;
    let last_departure = net.stats.last_departure;
    let ledgers = (0..net.link_count()).map(|l| net.link_ledger(l)).collect();
    let bufs: Vec<String> = net
        .into_observers()
        .into_iter()
        .map(|o| String::from_utf8(o.into_inner()).unwrap())
        .collect();
    Golden {
        flows,
        records,
        total_bytes,
        total_packets,
        last_departure,
        ledgers,
        merged: merge_traces(&bufs),
    }
}

/// 3-hop tandem with saturating cross traffic, a middle-link outage, and
/// churn — `parallel_determinism::tandem_net` verbatim.
fn tandem_net() -> Network<MixedScheduler, Obs> {
    let kind = SchedulerKind::Wf2qPlus;
    let mut net: Network<MixedScheduler, Obs> = Network::new();
    let mut hops = Vec::new();
    for li in 0..3usize {
        let mut bld = Hierarchy::<MixedScheduler, Obs>::builder_with_observer(
            10e6,
            move |r| kind.build(r),
            sink(),
        );
        let root = bld.root();
        let phi = if li == 1 { 0.2 } else { 0.5 };
        let tandem_leaf = bld.add_leaf(root, phi).unwrap();
        let cross_leaf = bld.add_leaf(root, 1.0 - phi).unwrap();
        let link = net.add_link(bld.build());
        hops.push(Hop {
            link,
            leaf: tandem_leaf,
            buffer_bytes: if li == 1 {
                Some(2 * u64::from(PKT))
            } else {
                None
            },
            prop_delay: 0.002,
        });
        let flow = 100 + link as u32;
        net.add_route(
            flow,
            CbrSource::new(flow, PKT, 8e6, 0.0, 5.0),
            Route::new(vec![Hop {
                link,
                leaf: cross_leaf,
                buffer_bytes: Some(16 * u64::from(PKT)),
                prop_delay: 0.0,
            }]),
        );
    }
    net.stats.trace_flow(0);
    net.add_route(0, CbrSource::new(0, PKT, 4e6, 0.0, 5.0), Route::new(hops));
    net.schedule_command(1.0, SimCommand::SetLinkRateOn { link: 1, bps: 0.0 });
    net.schedule_command(1.05, SimCommand::SetLinkRateOn { link: 1, bps: 10e6 });
    net.schedule_command(2.0, SimCommand::RemoveFlow(101));
    net.schedule_command(3.0, SimCommand::RemoveFlow(0));
    net
}

fn golden() -> Golden {
    let mut seq = tandem_net();
    seq.run(8.0);
    drain(seq)
}

/// Tiny stints (checkpoint + merge + re-split every 4 epochs) must be
/// invisible in the results: the stint boundary sits exactly at an epoch
/// boundary and per-flow accumulators travel to their single writer, so
/// nothing re-associates.
#[test]
fn tiny_stints_stay_byte_identical() {
    let gold = golden();
    for n in [2usize, 4] {
        let mut net = tandem_net();
        net.set_stint_epochs(4);
        let report = net.run_parallel(8.0, n);
        assert_eq!(report.fallback, None, "n={n} must genuinely shard");
        assert!(report.failures.is_empty(), "n={n}: {:?}", report.failures);
        assert_eq!(report.rollbacks, 0, "n={n}");
        assert!(
            report.checkpoints >= 2,
            "n={n}: stints of 4 epochs over {} epochs must refresh the checkpoint",
            report.epochs
        );
        assert_eq!(drain(net), gold, "tiny-stint n={n} diverged");
    }
}

/// The kill-and-resume golden: a worker panic injected at a chosen
/// (shard, epoch) must be contained (typed failure, no hang, no abort),
/// rolled back to the checkpoint, retried — and the finished run must be
/// byte-identical to the sequential oracle.
#[test]
fn injected_panic_rolls_back_and_completes_byte_identically() {
    let gold = golden();
    for n in [2usize, 3] {
        let mut net = tandem_net();
        net.inject_shard_panic(1, 3);
        let report = net.run_parallel(8.0, n);
        assert_eq!(report.fallback, None, "n={n} must genuinely shard");
        assert_eq!(report.rollbacks, 1, "n={n}: exactly one rollback");
        assert!(!report.halt_replayed, "n={n}");
        // The panicking shard reports a Panic at the injected epoch; the
        // peers it abandoned report the poisoned (or timed-out) barrier.
        let panics: Vec<_> = report
            .failures
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    ShardFailure::Panic {
                        shard: 1,
                        epoch: 3,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(panics.len(), 1, "n={n}: {:?}", report.failures);
        assert!(
            report.failures.iter().all(|f| matches!(
                f,
                ShardFailure::Panic { .. }
                    | ShardFailure::BarrierPoisoned { .. }
                    | ShardFailure::BarrierTimeout { .. }
            )),
            "n={n}: {:?}",
            report.failures
        );
        assert_eq!(drain(net), gold, "n={n}: post-recovery run diverged");
    }
}

/// A panic in a later stint rolls back to the *refreshed* checkpoint,
/// not to t=0 — and is still byte-identical.
#[test]
fn late_panic_rolls_back_to_refreshed_checkpoint() {
    let gold = golden();
    let mut net = tandem_net();
    net.set_stint_epochs(4);
    // Epoch 10 lives in the third stint (epochs 8..12): two checkpoint
    // refreshes must already have happened when the panic fires.
    net.inject_shard_panic(0, 10);
    let report = net.run_parallel(8.0, 2);
    assert_eq!(report.fallback, None);
    assert_eq!(report.rollbacks, 1);
    assert!(
        report.failures.iter().any(|f| matches!(
            f,
            ShardFailure::Panic {
                shard: 0,
                epoch: 10,
                ..
            }
        )),
        "{:?}",
        report.failures
    );
    assert!(report.checkpoints >= 3, "{}", report.checkpoints);
    assert_eq!(drain(net), gold, "late-panic recovery diverged");
}
