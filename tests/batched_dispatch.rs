//! Batched dispatch (`Network::set_dispatch_batch`): the k=1 golden pin,
//! conservation and work totals at k>1, the O(k·Lmax) unfairness bound
//! measured by `hpfq-analysis`, and snapshot round-trips with a planned
//! train in flight.
//!
//! The contract under test: `k = 1` is **byte-identical** to the
//! historical per-packet event loop (same merged JSONL trace, same
//! stats), while `k > 1` trades exactness for amortized cost — a train of
//! up to `k` packets is planned against the hierarchy in one pass, so a
//! newly backlogged session can be served up to `k − 1` packets late, an
//! `O(k · Lmax)` service deviation on top of the scheduler's own
//! fairness bound.

use hpfq::analysis::{empirical_bwfi, service_curve_from_records, wf2q_plus_bwfi};
use hpfq::core::{Hierarchy, MixedScheduler, NodeId, SchedulerKind};
use hpfq::obs::{JsonlObserver, Observer, SharedBuf};
use hpfq::sim::{CbrSource, Network, PeriodicOnOffSource, Route, SimCommand, TraceSource};

const LINK: f64 = 10e6;
const PKT: u32 = 1500; // 12000 bits

/// A small two-level WF²Q+ hierarchy: root → {A, B → {B1, B2}} with
/// leaves `[a, b1, b2]`.
fn tree<O: Observer>(obs: O) -> (Hierarchy<MixedScheduler, O>, Vec<NodeId>) {
    let kind = SchedulerKind::Wf2qPlus;
    let mut bld =
        Hierarchy::<MixedScheduler, O>::builder_with_observer(LINK, move |r| kind.build(r), obs);
    let root = bld.root();
    let a = bld.add_leaf(root, 0.5).unwrap();
    let b = bld.add_internal(root, 0.5).unwrap();
    let b1 = bld.add_leaf(b, 0.75).unwrap();
    let b2 = bld.add_leaf(b, 0.25).unwrap();
    (bld.build(), vec![a, b1, b2])
}

/// Saturating workload with an on-off source and a mid-run outage, so the
/// rate-change/epoch machinery runs under both dispatch modes.
fn build_net(batch: usize, buf: &SharedBuf) -> Network<MixedScheduler, JsonlObserver<SharedBuf>> {
    let (h, leaves) = tree(JsonlObserver::new(buf.clone()));
    let mut net: Network<MixedScheduler, _> = Network::new();
    net.set_dispatch_batch(batch);
    net.add_link(h);
    net.stats.trace_flow(0);
    net.add_route(
        0,
        CbrSource::new(0, PKT, 6e6, 0.0, 1.5),
        Route::single(leaves[0], None, 0.0),
    );
    net.add_route(
        1,
        PeriodicOnOffSource::new(1, PKT, 5e6, 0.01, 0.08, 0.15, 1.5),
        Route::single(leaves[1], None, 0.0),
    );
    net.add_route(
        2,
        CbrSource::new(2, PKT, 2e6, 0.005, 1.5),
        Route::single(leaves[2], Some(8 * u64::from(PKT)), 0.0),
    );
    net.schedule_command(0.6, SimCommand::SetLinkRate(0.0));
    net.schedule_command(0.63, SimCommand::SetLinkRate(LINK));
    net
}

#[test]
fn dispatch_batch_1_is_byte_identical_to_the_classic_loop() {
    // Golden: the default network (never touched by set_dispatch_batch).
    let buf_a = SharedBuf::new();
    let mut golden = {
        let (h, leaves) = tree(JsonlObserver::new(buf_a.clone()));
        let mut net: Network<MixedScheduler, _> = Network::new();
        net.add_link(h);
        net.stats.trace_flow(0);
        net.add_route(
            0,
            CbrSource::new(0, PKT, 6e6, 0.0, 1.5),
            Route::single(leaves[0], None, 0.0),
        );
        net.add_route(
            1,
            PeriodicOnOffSource::new(1, PKT, 5e6, 0.01, 0.08, 0.15, 1.5),
            Route::single(leaves[1], None, 0.0),
        );
        net.add_route(
            2,
            CbrSource::new(2, PKT, 2e6, 0.005, 1.5),
            Route::single(leaves[2], Some(8 * u64::from(PKT)), 0.0),
        );
        net.schedule_command(0.6, SimCommand::SetLinkRate(0.0));
        net.schedule_command(0.63, SimCommand::SetLinkRate(LINK));
        net
    };
    golden.run(3.0);
    golden.verify_conservation().unwrap();

    let buf_b = SharedBuf::new();
    let mut batched = build_net(1, &buf_b);
    batched.run(3.0);
    batched.verify_conservation().unwrap();

    assert_eq!(golden.stats.total_bytes, batched.stats.total_bytes);
    assert_eq!(golden.stats.total_packets, batched.stats.total_packets);
    assert_eq!(golden.stats.last_departure, batched.stats.last_departure);
    assert_eq!(golden.stats.trace(0), batched.stats.trace(0));
    for flow in [0u32, 1, 2] {
        assert_eq!(golden.stats.flow(flow), batched.stats.flow(flow));
    }
    let (a, b) = (buf_a.contents(), buf_b.contents());
    assert!(a.lines().count() > 500, "trace too small to be meaningful");
    assert_eq!(a, b, "k=1 batched run diverged from the classic loop");
}

#[test]
fn batched_trains_conserve_bytes_and_serve_the_same_work() {
    let buf_ref = SharedBuf::new();
    let mut reference = build_net(1, &buf_ref);
    reference.run(3.0);
    reference.verify_conservation().unwrap();

    for k in [2usize, 4, 8] {
        let buf = SharedBuf::new();
        let mut net = build_net(k, &buf);
        net.run(3.0);
        net.verify_conservation()
            .unwrap_or_else(|e| panic!("k={k}: {e}"));
        // All sources end by t=1.5 and the run drains by t=3, so both
        // modes serve exactly the admitted work; only *when* each packet
        // went out may differ (within the train bound).
        assert_eq!(
            reference.stats.total_bytes, net.stats.total_bytes,
            "k={k} served different total work"
        );
        assert_eq!(reference.stats.total_packets, net.stats.total_packets);
        for flow in [0u32, 1, 2] {
            assert_eq!(
                reference.stats.flow(flow).bytes,
                net.stats.flow(flow).bytes,
                "k={k} flow {flow}"
            );
        }
    }
}

#[test]
fn batched_unfairness_stays_within_k_lmax_of_the_exact_schedule() {
    const BITS: f64 = 12_000.0; // PKT * 8
    let shares = [0.5, 0.3, 0.2];
    // measured[k-index][flow] B-WFI in bits.
    let mut measured: Vec<Vec<f64>> = Vec::new();
    let ks = [1usize, 2, 4, 8];
    for &k in &ks {
        let kind = SchedulerKind::Wf2qPlus;
        let mut bld = Hierarchy::<MixedScheduler>::builder(LINK, move |r| kind.build(r));
        let root = bld.root();
        let leaves: Vec<_> = shares
            .iter()
            .map(|&phi| bld.add_leaf(root, phi).unwrap())
            .collect();
        let mut net: Network<MixedScheduler> = Network::new();
        net.set_dispatch_batch(k);
        net.add_link(bld.build());
        let mut arrivals_per_flow: Vec<Vec<(f64, f64)>> = Vec::new();
        for (i, leaf) in leaves.iter().enumerate() {
            let flow = i as u32;
            net.stats.trace_flow(flow);
            // Everyone backlogged from t=0: 300 densely spaced packets.
            let entries: Vec<(f64, u32)> =
                (0..300).map(|n| (f64::from(n) * 1e-4, PKT)).collect();
            arrivals_per_flow
                .push(entries.iter().map(|&(t, l)| (t, f64::from(l) * 8.0)).collect());
            net.add_route(
                flow,
                TraceSource::new(flow, entries),
                Route::single(*leaf, None, 0.0),
            );
        }
        net.run(100.0);
        net.verify_conservation().unwrap();

        let all: Vec<_> = (0..shares.len() as u32)
            .flat_map(|f| net.stats.trace(f).iter().copied())
            .collect();
        let w_server = service_curve_from_records(all.iter());
        let row: Vec<f64> = shares
            .iter()
            .enumerate()
            .map(|(i, &share)| {
                let w_i = service_curve_from_records(net.stats.trace(i as u32).iter());
                empirical_bwfi(&arrivals_per_flow[i], &w_i, &w_server, share)
            })
            .collect();
        measured.push(row);
    }
    for (i, &share) in shares.iter().enumerate() {
        // The exact (k=1) schedule stays near Theorem 4's closed form —
        // within one extra max packet of slop for this tie-heavy,
        // fully-backlogged workload.
        let theory = wf2q_plus_bwfi(BITS, BITS, share * LINK, LINK);
        assert!(
            measured[0][i] <= theory + BITS + 1.0,
            "flow {i}: exact-schedule B-WFI {} bits way above theory {theory}",
            measured[0][i]
        );
        // The train bound: planning k packets without a newly backlogged
        // session can defer it by at most the k−1 extra train slots, so
        // batching adds at most (k−1)·Lmax of unfairness on top of the
        // exact schedule.
        for (ki, &k) in ks.iter().enumerate().skip(1) {
            let bound = measured[0][i] + (k as f64 - 1.0) * BITS;
            assert!(
                measured[ki][i] <= bound + 1.0,
                "k={k} flow {i}: measured B-WFI {} bits > k=1 baseline {} + (k-1)*Lmax",
                measured[ki][i],
                measured[0][i]
            );
        }
    }
}

#[test]
fn snapshot_round_trips_with_a_train_in_flight() {
    let buf = SharedBuf::new();
    let mut net = build_net(4, &buf);
    // Stop mid-busy-period so a planned train is likely pending.
    net.run(0.4);
    let snap = net.snapshot().unwrap();

    let buf_b = SharedBuf::new();
    let mut resumed = build_net(4, &buf_b);
    resumed.restore(&snap).unwrap();

    net.run(3.0);
    resumed.run(3.0);
    net.verify_conservation().unwrap();
    resumed.verify_conservation().unwrap();
    assert_eq!(net.stats.total_bytes, resumed.stats.total_bytes);
    assert_eq!(net.stats.total_packets, resumed.stats.total_packets);
    assert_eq!(net.stats.last_departure, resumed.stats.last_departure);
    for flow in [0u32, 1, 2] {
        assert_eq!(net.stats.flow(flow), resumed.stats.flow(flow));
    }
}
