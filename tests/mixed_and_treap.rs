//! Heterogeneous trees (per-node policies via `MixedScheduler`) and the
//! treap-backed WF²Q+ variant: both must compose cleanly with the
//! hierarchy, and the two eligible-set backends must produce *identical*
//! schedules.

use hpfq::core::eligible::treap::TreapEligibleSet;
use hpfq::core::wf2q_plus::Wf2qPlus;
use hpfq::core::{Hierarchy, MixedScheduler, Packet, SchedulerKind};
use hpfq::sim::SmallRng;

/// WF²Q+ over the dual heap and over the treap must schedule identically
/// (they implement the same policy; only the data structure differs).
#[test]
fn treap_and_dual_heap_schedules_are_identical() {
    fn schedule<E: hpfq::core::EligibleSet + 'static>(
        make: impl Fn(f64) -> Wf2qPlus<E> + 'static,
    ) -> Vec<u64> {
        let mut bld = Hierarchy::builder(1e6, make);
        let root = bld.root();
        let class = bld.add_internal(root, 0.6).unwrap();
        let l1 = bld.add_leaf(class, 0.5).unwrap();
        let l2 = bld.add_leaf(class, 0.5).unwrap();
        let l3 = bld.add_leaf(root, 0.4).unwrap();
        let mut h = bld.build();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut id = 0u64;
        let mut out = Vec::new();
        for _round in 0..50 {
            // Random enqueues...
            for &leaf in &[l1, l2, l3] {
                if rng.gen_bool(0.7) {
                    for _ in 0..rng.gen_range_u32(1, 4) {
                        id += 1;
                        h.enqueue(leaf, Packet::new(id, 0, rng.gen_range_u32(100, 1500), 0.0));
                    }
                }
            }
            // ...then a few dequeues.
            for _ in 0..rng.gen_range_u32(1, 6) {
                if let Some(p) = h.dequeue() {
                    out.push(p.id);
                }
            }
        }
        while let Some(p) = h.dequeue() {
            out.push(p.id);
        }
        out
    }

    let a = schedule(Wf2qPlus::new);
    let b = schedule(|r| Wf2qPlus::with_set(r, TreapEligibleSet::new()));
    assert_eq!(a, b, "eligible-set backends must not change the schedule");
    assert!(a.len() > 100);
}

/// A heterogeneous tree: WF²Q+ at the link, FIFO inside a best-effort
/// class, DRR inside another. The link-level isolation must hold even
/// though the inner policies provide none.
#[test]
fn mixed_policy_tree_isolates_at_the_link_level() {
    let mut h: Hierarchy<MixedScheduler> =
        Hierarchy::builder(1e6, |r| SchedulerKind::Wf2qPlus.build(r)).build();
    let root = h.root();
    // Guaranteed class under WF²Q+.
    let guaranteed = h.add_leaf(root, 0.5).unwrap();
    // Best-effort class whose children are served FIFO.
    let be = h
        .add_internal_with(root, 0.3, SchedulerKind::Fifo.build(0.3 * 1e6))
        .unwrap();
    let be1 = h.add_leaf(be, 0.5).unwrap();
    let be2 = h.add_leaf(be, 0.5).unwrap();
    // Bulk class whose children are served DRR.
    let bulk = h
        .add_internal_with(root, 0.2, SchedulerKind::Drr.build(0.2 * 1e6))
        .unwrap();
    let bulk1 = h.add_leaf(bulk, 0.9).unwrap();
    let bulk2 = h.add_leaf(bulk, 0.1).unwrap();

    // Everyone floods with 500 packets of 1000 bits.
    let mut id = 0;
    for (flow, leaf) in [
        (0u32, guaranteed),
        (1, be1),
        (2, be2),
        (3, bulk1),
        (4, bulk2),
    ] {
        for _ in 0..500 {
            id += 1;
            h.enqueue(leaf, Packet::new(id, flow, 125, 0.0));
        }
    }
    // Serve 1000 packets; count per class.
    let mut counts = [0usize; 5];
    for _ in 0..1000 {
        let p = h.dequeue().unwrap();
        counts[p.flow as usize] += 1;
    }
    let g = counts[0] as f64;
    let be_total = (counts[1] + counts[2]) as f64;
    let bulk_total = (counts[3] + counts[4]) as f64;
    assert!((g / 1000.0 - 0.5).abs() < 0.02, "{counts:?}");
    assert!((be_total / 1000.0 - 0.3).abs() < 0.02, "{counts:?}");
    assert!((bulk_total / 1000.0 - 0.2).abs() < 0.02, "{counts:?}");
    // DRR honors its weights within the class.
    assert!(
        counts[3] > counts[4] * 5,
        "DRR 0.9/0.1 split not visible: {counts:?}"
    );
}
