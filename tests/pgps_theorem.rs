//! The Parekh–Gallager PGPS theorem as an end-to-end oracle: for any
//! arrival pattern, every packet departs a WFQ server no later than its
//! GPS fluid finish time plus one maximum packet transmission time
//! (paper §3.1: "the delay bound provided by WFQ is within one packet
//! transmission time of that provided by GPS"). WF²Q satisfies the same
//! per-packet bound; WF²Q+ does not track V_GPS per packet (see the
//! third test) but preserves the leaky-bucket delay bound.
//!
//! This cross-validates three subsystems at once: the fluid simulator,
//! the GPS virtual clock inside WFQ/WF²Q, and the DES driving them.

use hpfq::core::{Hierarchy, SchedulerKind};
use hpfq::fluid::{Arrival, FluidSim, FluidTree};
use hpfq::sim::{Simulation, SmallRng, SourceConfig, TraceSource};

const LINK: f64 = 1e6;

/// One random trial: returns the largest (packet departure − GPS finish)
/// over all packets, in seconds.
fn worst_lag_vs_gps(kind: SchedulerKind, seed: u64) -> (f64, f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nflows = rng.gen_range_usize(2, 7);
    let raw: Vec<f64> = (0..nflows).map(|_| rng.gen_range_f64(0.5, 3.0)).collect();
    let total: f64 = raw.iter().sum();

    // Random bursty arrivals with mixed packet sizes.
    let mut flows: Vec<Vec<(f64, u32)>> = Vec::new();
    let mut l_max = 0u32;
    for _ in 0..nflows {
        let mut entries = Vec::new();
        for _ in 0..rng.gen_range_u32(1, 5) {
            let t0 = rng.gen_range_f64(0.0, 1.0);
            for k in 0..rng.gen_range_u32(1, 15) {
                let len = rng.gen_range_u32(100, 1500);
                l_max = l_max.max(len);
                entries.push((t0 + k as f64 * 1e-5, len));
            }
        }
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        flows.push(entries);
    }

    // Fluid GPS run.
    let mut tree = FluidTree::new();
    let fleaves: Vec<_> = raw
        .iter()
        .map(|&w| tree.add_leaf(tree.root(), w / total).unwrap())
        .collect();
    let mut arr = Vec::new();
    for (i, entries) in flows.iter().enumerate() {
        for (k, &(t, len)) in entries.iter().enumerate() {
            arr.push(Arrival {
                time: t,
                leaf: fleaves[i],
                bits: f64::from(len) * 8.0,
                id: (i * 10_000 + k) as u64,
            });
        }
    }
    arr.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
    let fluid = FluidSim::run(&tree, LINK, &arr);

    // Packet run under `kind`.
    let mut h = Hierarchy::builder(LINK, move |r| kind.build(r)).build();
    let root = h.root();
    let leaves: Vec<_> = raw
        .iter()
        .map(|&w| h.add_leaf(root, w / total).unwrap())
        .collect();
    let mut sim = Simulation::new(h);
    for (i, entries) in flows.iter().enumerate() {
        let flow = i as u32;
        sim.stats.trace_flow(flow);
        sim.add_source(
            flow,
            TraceSource::new(flow, entries.clone()),
            SourceConfig::open_loop(leaves[i]),
        );
    }
    sim.run(1e6);

    // Pair packets positionally (both systems preserve per-flow FIFO).
    let mut worst = f64::NEG_INFINITY;
    for (i, entries) in flows.iter().enumerate() {
        let trace = sim.stats.trace(i as u32);
        assert_eq!(trace.len(), entries.len(), "flow {i} lost packets");
        for (k, rec) in trace.iter().enumerate() {
            let gps_finish = fluid
                .finish_of((i * 10_000 + k) as u64)
                .expect("fluid departed every packet");
            worst = worst.max(rec.end - gps_finish);
        }
    }
    (worst, f64::from(l_max) * 8.0 / LINK)
}

#[test]
fn wfq_departs_within_one_packet_of_gps() {
    for seed in 0..8 {
        let (worst, one_pkt) = worst_lag_vs_gps(SchedulerKind::Wfq, seed);
        assert!(
            worst <= one_pkt + 1e-9,
            "seed {seed}: WFQ lag {worst} > L_max/r {one_pkt}"
        );
    }
}

#[test]
fn wf2q_departs_within_one_packet_of_gps() {
    for seed in 0..8 {
        let (worst, one_pkt) = worst_lag_vs_gps(SchedulerKind::Wf2q, seed);
        assert!(
            worst <= one_pkt + 1e-9,
            "seed {seed}: WF2Q lag {worst} > L_max/r {one_pkt}"
        );
    }
}

#[test]
fn wf2q_plus_stays_within_a_few_packets_of_gps() {
    // Per-packet GPS finish-time tracking is specifically a property of
    // the V_GPS-driven policies: WF²Q+'s eq. 27 clock deliberately does
    // NOT emulate GPS (its slope floors at 1 where GPS's can exceed it),
    // trading exact per-packet tracking for O(log N)-per-call work while
    // preserving the Theorem-4 *delay bound* for leaky-bucket sessions
    // (verified in tests/delay_bounds.rs). Empirically the deviation on
    // these workloads stays within a small constant number of packets —
    // a sweep over 64 seeds peaks at 3.46 L_max/r — so assert a 5-packet
    // envelope: loose enough to be seed-stable, tight enough that a
    // regression breaking the clock outright still fails loudly.
    for seed in 0..8 {
        let (worst, one_pkt) = worst_lag_vs_gps(SchedulerKind::Wf2qPlus, seed);
        assert!(
            worst <= 5.0 * one_pkt + 1e-9,
            "seed {seed}: WF2Q+ lag {worst} > 5 L_max/r {one_pkt}"
        );
    }
}

/// Sanity on the oracle itself: a policy with no fairness (FIFO) violates
/// the one-packet bound on at least one of the random workloads — the
/// bound is not vacuous.
#[test]
fn fifo_violates_the_pgps_bound() {
    let mut violated = false;
    for seed in 0..8 {
        let (worst, one_pkt) = worst_lag_vs_gps(SchedulerKind::Fifo, seed);
        if worst > one_pkt + 1e-9 {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "FIFO unexpectedly satisfied the PGPS bound on all seeds"
    );
}
