//! Randomized property tests: the paper's invariants must hold for
//! *arbitrary* admissible workloads, not just the curated scenarios.
//!
//! The workload generators are driven by the workspace's own seeded
//! [`SmallRng`] (the container has no third-party property-testing crate),
//! so every failure is reproducible from the printed case seed. Gated
//! behind the `proptest-tests` feature because the suites are heavier than
//! the deterministic tier-1 tests:
//!
//! ```text
//! cargo test --features proptest-tests --test proptest_invariants
//! ```
#![cfg(feature = "proptest-tests")]

use hpfq::analysis::{empirical_bwfi, service_curve_from_records, wf2q_plus_bwfi};
use hpfq::core::eligible::{
    calendar::CalendarEligibleSet, dual_heap::DualHeapEligibleSet, treap::TreapEligibleSet,
    BruteForceEligibleSet, EligibleSet, PifoBackend,
};
use hpfq::core::{
    Hierarchy, MixedScheduler, NodeId, NodeScheduler, SchedulerKind, SessionId, Sfq, Wf2qPlus,
};
use hpfq::fluid::{Arrival, FluidNodeId, FluidSim, FluidTree};
use hpfq::obs::{InvariantObserver, NoopObserver};
use hpfq::sim::{
    CbrSource, Hop, Network, PoissonSource, Route, SimCommand, Simulation, SmallRng, SourceConfig,
    TraceSource,
};

// ---------------------------------------------------------------------------
// Eligible sets: both O(log N) structures behave exactly like the O(N)
// reference under arbitrary operation sequences.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum SetOp {
    /// Insert session id with (start offset, duration).
    Insert(usize, f64, f64),
    /// Advance the threshold by the offset and pop.
    Pop(f64),
    /// Query the eligibility threshold.
    Threshold,
    /// Remove a (possibly absent) session.
    Remove(usize),
    /// Reset the whole set (busy-period end / link reconfiguration).
    Clear,
}

fn random_set_op(rng: &mut SmallRng) -> SetOp {
    match rng.gen_range_u32(0, 4) {
        0 => SetOp::Insert(
            rng.gen_range_usize(0, 32),
            rng.gen_range_f64(0.0, 10.0),
            rng.gen_range_f64(0.001, 10.0),
        ),
        1 => SetOp::Pop(rng.gen_range_f64(0.0, 3.0)),
        2 => SetOp::Threshold,
        _ => SetOp::Remove(rng.gen_range_usize(0, 32)),
    }
}

#[test]
fn eligible_sets_agree() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x5e7_0000 + case);
        let nops = rng.gen_range_usize(1, 400);
        let mut dual = DualHeapEligibleSet::new();
        let mut treap = TreapEligibleSet::new();
        let mut cal = CalendarEligibleSet::new();
        let mut oracle = BruteForceEligibleSet::default();
        let mut present = [false; 32];
        let mut thr = 0.0_f64;
        for _ in 0..nops {
            match random_set_op(&mut rng) {
                SetOp::Insert(id, s, d) => {
                    if !present[id] {
                        let start = thr + s;
                        let finish = start + d;
                        dual.insert(SessionId(id), start, finish);
                        treap.insert(SessionId(id), start, finish);
                        EligibleSet::insert(&mut cal, SessionId(id), start, finish);
                        oracle.insert(SessionId(id), start, finish);
                        present[id] = true;
                    }
                }
                SetOp::Pop(adv) => {
                    thr += adv;
                    let a = dual.pop_min_finish(thr);
                    let b = treap.pop_min_finish(thr);
                    let k = EligibleSet::pop_min_finish(&mut cal, thr);
                    let c = oracle.pop_min_finish(thr);
                    assert_eq!(a, c, "case {case}");
                    assert_eq!(b, c, "case {case}");
                    assert_eq!(k, c, "case {case} (calendar)");
                    if let Some(id) = c {
                        present[id.0] = false;
                    }
                }
                SetOp::Threshold => {
                    let a = dual.eligibility_threshold(thr);
                    let b = treap.eligibility_threshold(thr);
                    let k = EligibleSet::eligibility_threshold(&mut cal, thr);
                    let c = oracle.eligibility_threshold(thr);
                    assert_eq!(a, c, "case {case}");
                    assert_eq!(b, c, "case {case}");
                    assert_eq!(k, c, "case {case} (calendar)");
                }
                SetOp::Remove(id) => {
                    dual.remove(SessionId(id));
                    treap.remove(SessionId(id));
                    EligibleSet::remove(&mut cal, SessionId(id));
                    oracle.remove(SessionId(id));
                    present[id] = false;
                }
                // `random_set_op` never emits Clear; the tie-heavy suite
                // below covers it.
                SetOp::Clear => unreachable!(),
            }
            assert_eq!(dual.len(), oracle.len(), "case {case}");
            assert_eq!(treap.len(), oracle.len(), "case {case}");
            assert_eq!(EligibleSet::len(&cal), oracle.len(), "case {case}");
        }
    }
}

/// Tie-heavy variant of [`random_set_op`]: tag arithmetic quantized to a
/// coarse grid so equal start *and* equal finish tags are common, plus the
/// occasional [`SetOp::Clear`]. This is the regime where a sloppy
/// tie-break (anything other than `(tag, session id)`) diverges between
/// implementations — exactly what the SoA dual-heap refactor must not
/// change.
fn random_tie_op(rng: &mut SmallRng, ids: usize) -> SetOp {
    const Q: f64 = 0.25;
    match rng.gen_range_u32(0, 16) {
        0..=6 => SetOp::Insert(
            rng.gen_range_usize(0, ids),
            Q * rng.gen_range_usize(0, 8) as f64,
            Q * rng.gen_range_usize(1, 8) as f64,
        ),
        7..=10 => SetOp::Pop(Q * rng.gen_range_usize(0, 3) as f64),
        11..=12 => SetOp::Threshold,
        13..=14 => SetOp::Remove(rng.gen_range_usize(0, ids)),
        _ => SetOp::Clear,
    }
}

/// The three eligible-set implementations stay in lockstep under a
/// tie-saturated churn workload over a larger id space, including full
/// `clear()` resets mid-sequence.
#[test]
fn eligible_sets_agree_under_ties_and_clears() {
    const IDS: usize = 96;
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x71e_0000 + case);
        let nops = rng.gen_range_usize(1, 600);
        let mut dual = DualHeapEligibleSet::new();
        let mut treap = TreapEligibleSet::new();
        let mut cal = CalendarEligibleSet::new();
        let mut oracle = BruteForceEligibleSet::default();
        let mut present = [false; IDS];
        let mut thr = 0.0_f64;
        for _ in 0..nops {
            match random_tie_op(&mut rng, IDS) {
                SetOp::Insert(id, s, d) => {
                    if !present[id] {
                        let start = thr + s;
                        let finish = start + d;
                        dual.insert(SessionId(id), start, finish);
                        treap.insert(SessionId(id), start, finish);
                        EligibleSet::insert(&mut cal, SessionId(id), start, finish);
                        oracle.insert(SessionId(id), start, finish);
                        present[id] = true;
                    }
                }
                SetOp::Pop(adv) => {
                    thr += adv;
                    let a = dual.pop_min_finish(thr);
                    let b = treap.pop_min_finish(thr);
                    let k = EligibleSet::pop_min_finish(&mut cal, thr);
                    let c = oracle.pop_min_finish(thr);
                    assert_eq!(a, c, "case {case}");
                    assert_eq!(b, c, "case {case}");
                    assert_eq!(k, c, "case {case} (calendar)");
                    if let Some(id) = c {
                        present[id.0] = false;
                    }
                }
                SetOp::Threshold => {
                    let a = dual.eligibility_threshold(thr);
                    let b = treap.eligibility_threshold(thr);
                    let k = EligibleSet::eligibility_threshold(&mut cal, thr);
                    let c = oracle.eligibility_threshold(thr);
                    assert_eq!(a, c, "case {case}");
                    assert_eq!(b, c, "case {case}");
                    assert_eq!(k, c, "case {case} (calendar)");
                }
                SetOp::Remove(id) => {
                    dual.remove(SessionId(id));
                    treap.remove(SessionId(id));
                    EligibleSet::remove(&mut cal, SessionId(id));
                    oracle.remove(SessionId(id));
                    present[id] = false;
                }
                SetOp::Clear => {
                    dual.clear();
                    treap.clear();
                    EligibleSet::clear(&mut cal);
                    oracle.clear();
                    present = [false; IDS];
                    // Virtual time restarts with the new busy period.
                    thr = 0.0;
                }
            }
            assert_eq!(dual.len(), oracle.len(), "case {case}");
            assert_eq!(treap.len(), oracle.len(), "case {case}");
            assert_eq!(EligibleSet::len(&cal), oracle.len(), "case {case}");
        }
        // Drain fully: the complete pop order must agree, not just the
        // prefix the random walk happened to sample.
        loop {
            thr += 1.0;
            let a = dual.pop_min_finish(thr);
            let b = treap.pop_min_finish(thr);
            let k = EligibleSet::pop_min_finish(&mut cal, thr);
            let c = oracle.pop_min_finish(thr);
            assert_eq!(a, c, "case {case} drain");
            assert_eq!(b, c, "case {case} drain");
            assert_eq!(k, c, "case {case} drain (calendar)");
            if c.is_none() && oracle.is_empty() {
                break;
            }
        }
    }
}

/// The calendar set's serialized form is a pure function of its live
/// membership: two instances with arbitrarily different wheel/rotation/
/// resize histories but the same members emit identical `snap::Value`
/// trees. This is what makes PIFO snapshots backend-portable — a restore
/// replays `members_in_order`, so any history dependence here would leak
/// into the snapshot bytes.
#[test]
fn calendar_serialization_is_history_independent() {
    use hpfq::obs::snap::Value;

    /// Exactly the queue encoding `PifoTree::save_state` commits.
    fn snap_of(set: &CalendarEligibleSet) -> Value {
        Value::List(
            set.members_in_order()
                .into_iter()
                .map(|(id, elig, primary, secondary)| {
                    Value::map(vec![
                        ("id", Value::U64(id.0 as u64)),
                        ("elig", Value::opt(elig.map(Value::F64))),
                        ("primary", Value::F64(primary)),
                        ("secondary", Value::F64(secondary)),
                    ])
                })
                .collect(),
        )
    }

    const IDS: usize = 192;
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0xca1_5000 + case);
        let mut cal = CalendarEligibleSet::new();
        PifoBackend::ensure_sessions(&mut cal, IDS);
        // Live membership mirror: id -> (elig, primary, secondary).
        let mut live: std::collections::BTreeMap<usize, (Option<f64>, f64, f64)> =
            std::collections::BTreeMap::new();
        let mut thr = 0.0_f64;
        for step in 0..rng.gen_range_usize(100, 800) {
            match rng.gen_range_u32(0, 8) {
                0..=3 => {
                    let id = rng.gen_range_usize(0, IDS);
                    if !live.contains_key(&id) {
                        // Mix of gated (Some start past the threshold) and
                        // open entries, quantized so ties are common.
                        let elig = (rng.gen_range_u32(0, 3) > 0)
                            .then(|| thr + 0.5 * rng.gen_range_usize(0, 12) as f64);
                        let primary =
                            elig.unwrap_or(thr) + 0.5 * rng.gen_range_usize(1, 12) as f64;
                        let secondary = rng.gen_range_usize(0, 4) as f64;
                        cal.insert_ranked(SessionId(id), elig, primary, secondary);
                        live.insert(id, (elig, primary, secondary));
                    }
                }
                4..=5 => {
                    thr += 0.5 * rng.gen_range_usize(0, 4) as f64;
                    if let Some(id) = cal.pop_eligible(thr) {
                        assert!(live.remove(&id.0).is_some(), "case {case} step {step}");
                    }
                }
                6 => {
                    let _ = cal.clamp_threshold(thr);
                }
                _ => {
                    cal.reset();
                    live.clear();
                    thr = 0.0;
                }
            }
            assert_eq!(cal.members(), live.len(), "case {case} step {step}");
        }
        // Snapshot round trip: replay `members_in_order` (exactly what a
        // PIFO restore does) into a fresh calendar in a scrambled insert
        // order, so entries land in different buckets/tail positions than
        // the churned instance, and demand byte-identical serialization.
        let mut members = cal.members_in_order();
        assert_eq!(members.len(), live.len(), "case {case}");
        for i in (1..members.len()).rev() {
            members.swap(i, rng.gen_range_usize(0, i + 1));
        }
        let mut fresh = CalendarEligibleSet::new();
        PifoBackend::ensure_sessions(&mut fresh, IDS);
        for &(id, elig, primary, secondary) in &members {
            fresh.insert_ranked(id, elig, primary, secondary);
        }
        assert_eq!(
            snap_of(&fresh),
            snap_of(&cal),
            "case {case}: serialized membership depends on insert history"
        );
    }
}

// ---------------------------------------------------------------------------
// Standalone WF²Q+: Theorem 4's B-WFI holds for every session under random
// bursty workloads.
// ---------------------------------------------------------------------------

/// A session workload: weight and burst spec (start, packets) pairs.
#[derive(Debug, Clone)]
struct FlowSpec {
    weight: f64,
    bursts: Vec<(f64, u32)>,
}

fn random_flow_spec(rng: &mut SmallRng) -> FlowSpec {
    let weight = rng.gen_range_f64(0.2, 4.0);
    let nbursts = rng.gen_range_usize(1, 4);
    let bursts = (0..nbursts)
        .map(|_| (rng.gen_range_f64(0.0, 2.0), rng.gen_range_u32(1, 25)))
        .collect();
    FlowSpec { weight, bursts }
}

#[test]
fn wf2q_plus_bwfi_theorem_holds() {
    const LINK: f64 = 1e6;
    const PKT: u32 = 250; // 2000 bits
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0xbf1_0000 + case);
        let nflows = rng.gen_range_usize(2, 6);
        let specs: Vec<FlowSpec> = (0..nflows).map(|_| random_flow_spec(&mut rng)).collect();
        let total_w: f64 = specs.iter().map(|s| s.weight).sum();

        let mut h = Hierarchy::builder(LINK, Wf2qPlus::new).build();
        let root = h.root();
        let leaves: Vec<_> = specs
            .iter()
            .map(|s| h.add_leaf(root, s.weight / total_w).unwrap())
            .collect();
        let mut sim = Simulation::new(h);
        let mut arrivals_per_flow: Vec<Vec<(f64, f64)>> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let flow = i as u32;
            sim.stats.trace_flow(flow);
            let mut entries: Vec<(f64, u32)> = Vec::new();
            for &(t0, n) in &spec.bursts {
                for k in 0..n {
                    entries.push((t0 + f64::from(k) * 1e-5, PKT));
                }
            }
            entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            arrivals_per_flow.push(
                entries
                    .iter()
                    .map(|&(t, l)| (t, f64::from(l) * 8.0))
                    .collect(),
            );
            sim.add_source(
                flow,
                TraceSource::new(flow, entries),
                SourceConfig::open_loop(leaves[i]),
            );
        }
        sim.run(10_000.0);

        // Server curve = union of all service records.
        let all: Vec<_> = (0..specs.len() as u32)
            .flat_map(|f| sim.stats.trace(f).iter().copied())
            .collect();
        let w_server = service_curve_from_records(all.iter());
        for (i, spec) in specs.iter().enumerate() {
            let flow = i as u32;
            let w_i = service_curve_from_records(sim.stats.trace(flow).iter());
            let share = spec.weight / total_w;
            let measured = empirical_bwfi(&arrivals_per_flow[i], &w_i, &w_server, share);
            // All packets are equal-length, so Theorem 4 gives alpha =
            // L_max exactly; allow a small epsilon for curve sampling.
            let theory = wf2q_plus_bwfi(2000.0, 2000.0, share * LINK, LINK);
            assert!(
                measured <= theory + 1.0,
                "case {case} flow {i}: measured B-WFI {measured} bits > theory {theory}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fluid system invariants under random hierarchies and arrivals.
// ---------------------------------------------------------------------------

#[test]
fn fluid_conservation() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0xf1_0000 + case);
        // Random class/leaf weight structure.
        let nclasses = rng.gen_range_usize(1, 4);
        let classes: Vec<Vec<f64>> = (0..nclasses)
            .map(|_| {
                let nl = rng.gen_range_usize(1, 4);
                (0..nl).map(|_| rng.gen_range_f64(0.2, 3.0)).collect()
            })
            .collect();
        let nbursts = rng.gen_range_usize(1, 12);
        let bursts: Vec<(usize, usize, f64, u32)> = (0..nbursts)
            .map(|_| {
                (
                    rng.gen_range_usize(0, 4),
                    rng.gen_range_usize(0, 4),
                    rng.gen_range_f64(0.0, 3.0),
                    rng.gen_range_u32(1, 20),
                )
            })
            .collect();

        let mut tree = FluidTree::new();
        let mut leaves: Vec<Vec<FluidNodeId>> = Vec::new();
        let class_total: f64 = classes.len() as f64;
        for weights in &classes {
            let c = tree.add_internal(tree.root(), 1.0 / class_total).unwrap();
            let wt: f64 = weights.iter().sum();
            leaves.push(
                weights
                    .iter()
                    .map(|&w| tree.add_leaf(c, w / wt).unwrap())
                    .collect(),
            );
        }
        let mut arr = Vec::new();
        let mut id = 0u64;
        let mut arrived_per_leaf = std::collections::HashMap::new();
        for &(ci, li, t, n) in &bursts {
            let ci = ci % leaves.len();
            let li = li % leaves[ci].len();
            for _ in 0..n {
                id += 1;
                arr.push(Arrival {
                    time: t,
                    leaf: leaves[ci][li],
                    bits: 100.0,
                    id,
                });
                *arrived_per_leaf.entry(leaves[ci][li]).or_insert(0.0) += 100.0;
            }
        }
        arr.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
        let res = FluidSim::run(&tree, 1000.0, &arr);

        // Every packet departs exactly once.
        assert_eq!(res.departures.len(), arr.len(), "case {case}");
        // Per-leaf service equals arrivals (system drains).
        for (leaf, &arrived) in &arrived_per_leaf {
            let served = res.service[leaf.0].total();
            assert!((served - arrived).abs() < 1e-6, "case {case}");
        }
        // Service curves are monotone and the root's slope never exceeds
        // the link rate.
        for curve in &res.service {
            let pts = curve.points();
            for w in pts.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "case {case}");
            }
        }
        let root_pts = res.service[0].points();
        for w in root_pts.windows(2) {
            let dt = w[1].0 - w[0].0;
            if dt > 1e-12 {
                let rate = (w[1].1 - w[0].1) / dt;
                assert!(
                    rate <= 1000.0 + 1e-6,
                    "case {case}: root served above capacity"
                );
            }
        }
        // Departures are time-ordered.
        for w in res.departures.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------------
// Random hierarchy + random trace through the packet system: conservation
// and per-flow FIFO, with the root reference-time hint active.
// ---------------------------------------------------------------------------

#[test]
fn hierarchy_conserves_packets() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0xc0_0000 + case);
        let nweights = rng.gen_range_usize(2, 5);
        let weights: Vec<f64> = (0..nweights).map(|_| rng.gen_range_f64(0.2, 2.0)).collect();
        let nbursts = rng.gen_range_usize(1, 10);
        let bursts: Vec<(usize, f64, u32)> = (0..nbursts)
            .map(|_| {
                (
                    rng.gen_range_usize(0, 5),
                    rng.gen_range_f64(0.0, 1.0),
                    rng.gen_range_u32(1, 15),
                )
            })
            .collect();

        let total: f64 = weights.iter().sum();
        let mut h = Hierarchy::builder(1e6, Wf2qPlus::new).build();
        let root = h.root();
        let leaves: Vec<_> = weights
            .iter()
            .map(|&w| h.add_leaf(root, w / total).unwrap())
            .collect();
        let mut sim = Simulation::new(h);
        let mut per_flow: Vec<Vec<(f64, u32)>> = vec![Vec::new(); leaves.len()];
        for &(li, t, n) in &bursts {
            let li = li % leaves.len();
            for k in 0..n {
                per_flow[li].push((t + f64::from(k) * 1e-6, 125));
            }
        }
        let mut expected = 0usize;
        for (i, entries) in per_flow.iter_mut().enumerate() {
            entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            expected += entries.len();
            let flow = i as u32;
            sim.stats.trace_flow(flow);
            sim.add_source(
                flow,
                TraceSource::new(flow, entries.clone()),
                SourceConfig::open_loop(leaves[i]),
            );
        }
        sim.run(1e6);
        let mut got = 0usize;
        for flow in 0..leaves.len() as u32 {
            let tr = sim.stats.trace(flow);
            got += tr.len();
            for w in tr.windows(2) {
                assert!(w[1].id > w[0].id, "case {case}: per-flow FIFO violated");
                assert!(w[1].start >= w[0].end - 1e-9, "case {case}");
            }
        }
        assert_eq!(got, expected, "case {case}");
    }
}

// ---------------------------------------------------------------------------
// Flow churn: leaves joining and leaving mid-run must keep every node's
// virtual time monotone and every share non-negative and within its
// parent's budget — for WF²Q+ and for SFQ (the two policies the chaos
// soak leans on hardest).
// ---------------------------------------------------------------------------

/// Drives one randomized churn case against a scheduler family and checks
/// the share and virtual-time invariants at every churn boundary.
fn churn_case<S: NodeScheduler>(factory: impl Fn(f64) -> S + 'static, seed: u64) {
    const LINK: f64 = 1e6;
    const CHURN_BASE: u32 = 50;
    let mut rng = SmallRng::seed_from_u64(seed);

    // Static backbone: a class with two permanent leaves plus a root-level
    // leaf, deliberately leaving 0.2 of the root for churn arrivals.
    let mut bld = Hierarchy::builder_with_observer(LINK, factory, InvariantObserver::new());
    let root = bld.root();
    let class = bld.add_internal(root, 0.5).unwrap();
    let l0 = bld.add_leaf(class, 0.6).unwrap();
    let l1 = bld.add_leaf(class, 0.4).unwrap();
    let l2 = bld.add_leaf(root, 0.3).unwrap();
    let mut sim = Simulation::new(bld.build());
    for (i, (leaf, rate)) in [(l0, 0.45e6), (l1, 0.30e6), (l2, 0.50e6)]
        .into_iter()
        .enumerate()
    {
        let flow = i as u32;
        sim.add_source(
            flow,
            CbrSource::new(flow, 500, rate, 0.0, 18.0),
            SourceConfig::open_loop(leaf),
        );
    }

    // Random churn schedule: joins (bounded by the 0.2 spare share) and
    // leaves of previously joined flows, at random times.
    let nops = rng.gen_range_usize(2, 9);
    let mut times: Vec<f64> = (0..nops).map(|_| rng.gen_range_f64(1.0, 15.0)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut live: Vec<u32> = Vec::new();
    let mut next_flow = CHURN_BASE;
    let mut boundaries = Vec::new();
    for t in times {
        let join = live.is_empty() || (live.len() < 3 && rng.gen_range_u32(0, 2) == 0);
        if join {
            let phi = rng.gen_range_f64(0.01, 0.2 / 3.0);
            let flow = next_flow;
            next_flow += 1;
            live.push(flow);
            sim.schedule_command(
                t,
                SimCommand::AddFlow {
                    parent: root,
                    phi,
                    flow,
                    source: Box::new(CbrSource::new(flow, 400, phi * LINK * 1.4, t, 18.0)),
                    buffer_bytes: None,
                    delivery_delay: 0.0,
                },
            );
        } else {
            let idx = rng.gen_range_usize(0, live.len());
            sim.schedule_command(t, SimCommand::RemoveFlow(live.swap_remove(idx)));
        }
        boundaries.push(t);
    }
    boundaries.sort_by(|a, b| a.partial_cmp(b).unwrap());
    boundaries.push(20.0);

    // Run in segments so the share checks observe the state right after
    // each churn command fires, not just the final configuration.
    for &t in &boundaries {
        sim.run(t);
        let h = sim.server();
        for n in 0..h.node_count() {
            let node = NodeId(n);
            if h.is_detached(node) {
                continue;
            }
            assert!(
                h.phi(node) >= 0.0,
                "seed {seed}: node {n} share went negative at t={t}"
            );
            let alloc = h.allocated_share(node);
            assert!(
                (-1e-9..=1.0 + 1e-9).contains(&alloc),
                "seed {seed}: node {n} allocated share {alloc} out of [0,1] at t={t}"
            );
        }
    }

    assert!(
        sim.command_errors.is_empty(),
        "seed {seed}: churn commands failed: {:?}",
        sim.command_errors
    );
    sim.verify_conservation().unwrap_or_else(|e| {
        panic!("seed {seed}: conservation broken after churn: {e}");
    });
    let obs = sim.server().observer();
    assert!(
        obs.is_clean(),
        "seed {seed}: invariant violations under churn: {}",
        obs.summary()
    );
}

// ---------------------------------------------------------------------------
// Snapshot/restore round-trip identity: for *arbitrary* multi-link
// networks with random hierarchies, mixed sources, outages, and flow
// churn, checkpointing at a random instant and restoring — into the same
// network after it ran further (rollback) or into a freshly built twin
// (resume) — must reproduce the uncheckpointed run exactly. The final
// full-state snapshot is the equality witness: byte-identical bytes mean
// identical clocks, queues, sources, shares, ledgers, and stats.
// ---------------------------------------------------------------------------

/// One random network: 1–3 links, each with a randomized hierarchy (an
/// optional internal class), a trunk flow routed across every link, per-link
/// cross traffic (CBR or Poisson), plus a random outage window, a mid-run
/// `RemoveFlow`, and a mid-run `AddFlow` join on link 0.
fn random_churn_net(rng_seed: u64) -> (Network<MixedScheduler, NoopObserver>, f64) {
    const LINK_BPS: f64 = 10e6;
    const HORIZON: f64 = 2.0;
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let kind = match rng.gen_range_u32(0, 3) {
        0 => SchedulerKind::Wf2qPlus,
        1 => SchedulerKind::Sfq,
        _ => SchedulerKind::Wfq,
    };

    let nlinks = rng.gen_range_usize(1, 4);
    let mut net: Network<MixedScheduler, NoopObserver> = Network::new();
    let mut trunk_hops = Vec::new();
    let mut link0_root = NodeId(0);
    let mut cross_flows = Vec::new();
    for li in 0..nlinks {
        let mut bld = Hierarchy::<MixedScheduler, NoopObserver>::builder_with_observer(
            LINK_BPS,
            move |r| kind.build(r),
            NoopObserver,
        );
        let root = bld.root();
        if li == 0 {
            link0_root = root;
        }
        // Reserve 0.1 of the root for churn joins; split the rest between
        // the trunk leaf and a randomly-shaped cross-traffic subtree.
        let trunk_phi = rng.gen_range_f64(0.2, 0.4);
        let cross_budget = 0.9 - trunk_phi;
        let trunk_leaf = bld.add_leaf(root, trunk_phi).unwrap();
        let cross_parent = if rng.gen_range_u32(0, 2) == 0 {
            bld.add_internal(root, cross_budget).unwrap()
        } else {
            root
        };
        let under_class = cross_parent != root;
        let ncross = rng.gen_range_usize(1, 4);
        let raw: Vec<f64> = (0..ncross).map(|_| rng.gen_range_f64(0.2, 2.0)).collect();
        let total: f64 = raw.iter().sum();
        let mut pending = Vec::new();
        for (k, w) in raw.iter().enumerate() {
            // Under an internal class weights are relative to the class;
            // directly under the root they must fit the remaining budget.
            let phi = if under_class {
                w / total
            } else {
                cross_budget * w / total
            };
            let leaf = bld.add_leaf(cross_parent, phi).unwrap();
            let flow = 100 + 10 * li as u32 + k as u32;
            cross_flows.push(flow);
            pending.push((flow, leaf));
        }
        let link = net.add_link(bld.build());
        for (flow, leaf) in pending {
            let rate = rng.gen_range_f64(1e6, 4e6);
            let pkt = 250 * rng.gen_range_u32(2, 7);
            let end = rng.gen_range_f64(1.0, HORIZON);
            let buffer = if rng.gen_range_u32(0, 2) == 0 {
                Some(8 * u64::from(pkt))
            } else {
                None
            };
            let route = Route::new(vec![Hop {
                link,
                leaf,
                buffer_bytes: buffer,
                prop_delay: rng.gen_range_f64(0.0, 0.002),
            }]);
            if rng.gen_range_u32(0, 2) == 0 {
                net.add_route(flow, CbrSource::new(flow, pkt, rate, 0.0, end), route);
            } else {
                net.add_route(
                    flow,
                    PoissonSource::new(
                        flow,
                        pkt,
                        rate,
                        0.0,
                        end,
                        rng_seed.wrapping_add(flow.into()),
                    ),
                    route,
                );
            }
        }
        trunk_hops.push(Hop {
            link,
            leaf: trunk_leaf,
            buffer_bytes: if rng.gen_range_u32(0, 2) == 0 {
                Some(6000)
            } else {
                None
            },
            prop_delay: rng.gen_range_f64(0.001, 0.004),
        });
    }
    net.add_route(
        0,
        CbrSource::new(0, 1000, rng.gen_range_f64(1e6, 3e6), 0.0, HORIZON),
        Route::new(trunk_hops),
    );

    // Outage window on a random link.
    let out_link = rng.gen_range_usize(0, nlinks);
    let t_down = rng.gen_range_f64(0.3, 1.2);
    net.schedule_command(
        t_down,
        SimCommand::SetLinkRateOn {
            link: out_link,
            bps: 0.0,
        },
    );
    net.schedule_command(
        t_down + rng.gen_range_f64(0.01, 0.1),
        SimCommand::SetLinkRateOn {
            link: out_link,
            bps: LINK_BPS,
        },
    );
    // Churn: one leave (a random cross flow) and one join on link 0.
    let victim = cross_flows[rng.gen_range_usize(0, cross_flows.len())];
    net.schedule_command(rng.gen_range_f64(0.5, 1.5), SimCommand::RemoveFlow(victim));
    let t_join = rng.gen_range_f64(0.3, 1.4);
    let phi = rng.gen_range_f64(0.02, 0.08);
    net.schedule_command(
        t_join,
        SimCommand::AddFlow {
            parent: link0_root,
            phi,
            flow: 50,
            source: Box::new(CbrSource::new(
                50,
                750,
                phi * LINK_BPS * 1.3,
                t_join,
                HORIZON,
            )),
            buffer_bytes: Some(9000),
            delivery_delay: 0.0,
        },
    );
    (net, HORIZON)
}

/// `run(0..T)` ≡ `run(0..t) → snapshot → restore → run(t..T)` on random
/// networks: the rollback and fresh-resume tails must land on a final
/// state whose serialized snapshot is byte-identical to the golden run's,
/// and re-capturing a checkpoint must be byte-stable.
#[test]
fn snapshot_restore_round_trip_identity_on_random_churn_networks() {
    for case in 0..24u64 {
        let seed = 0x54a9_0000 + case;
        let (mut golden, horizon) = random_churn_net(seed);
        golden.run(horizon);
        golden.verify_conservation().unwrap_or_else(|e| {
            panic!("case {case}: golden run broke conservation: {e}");
        });
        assert!(
            golden.command_errors.is_empty(),
            "case {case}: churn commands failed: {:?}",
            golden.command_errors
        );
        assert!(
            golden.stats.total_packets > 100,
            "case {case}: degenerate workload ({} packets)",
            golden.stats.total_packets
        );
        let golden_final = golden.snapshot().unwrap().to_bytes();

        let mut case_rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
        let t = case_rng.gen_range_f64(0.1, horizon - 0.1);
        let (mut net, _) = random_churn_net(seed);
        net.run(t);
        let snap = net.snapshot().unwrap();
        assert_eq!(
            snap.to_bytes(),
            net.snapshot().unwrap().to_bytes(),
            "case {case}: re-capture at t={t} changed bytes"
        );

        // Rollback: run to completion, rewind to the checkpoint, replay.
        net.run(horizon);
        net.restore(&snap).unwrap();
        net.run(horizon);
        assert_eq!(
            net.snapshot().unwrap().to_bytes(),
            golden_final,
            "case {case}: rollback from t={t} diverged from the golden run"
        );

        // Resume: restore into a freshly built twin and run the tail.
        let (mut fresh, _) = random_churn_net(seed);
        fresh.restore(&snap).unwrap();
        fresh.run(horizon);
        assert_eq!(
            fresh.snapshot().unwrap().to_bytes(),
            golden_final,
            "case {case}: fresh resume from t={t} diverged from the golden run"
        );
    }
}

#[test]
fn churn_preserves_invariants_wf2q_plus() {
    for case in 0..24u64 {
        churn_case(Wf2qPlus::new, 0xc4a0_0000 + case);
    }
}

#[test]
fn churn_preserves_invariants_sfq() {
    for case in 0..24u64 {
        churn_case(Sfq::new, 0xc4a1_0000 + case);
    }
}
