//! Property-based tests (proptest): the paper's invariants must hold for
//! *arbitrary* admissible workloads, not just the curated scenarios.

use hpfq::analysis::{empirical_bwfi, service_curve_from_records, wf2q_plus_bwfi};
use hpfq::core::eligible::{
    dual_heap::DualHeapEligibleSet, treap::TreapEligibleSet, BruteForceEligibleSet, EligibleSet,
};
use hpfq::core::{Hierarchy, SessionId, Wf2qPlus};
use hpfq::fluid::{Arrival, FluidNodeId, FluidSim, FluidTree};
use hpfq::sim::{Simulation, SourceConfig, TraceSource};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Eligible sets: both O(log N) structures behave exactly like the O(N)
// reference under arbitrary operation sequences.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SetOp {
    /// Insert session (id % live capacity) with (start offset, duration).
    Insert(usize, f64, f64),
    /// Advance the threshold by the offset and pop.
    Pop(f64),
    /// Query the eligibility threshold.
    Threshold,
    /// Remove a (possibly absent) session.
    Remove(usize),
}

fn set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0..32usize, 0.0..10.0f64, 0.001..10.0f64)
            .prop_map(|(id, s, d)| SetOp::Insert(id, s, d)),
        (0.0..3.0f64).prop_map(SetOp::Pop),
        Just(SetOp::Threshold),
        (0..32usize).prop_map(SetOp::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eligible_sets_agree(ops in proptest::collection::vec(set_op(), 1..400)) {
        let mut dual = DualHeapEligibleSet::new();
        let mut treap = TreapEligibleSet::new();
        let mut oracle = BruteForceEligibleSet::default();
        let mut present = [false; 32];
        let mut thr = 0.0_f64;
        for op in ops {
            match op {
                SetOp::Insert(id, s, d) => {
                    if !present[id] {
                        let start = thr + s;
                        let finish = start + d;
                        dual.insert(SessionId(id), start, finish);
                        treap.insert(SessionId(id), start, finish);
                        oracle.insert(SessionId(id), start, finish);
                        present[id] = true;
                    }
                }
                SetOp::Pop(adv) => {
                    thr += adv;
                    let a = dual.pop_min_finish(thr);
                    let b = treap.pop_min_finish(thr);
                    let c = oracle.pop_min_finish(thr);
                    prop_assert_eq!(a, c);
                    prop_assert_eq!(b, c);
                    if let Some(id) = c {
                        present[id.0] = false;
                    }
                }
                SetOp::Threshold => {
                    let a = dual.eligibility_threshold(thr);
                    let b = treap.eligibility_threshold(thr);
                    let c = oracle.eligibility_threshold(thr);
                    prop_assert_eq!(a, c);
                    prop_assert_eq!(b, c);
                }
                SetOp::Remove(id) => {
                    dual.remove(SessionId(id));
                    treap.remove(SessionId(id));
                    oracle.remove(SessionId(id));
                    present[id] = false;
                }
            }
            prop_assert_eq!(dual.len(), oracle.len());
            prop_assert_eq!(treap.len(), oracle.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Standalone WF²Q+: Theorem 4's B-WFI holds for every session under random
// bursty workloads.
// ---------------------------------------------------------------------------

/// A session workload: weight and burst spec (start, packets) pairs.
#[derive(Debug, Clone)]
struct FlowSpec {
    weight: f64,
    bursts: Vec<(f64, u8)>,
}

fn flow_spec() -> impl Strategy<Value = FlowSpec> {
    (
        0.2..4.0f64,
        proptest::collection::vec((0.0..2.0f64, 1..25u8), 1..4),
    )
        .prop_map(|(weight, bursts)| FlowSpec { weight, bursts })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wf2q_plus_bwfi_theorem_holds(specs in proptest::collection::vec(flow_spec(), 2..6)) {
        const LINK: f64 = 1e6;
        const PKT: u32 = 250; // 2000 bits
        let total_w: f64 = specs.iter().map(|s| s.weight).sum();

        let mut h = Hierarchy::new_with(LINK, Wf2qPlus::new);
        let root = h.root();
        let leaves: Vec<_> = specs
            .iter()
            .map(|s| h.add_leaf(root, s.weight / total_w).unwrap())
            .collect();
        let mut sim = Simulation::new(h);
        let mut arrivals_per_flow: Vec<Vec<(f64, f64)>> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let flow = i as u32;
            sim.stats.trace_flow(flow);
            let mut entries: Vec<(f64, u32)> = Vec::new();
            for &(t0, n) in &spec.bursts {
                for k in 0..n {
                    entries.push((t0 + f64::from(k) * 1e-5, PKT));
                }
            }
            entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            arrivals_per_flow.push(
                entries.iter().map(|&(t, l)| (t, f64::from(l) * 8.0)).collect(),
            );
            sim.add_source(
                flow,
                TraceSource::new(flow, entries),
                SourceConfig::open_loop(leaves[i]),
            );
        }
        sim.run(10_000.0);

        // Server curve = union of all service records.
        let all: Vec<_> = (0..specs.len() as u32)
            .flat_map(|f| sim.stats.trace(f).iter().copied())
            .collect();
        let w_server = service_curve_from_records(all.iter());
        for (i, spec) in specs.iter().enumerate() {
            let flow = i as u32;
            let w_i = service_curve_from_records(sim.stats.trace(flow).iter());
            let share = spec.weight / total_w;
            let measured = empirical_bwfi(&arrivals_per_flow[i], &w_i, &w_server, share);
            // All packets are equal-length, so Theorem 4 gives alpha =
            // L_max exactly; allow a small epsilon for curve sampling.
            let theory = wf2q_plus_bwfi(2000.0, 2000.0, share * LINK, LINK);
            prop_assert!(
                measured <= theory + 1.0,
                "flow {i}: measured B-WFI {measured} bits > theory {theory}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fluid system invariants under random hierarchies and arrivals.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct FluidCase {
    /// Leaf weights per class (outer = classes).
    classes: Vec<Vec<f64>>,
    /// Arrival spec: (class idx, leaf idx, time, packets).
    bursts: Vec<(usize, usize, f64, u8)>,
}

fn fluid_case() -> impl Strategy<Value = FluidCase> {
    (
        proptest::collection::vec(
            proptest::collection::vec(0.2..3.0f64, 1..4),
            1..4,
        ),
        proptest::collection::vec(
            (0..4usize, 0..4usize, 0.0..3.0f64, 1..20u8),
            1..12,
        ),
    )
        .prop_map(|(classes, bursts)| FluidCase { classes, bursts })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fluid_conservation(case in fluid_case()) {
        let mut tree = FluidTree::new();
        let mut leaves: Vec<Vec<FluidNodeId>> = Vec::new();
        let class_total: f64 = case.classes.len() as f64;
        for weights in &case.classes {
            let c = tree.add_internal(tree.root(), 1.0 / class_total).unwrap();
            let wt: f64 = weights.iter().sum();
            leaves.push(
                weights
                    .iter()
                    .map(|&w| tree.add_leaf(c, w / wt).unwrap())
                    .collect(),
            );
        }
        let mut arr = Vec::new();
        let mut id = 0u64;
        let mut arrived_per_leaf = std::collections::HashMap::new();
        for &(ci, li, t, n) in &case.bursts {
            let ci = ci % leaves.len();
            let li = li % leaves[ci].len();
            for _ in 0..n {
                id += 1;
                arr.push(Arrival { time: t, leaf: leaves[ci][li], bits: 100.0, id });
                *arrived_per_leaf.entry(leaves[ci][li]).or_insert(0.0) += 100.0;
            }
        }
        arr.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
        let res = FluidSim::run(&tree, 1000.0, &arr);

        // Every packet departs exactly once.
        prop_assert_eq!(res.departures.len(), arr.len());
        // Per-leaf service equals arrivals (system drains).
        for (leaf, &arrived) in &arrived_per_leaf {
            let served = res.service[leaf.0].total();
            prop_assert!((served - arrived).abs() < 1e-6);
        }
        // Service curves are monotone and the root's slope never exceeds
        // the link rate.
        for curve in &res.service {
            let pts = curve.points();
            for w in pts.windows(2) {
                prop_assert!(w[1].1 >= w[0].1 - 1e-9);
            }
        }
        let root_pts = res.service[0].points();
        for w in root_pts.windows(2) {
            let dt = w[1].0 - w[0].0;
            if dt > 1e-12 {
                let rate = (w[1].1 - w[0].1) / dt;
                prop_assert!(rate <= 1000.0 + 1e-6, "root served above capacity");
            }
        }
        // Departures are time-ordered and at times where the leaf curve
        // has served at least the packet's share.
        for w in res.departures.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// Random hierarchy + random trace through the packet system: conservation
// and per-flow FIFO, with the root reference-time hint active.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hierarchy_conserves_packets(
        weights in proptest::collection::vec(0.2..2.0f64, 2..5),
        bursts in proptest::collection::vec((0..5usize, 0.0..1.0f64, 1..15u8), 1..10),
    ) {
        let total: f64 = weights.iter().sum();
        let mut h = Hierarchy::new_with(1e6, Wf2qPlus::new);
        let root = h.root();
        let leaves: Vec<_> = weights
            .iter()
            .map(|&w| h.add_leaf(root, w / total).unwrap())
            .collect();
        let mut sim = Simulation::new(h);
        let mut per_flow: Vec<Vec<(f64, u32)>> = vec![Vec::new(); leaves.len()];
        for &(li, t, n) in &bursts {
            let li = li % leaves.len();
            for k in 0..n {
                per_flow[li].push((t + f64::from(k) * 1e-6, 125));
            }
        }
        let mut expected = 0usize;
        for (i, entries) in per_flow.iter_mut().enumerate() {
            entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            expected += entries.len();
            let flow = i as u32;
            sim.stats.trace_flow(flow);
            sim.add_source(
                flow,
                TraceSource::new(flow, entries.clone()),
                SourceConfig::open_loop(leaves[i]),
            );
        }
        sim.run(1e6);
        let mut got = 0usize;
        for flow in 0..leaves.len() as u32 {
            let tr = sim.stats.trace(flow);
            got += tr.len();
            for w in tr.windows(2) {
                prop_assert!(w[1].id > w[0].id, "per-flow FIFO violated");
                prop_assert!(w[1].start >= w[0].end - 1e-9);
            }
        }
        prop_assert_eq!(got, expected);
    }
}
