//! End-to-end observability: the Fig. 3 scenario run under the full sink
//! stack — online invariant checking, JSONL trace emission and re-parsing,
//! offline service-record reconstruction, and the metrics registry — all
//! cross-checked against the simulator's own `SimStats` accounting.

use hpfq::analysis::{flow_records_from_trace, service_records_from_trace};
use hpfq::core::SchedulerKind;
use hpfq::obs::{jsonl::parse_trace, replay, InvariantObserver, JsonlObserver, MetricsObserver};
use hpfq::sim::ServiceRecord;
use hpfq_bench::fig3::{self, Scenario, FLOW_BE1, FLOW_RT1};

/// The paper's evaluation hierarchy keeps every scheduler invariant: tag
/// order, virtual-time monotonicity, SEFF eligibility, work conservation.
#[test]
fn fig3_run_reports_zero_invariant_violations() {
    for kind in [
        SchedulerKind::Wf2qPlus,
        SchedulerKind::Wfq,
        SchedulerKind::Sfq,
    ] {
        let mut f = fig3::build_with_observer(
            kind,
            Scenario::OverloadedPlusConstant,
            7,
            InvariantObserver::new(),
        );
        f.sim.run(2.0);
        assert!(
            f.sim.stats.total_packets > 500,
            "{}: too little traffic",
            kind.name()
        );
        let inv = f.sim.observer();
        assert!(
            inv.events_checked > 1_000,
            "{}: observer saw {} events",
            kind.name(),
            inv.events_checked
        );
        assert!(inv.is_clean(), "{}: {}", kind.name(), inv.summary());
    }
}

/// A JSONL trace captures the run completely: every line parses back, the
/// reconstructed service records equal the simulator's own, and replaying
/// the parsed events through fresh sinks reproduces their live state.
#[test]
fn jsonl_trace_round_trips_and_rebuilds_service_records() {
    let mut f = fig3::build_with_observer(
        SchedulerKind::Wf2qPlus,
        Scenario::GuaranteedRates,
        3,
        JsonlObserver::new(Vec::new()),
    );
    f.sim.run(1.0);
    let live_rt1: Vec<ServiceRecord> = f.sim.stats.trace(FLOW_RT1).to_vec();
    let total_packets = f.sim.stats.total_packets;
    assert!(!live_rt1.is_empty());

    let obs = f.sim.into_observer();
    assert_eq!(obs.write_errors, 0);
    let text = String::from_utf8(obs.into_inner()).unwrap();
    let (events, skipped) = parse_trace(&text);
    assert_eq!(skipped, 0, "unparseable lines in emitted trace");

    // Offline reconstruction matches the live accounting exactly.
    let (records, anomalies) = service_records_from_trace(&events);
    assert_eq!(anomalies.unmatched_ends, 0);
    assert!(anomalies.unmatched_starts <= 1, "{anomalies:?}"); // horizon cut
    assert_eq!(records.len() as u64, total_packets);
    let rt1 = flow_records_from_trace(&events, FLOW_RT1);
    assert_eq!(rt1.len(), live_rt1.len());
    for (a, b) in rt1.iter().zip(&live_rt1) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.len_bytes, b.len_bytes);
        assert_eq!(a.arrival, b.arrival, "floats round-trip bit-exactly");
        assert_eq!(a.start, b.start);
        assert_eq!(a.end, b.end);
    }

    // Replay: recorded events drive any sink just like live ones.
    let mut inv = InvariantObserver::new();
    let mut metrics = MetricsObserver::new();
    for ev in &events {
        replay(&mut inv, ev);
        replay(&mut metrics, ev);
    }
    assert!(inv.is_clean(), "replayed trace: {}", inv.summary());
    assert_eq!(metrics.tx_packets, total_packets);
}

/// Two sinks tupled together each see the full stream; the registry's
/// totals agree with `SimStats` and its report renders.
#[test]
fn tupled_metrics_and_invariants_agree_with_sim_stats() {
    let mut f = fig3::build_with_observer(
        SchedulerKind::Wf2qPlus,
        Scenario::GuaranteedRates,
        11,
        (InvariantObserver::new(), MetricsObserver::new()),
    );
    f.sim.run(1.5);
    let (inv, metrics) = f.sim.observer();
    assert!(inv.is_clean(), "{}", inv.summary());
    assert_eq!(metrics.tx_packets, f.sim.stats.total_packets);
    assert_eq!(metrics.tx_bytes, f.sim.stats.total_bytes);
    for flow in [FLOW_RT1, FLOW_BE1] {
        let live = f.sim.stats.flow(flow);
        let reg = metrics.flow(flow);
        assert_eq!(reg.packets, live.packets, "flow {flow}");
        assert_eq!(reg.bytes, live.bytes, "flow {flow}");
        // Bucketed percentiles are conservative: the p100 bucket's lower
        // edge never exceeds the exact maximum delay.
        assert!(reg.delay.quantile_low_edge(1.0) <= live.delay_max + 1e-12);
    }
    let report = metrics.report();
    assert!(report.contains("link:"), "{report}");
    assert!(report.contains("flow"), "{report}");
}
