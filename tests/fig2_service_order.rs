//! Integration reproduction of the paper's Fig. 2: exact service orders of
//! WFQ, WF²Q and WF²Q+ on the 11-session example, cross-checked against
//! the GPS fluid finish times, all driven through the full `Hierarchy`
//! machinery (depth-1 tree = standalone server).

use hpfq::core::{Hierarchy, Packet, SchedulerKind};
use hpfq::fluid::{Arrival, FluidSim, FluidTree};
use hpfq::obs::InvariantObserver;

/// Runs the Fig. 2 workload through a depth-1 hierarchy and returns the
/// session index of each transmitted packet. An [`InvariantObserver`]
/// rides along; any breach of the tag/virtual-time/SEFF invariants fails
/// the calling test.
fn order(kind: SchedulerKind) -> Vec<u32> {
    let mut h =
        Hierarchy::builder_with_observer(1.0, move |r| kind.build(r), InvariantObserver::new())
            .build();
    let root = h.root();
    let big = h.add_leaf(root, 0.5).unwrap();
    let mut small = Vec::new();
    for _ in 0..10 {
        small.push(h.add_leaf(root, 0.05).unwrap());
    }
    let mut id = 0;
    for _ in 0..11 {
        id += 1;
        h.enqueue(big, Packet::new(id, 0, 1, 0.0));
    }
    for (j, &leaf) in small.iter().enumerate() {
        id += 1;
        h.enqueue(leaf, Packet::new(id, 1 + j as u32, 1, 0.0));
    }
    let mut out = Vec::new();
    while let Some(p) = h.dequeue() {
        out.push(p.flow);
    }
    let inv = h.observer();
    assert!(inv.is_clean(), "{}: {}", kind.name(), inv.summary());
    out
}

#[test]
fn gps_fluid_finish_times_match_the_paper() {
    let mut tree = FluidTree::new();
    let big = tree.add_leaf(tree.root(), 0.5).unwrap();
    let mut small = Vec::new();
    for _ in 0..10 {
        small.push(tree.add_leaf(tree.root(), 0.05).unwrap());
    }
    let mut arr: Vec<Arrival> = (0..11)
        .map(|k| Arrival {
            time: 0.0,
            leaf: big,
            bits: 1.0,
            id: k,
        })
        .collect();
    for (j, &l) in small.iter().enumerate() {
        arr.push(Arrival {
            time: 0.0,
            leaf: l,
            bits: 1.0,
            id: 100 + j as u64,
        });
    }
    let gps = FluidSim::run(&tree, 1.0, &arr);
    // Paper §3.1: finish time 2k for p1^k (k=1..10), 21 for p1^11, 20 for
    // the single packets of sessions 2..11.
    for k in 0..10u64 {
        assert!((gps.finish_of(k).unwrap() - 2.0 * (k + 1) as f64).abs() < 1e-9);
    }
    assert!((gps.finish_of(10).unwrap() - 21.0).abs() < 1e-9);
    for j in 0..10u64 {
        assert!((gps.finish_of(100 + j).unwrap() - 20.0).abs() < 1e-9);
    }
}

#[test]
fn wfq_sends_the_burst_back_to_back() {
    let o = order(SchedulerKind::Wfq);
    assert_eq!(o.len(), 21);
    // Paper Fig. 2 middle timeline: p1^1..p1^10 back-to-back, then the ten
    // single packets, then p1^11.
    assert_eq!(&o[..10], &[0; 10]);
    let mut middle: Vec<u32> = o[10..20].to_vec();
    middle.sort_unstable();
    assert_eq!(middle, (1..=10).collect::<Vec<_>>());
    assert_eq!(o[20], 0);
}

#[test]
fn wf2q_interleaves() {
    let o = order(SchedulerKind::Wf2q);
    assert_eq!(o.len(), 21);
    for (slot, &s) in o.iter().enumerate() {
        if slot % 2 == 0 {
            assert_eq!(s, 0, "slot {slot}: {o:?}");
        } else {
            assert_ne!(s, 0, "slot {slot}: {o:?}");
        }
    }
}

#[test]
fn wf2q_plus_interleaves_identically_to_wf2q() {
    assert_eq!(order(SchedulerKind::Wf2qPlus), order(SchedulerKind::Wf2q));
}

/// The quantitative version of §3.1's "inaccuracy" discussion: over any
/// prefix of the schedule, WF²Q+'s cumulative service to session 1 stays
/// within one packet of the GPS share, while WFQ's deviates by ~N/2.
#[test]
fn service_discrepancy_vs_gps() {
    let measure = |kind: SchedulerKind| -> f64 {
        let o = order(kind);
        let mut served = 0.0_f64;
        let mut worst: f64 = 0.0;
        for (slot, &s) in o.iter().enumerate() {
            if s == 0 {
                served += 1.0;
            }
            let elapsed = (slot + 1) as f64;
            // GPS serves session 1 at exactly half the link until t=20.
            if elapsed <= 20.0 {
                worst = worst.max((served - 0.5 * elapsed).abs());
            }
        }
        worst
    };
    assert!(measure(SchedulerKind::Wf2qPlus) <= 1.0 + 1e-9);
    assert!(measure(SchedulerKind::Wf2q) <= 1.0 + 1e-9);
    assert!(measure(SchedulerKind::Wfq) >= 4.5);
}
