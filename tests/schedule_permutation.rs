//! Schedule-permutation oracle for the conservative-epoch exchange.
//!
//! `tests/parallel_determinism.rs` checks `run_parallel` against the
//! sequential golden under whichever thread interleaving the OS happens
//! to produce. This suite closes the gap: `Network::run_permuted`
//! replays the same epoch protocol single-threaded under an *explicit*
//! per-epoch shard commit order, and we drive it through **every**
//! permutation of that order — exhaustively for 2 shards (2 orders) on
//! the 3-link tandem and for 4 shards (24 orders) on a 4-link tandem —
//! asserting each run's merged trace, per-flow stats, and conservation
//! ledgers are byte-identical to the sequential run. A rotating schedule
//! (a different permutation every epoch) covers order changes *within*
//! a run as well.
//!
//! Because the canonical inbox sort is insensitive to arrival order
//! within a mailbox, whole-outbox commits in permuted shard order
//! subsume the threaded version's per-envelope mutex interleavings:
//! passing here means no commit schedule the barrier protocol admits
//! can change the merged bytes.

use hpfq::core::{Hierarchy, MixedScheduler, SchedulerKind};
use hpfq::obs::jsonl::merge_traces;
use hpfq::obs::JsonlObserver;
use hpfq::sim::{
    CbrSource, FallbackReason, FlowStats, Hop, LinkLedger, Network, Route, ServiceRecord,
    SimCommand,
};

const PKT: u32 = 8192;

type Obs = JsonlObserver<Vec<u8>>;

fn sink() -> Obs {
    JsonlObserver::new(Vec::new())
}

/// Everything a run leaves behind that the oracle compares.
#[derive(Debug, PartialEq)]
struct Snapshot {
    flows: Vec<(u32, FlowStats)>,
    records: Vec<(u32, Vec<ServiceRecord>)>,
    total_bytes: u64,
    total_packets: u64,
    last_departure: f64,
    ledgers: Vec<LinkLedger>,
    merged: String,
}

fn snapshot(net: Network<MixedScheduler, Obs>, flows: &[u32]) -> Snapshot {
    net.verify_conservation().unwrap();
    let flows = flows.iter().map(|&f| (f, net.stats.flow(f))).collect();
    let records = vec![(0, net.stats.trace(0).to_vec())];
    let total_bytes = net.stats.total_bytes;
    let total_packets = net.stats.total_packets;
    let last_departure = net.stats.last_departure;
    let ledgers = (0..net.link_count()).map(|l| net.link_ledger(l)).collect();
    let bufs: Vec<String> = net
        .into_observers()
        .into_iter()
        .map(|o| String::from_utf8(o.into_inner()).unwrap())
        .collect();
    Snapshot {
        flows,
        records,
        total_bytes,
        total_packets,
        last_departure,
        ledgers,
        merged: merge_traces(&bufs),
    }
}

fn assert_snapshots_match(seq: &Snapshot, par: &Snapshot, label: &str) {
    assert_eq!(seq.flows, par.flows, "{label}: per-flow stats diverged");
    assert_eq!(
        seq.records, par.records,
        "{label}: service records diverged"
    );
    assert_eq!(seq.total_bytes, par.total_bytes, "{label}: total bytes");
    assert_eq!(seq.total_packets, par.total_packets, "{label}: packets");
    assert_eq!(
        seq.last_departure, par.last_departure,
        "{label}: last departure"
    );
    assert_eq!(seq.ledgers, par.ledgers, "{label}: link ledgers diverged");
    if seq.merged != par.merged {
        for (i, (a, b)) in seq.merged.lines().zip(par.merged.lines()).enumerate() {
            assert_eq!(a, b, "{label}: traces diverge at merged line {i}");
        }
        panic!(
            "{label}: trace lengths diverge ({} vs {} lines)",
            seq.merged.lines().count(),
            par.merged.lines().count()
        );
    }
}

/// All `n!` permutations of `0..n`, by Heap's algorithm.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn heap(k: usize, a: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(a.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, a, out);
            if k.is_multiple_of(2) {
                a.swap(i, k - 1);
            } else {
                a.swap(0, k - 1);
            }
        }
    }
    let mut a: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    heap(n, &mut a, &mut out);
    out
}

/// An `n`-hop tandem (flow 0) with saturating single-hop cross traffic
/// on every link, a tight mid-path buffer, a mid-run outage on link 1
/// and churn (one cross flow leaves, then the tandem flow is removed
/// mid-path) — the same shape `parallel_determinism` shards, scaled to
/// `links` hops so 4 shards own one link each.
fn tandem_net(links: usize) -> Network<MixedScheduler, Obs> {
    let kind = SchedulerKind::Wf2qPlus;
    let mut net: Network<MixedScheduler, Obs> = Network::new();
    let mut hops = Vec::new();
    for li in 0..links {
        let mut bld = Hierarchy::<MixedScheduler, Obs>::builder_with_observer(
            10e6,
            move |r| kind.build(r),
            sink(),
        );
        let root = bld.root();
        let phi = if li == 1 { 0.2 } else { 0.5 };
        let tandem_leaf = bld.add_leaf(root, phi).unwrap();
        let cross_leaf = bld.add_leaf(root, 1.0 - phi).unwrap();
        let link = net.add_link(bld.build());
        assert_eq!(link, li);
        hops.push(Hop {
            link,
            leaf: tandem_leaf,
            buffer_bytes: if li == 1 {
                Some(2 * u64::from(PKT))
            } else {
                None
            },
            prop_delay: 0.002,
        });
        let flow = 100 + link as u32;
        net.add_route(
            flow,
            CbrSource::new(flow, PKT, 8e6, 0.0, 5.0),
            Route::new(vec![Hop {
                link,
                leaf: cross_leaf,
                buffer_bytes: Some(16 * u64::from(PKT)),
                prop_delay: 0.0,
            }]),
        );
    }
    net.stats.trace_flow(0);
    net.add_route(0, CbrSource::new(0, PKT, 4e6, 0.0, 5.0), Route::new(hops));
    // 50 ms outage on link 1 mid-run, then churn: a cross flow leaves,
    // and the tandem flow is torn down mid-path with packets in flight.
    net.schedule_command(1.0, SimCommand::SetLinkRateOn { link: 1, bps: 0.0 });
    net.schedule_command(1.05, SimCommand::SetLinkRateOn { link: 1, bps: 10e6 });
    net.schedule_command(2.0, SimCommand::RemoveFlow(101));
    net.schedule_command(2.5, SimCommand::RemoveFlow(0));
    net
}

fn flows(links: usize) -> Vec<u32> {
    std::iter::once(0)
        .chain((0..links).map(|li| 100 + li as u32))
        .collect()
}

/// Runs every given schedule and holds each result to the golden.
fn check_orders(links: usize, shards: usize, horizon: f64, schedules: &[(&str, Vec<Vec<usize>>)]) {
    let fl = flows(links);
    let mut seq = tandem_net(links);
    seq.run(horizon);
    let golden = snapshot(seq, &fl);
    assert!(
        golden.merged.lines().count() > 1000,
        "trace too small to be meaningful"
    );

    let mut epochs_seen = None;
    for (label, orders) in schedules {
        let mut net = tandem_net(links);
        let report = net.run_permuted(horizon, shards, orders);
        assert_eq!(report.fallback, None, "{label}: must genuinely shard");
        assert_eq!(report.shards, shards, "{label}");
        assert!(report.epochs > 0, "{label}: ran zero epochs");
        assert_eq!(report.lookahead, 0.002, "{label}");
        // The epoch trajectory is itself schedule-independent.
        match epochs_seen {
            None => epochs_seen = Some(report.epochs),
            Some(e) => assert_eq!(report.epochs, e, "{label}: epoch count diverged"),
        }
        let snap = snapshot(net, &fl);
        assert_snapshots_match(&golden, &snap, label);
    }
}

#[test]
fn two_shards_all_commit_orders_byte_identical() {
    let perms = permutations(2);
    assert_eq!(perms.len(), 2);
    let mut schedules: Vec<(&str, Vec<Vec<usize>>)> = vec![
        ("2s forward", vec![perms[0].clone()]),
        ("2s reversed", vec![perms[1].clone()]),
        // A different commit order every epoch.
        ("2s rotating", perms.clone()),
    ];
    schedules.push(("2s rotating-rev", perms.into_iter().rev().collect()));
    check_orders(3, 2, 8.0, &schedules);
}

#[test]
fn four_shards_all_commit_orders_byte_identical() {
    let perms = permutations(4);
    assert_eq!(perms.len(), 24);
    let labels: Vec<String> = (0..perms.len()).map(|i| format!("4s perm {i}")).collect();
    let mut schedules: Vec<(&str, Vec<Vec<usize>>)> = perms
        .iter()
        .zip(&labels)
        .map(|(p, l)| (l.as_str(), vec![p.clone()]))
        .collect();
    // Cycle through all 24 orders across epochs in one run.
    schedules.push(("4s rotating", perms));
    check_orders(4, 4, 3.0, &schedules);
}

#[test]
fn invalid_orders_fall_back_to_sequential() {
    let fl = flows(3);
    let mut seq = tandem_net(3);
    seq.run(3.0);
    let golden = snapshot(seq, &fl);

    for (label, orders) in [
        ("empty", vec![]),
        ("wrong length", vec![vec![0]]),
        ("repeated shard", vec![vec![0, 0]]),
        ("out of range", vec![vec![0, 2]]),
    ] {
        let mut net = tandem_net(3);
        let report = net.run_permuted(3.0, 2, &orders);
        assert_eq!(
            report.fallback,
            Some(FallbackReason::InvalidOrders),
            "{label}"
        );
        // The fallback path is still the byte-identical sequential run.
        let snap = snapshot(net, &fl);
        assert_snapshots_match(&golden, &snap, label);
    }
}
