//! The multi-link [`Network`] against the single-link [`Simulation`]
//! facade, plus multi-hop conservation and trace-based per-hop delay
//! recovery.
//!
//! The golden test pins the refactor's central claim: a depth-1 network
//! assembled by hand (`add_link` + `Route::single`) replays the
//! `Simulation` front-end **byte-for-byte** — same merged JSONL trace,
//! same statistics — on a reduced Fig. 3 workload with an outage command
//! and a finite buffer in the mix.

use hpfq::analysis::{path_records_from_trace, per_link_records_from_trace};
use hpfq::core::{Hierarchy, MixedScheduler, NodeId, Packet, SchedulerKind};
use hpfq::obs::jsonl::parse_trace;
use hpfq::obs::{EscalationPolicy, JsonlObserver, Observer, SharedBuf, TraceEvent};
use hpfq::sim::{
    CbrSource, FaultInjector, Hop, Network, PacketTrainSource, PacketVerdict, PeriodicOnOffSource,
    PoissonSource, Route, SimCommand, Simulation, SourceConfig,
};

const LINK: f64 = 45e6;
const PKT: u32 = 8192;

/// A reduced Fig. 3 hierarchy: N-R → {N-2 → {N-1 → {RT-1, BE-1}, PS-6,
/// CS-6}, PS-1, CS-1}. Returns the hierarchy and the five leaves in the
/// order `[rt1, be1, ps1, cs1, ps6]`.
fn fig3ish<O: Observer>(obs: O) -> (Hierarchy<MixedScheduler, O>, Vec<NodeId>) {
    let kind = SchedulerKind::Wf2qPlus;
    let mut bld =
        Hierarchy::<MixedScheduler, O>::builder_with_observer(LINK, move |r| kind.build(r), obs);
    let root = bld.root();
    let n2 = bld.add_internal(root, 0.5).unwrap();
    let n1 = bld.add_internal(n2, 0.494).unwrap();
    let rt1 = bld.add_leaf(n1, 0.81).unwrap();
    let be1 = bld.add_leaf(n1, 0.19).unwrap();
    let ps1 = bld.add_leaf(root, 0.05).unwrap();
    let cs1 = bld.add_leaf(root, 0.05).unwrap();
    let ps6 = bld.add_leaf(n2, 0.0506).unwrap();
    (bld.build(), vec![rt1, be1, ps1, cs1, ps6])
}

/// The scenario's sources as `(flow, source, buffer, delivery_delay)`
/// attachment calls against a generic attach closure.
fn attach_sources(
    mut attach: impl FnMut(u32, Box<dyn hpfq::sim::Source>, usize, Option<u64>, f64),
) {
    // leaf indices into the `fig3ish` leaf vec.
    attach(
        1,
        Box::new(PeriodicOnOffSource::new(
            1,
            PKT,
            9e6,
            0.025,
            0.100,
            0.200,
            f64::INFINITY,
        )),
        0,
        None,
        0.0,
    );
    // BE-1 floods through a finite buffer so drop accounting is exercised.
    attach(
        2,
        Box::new(CbrSource::new(2, PKT, 12e6, 0.0, f64::INFINITY)),
        1,
        Some(3 * u64::from(PKT)),
        0.0,
    );
    attach(
        11,
        Box::new(PoissonSource::new(11, PKT, 2.25e6, 0.0, f64::INFINITY, 7)),
        2,
        None,
        0.001,
    );
    attach(
        31,
        Box::new(PacketTrainSource::new(
            31,
            PKT,
            7,
            f64::from(PKT) * 8.0 / LINK,
            0.193,
            0.05,
            f64::INFINITY,
        )),
        3,
        None,
        0.0,
    );
    attach(
        16,
        Box::new(PoissonSource::new(16, PKT, 1.14e6, 0.0, f64::INFINITY, 9)),
        4,
        None,
        0.0,
    );
}

#[test]
fn depth1_network_replays_simulation_byte_for_byte() {
    // Front-end A: the Simulation facade.
    let buf_a = SharedBuf::new();
    let (h, leaves) = fig3ish(JsonlObserver::new(buf_a.clone()));
    let mut sim = Simulation::new(h);
    sim.stats.trace_flow(1);
    attach_sources(|flow, src, leaf, buffer_bytes, delivery_delay| {
        sim.add_source(
            flow,
            src,
            SourceConfig {
                leaf: leaves[leaf],
                buffer_bytes,
                delivery_delay,
            },
        );
    });
    // A 30 ms outage mid-run exercises the epoch/credit machinery.
    sim.schedule_command(0.9, SimCommand::SetLinkRate(0.0));
    sim.schedule_command(0.93, SimCommand::SetLinkRate(LINK));
    sim.run(2.0);
    sim.verify_conservation().unwrap();

    // Front-end B: a hand-assembled one-link Network.
    let buf_b = SharedBuf::new();
    let (h, leaves) = fig3ish(JsonlObserver::new(buf_b.clone()));
    let mut net: Network<MixedScheduler, _> = Network::new();
    let link = net.add_link(h);
    assert_eq!(link, 0);
    net.stats.trace_flow(1);
    attach_sources(|flow, src, leaf, buffer_bytes, delivery_delay| {
        net.add_route(
            flow,
            src,
            Route::single(leaves[leaf], buffer_bytes, delivery_delay),
        );
    });
    net.schedule_command(0.9, SimCommand::SetLinkRate(0.0));
    net.schedule_command(0.93, SimCommand::SetLinkRate(LINK));
    net.run(2.0);
    net.verify_conservation().unwrap();

    // Statistics agree exactly.
    assert_eq!(sim.stats.total_bytes, net.stats.total_bytes);
    assert_eq!(sim.stats.total_packets, net.stats.total_packets);
    assert_eq!(sim.stats.last_departure, net.stats.last_departure);
    assert_eq!(sim.stats.trace(1), net.stats.trace(1));
    for flow in [1, 2, 11, 31, 16] {
        assert_eq!(sim.stats.flow(flow), net.stats.flow(flow), "flow {flow}");
    }
    assert_eq!(sim.link_ledger(0), net.link_ledger(0));

    // The merged JSONL traces are byte-identical and non-trivial.
    let (a, b) = (buf_a.contents(), buf_b.contents());
    assert!(a.lines().count() > 1000, "trace too small to be meaningful");
    assert_eq!(a, b, "depth-1 Network diverged from Simulation");
    let (events, skipped) = parse_trace(&a);
    assert_eq!(skipped, 0);
    // Drops happened (finite BE-1 buffer) and the outage faults are there.
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Drop(d) if d.pkt.flow == 2)));
    assert!(events.iter().any(|e| matches!(e, TraceEvent::Fault(_))));
}

/// A 3-link tandem for flow 0 with single-hop cross traffic on every
/// link. Middle link gets a tight downstream buffer, so packets already
/// accepted at ingress are purged mid-path — the case the per-link
/// ledgers must keep balanced.
fn tandem() -> (Network<MixedScheduler>, u32) {
    let kind = SchedulerKind::Wf2qPlus;
    let mut net: Network<MixedScheduler> = Network::new();
    let mut hops = Vec::new();
    let mut cross = Vec::new();
    for li in 0..3usize {
        let mut bld = Hierarchy::<MixedScheduler>::builder(10e6, move |r| kind.build(r));
        let root = bld.root();
        // The middle link undersizes the tandem flow's share (2 Mbit/s
        // guaranteed vs 4 Mbit/s arriving) so its tight buffer overflows.
        let phi = if li == 1 { 0.2 } else { 0.5 };
        let tandem_leaf = bld.add_leaf(root, phi).unwrap();
        let cross_leaf = bld.add_leaf(root, 1.0 - phi).unwrap();
        let link = net.add_link(bld.build());
        assert_eq!(link, li);
        hops.push(Hop {
            link,
            leaf: tandem_leaf,
            // The middle hop's buffer is barely two packets deep.
            buffer_bytes: if li == 1 {
                Some(2 * u64::from(PKT))
            } else {
                None
            },
            prop_delay: 0.002,
        });
        cross.push((link, cross_leaf));
    }
    net.add_route(0, CbrSource::new(0, PKT, 4e6, 0.0, 5.0), Route::new(hops));
    for (link, leaf) in cross {
        let flow = 100 + link as u32;
        net.add_route(
            flow,
            // Cross traffic saturates each link so the tandem flow queues.
            CbrSource::new(flow, PKT, 8e6, 0.0, 5.0),
            Route::new(vec![Hop {
                link,
                leaf,
                buffer_bytes: Some(16 * u64::from(PKT)),
                prop_delay: 0.0,
            }]),
        );
    }
    (net, 0)
}

#[test]
fn multi_hop_tandem_conserves_bytes_per_link() {
    let (mut net, flow) = tandem();
    net.run(8.0);
    net.verify_conservation().unwrap();
    // The tandem flow made it through all three hops.
    assert!(net.stats.flow(flow).packets > 100);
    // The middle link's tight buffer dropped mid-path packets; those are
    // stats-level purges (the packet was accepted at ingress but never
    // entered link 1's hierarchy, so link 1's ledger is untouched).
    assert!(
        net.stats.flow(flow).purged_bytes > 0,
        "{:?}",
        net.stats.flow(flow)
    );
    // Every link's ledger still balances (verify_conservation checked
    // in == out + purged + queued; spot-check out > 0 too).
    for link in 0..3 {
        let l = net.link_ledger(link);
        assert!(l.bytes_out > 0, "link {link} never transmitted");
        assert!(l.packets_in >= l.packets_out);
    }
    // Churn mid-path: removing the tandem flow purges its queues at every
    // hop and conservation still holds.
    let (mut net, flow) = tandem();
    net.schedule_command(2.0, SimCommand::RemoveFlow(flow));
    net.run(8.0);
    net.verify_conservation().unwrap();
    assert!(net.stats.flow(flow).purged_bytes > 0);
}

#[test]
fn merged_trace_recovers_per_hop_and_end_to_end_delay() {
    let kind = SchedulerKind::Wf2qPlus;
    let buf = SharedBuf::new();
    let mut net: Network<MixedScheduler, JsonlObserver<SharedBuf>> = Network::new();
    let mut hops = Vec::new();
    let prop = [0.003, 0.001, 0.0];
    for (li, &hop_prop) in prop.iter().enumerate() {
        let mut bld = Hierarchy::<MixedScheduler, _>::builder_with_observer(
            10e6,
            move |r| kind.build(r),
            JsonlObserver::new(buf.clone()),
        );
        let root = bld.root();
        let leaf = bld.add_leaf(root, 0.5).unwrap();
        let cross_leaf = bld.add_leaf(root, 0.5).unwrap();
        let link = net.add_link(bld.build());
        hops.push(Hop {
            link,
            leaf,
            buffer_bytes: None,
            prop_delay: hop_prop,
        });
        net.add_route(
            100 + li as u32,
            CbrSource::new(100 + li as u32, PKT, 6e6, 0.0, 2.0),
            Route::new(vec![Hop {
                link,
                leaf: cross_leaf,
                buffer_bytes: None,
                prop_delay: 0.0,
            }]),
        );
    }
    net.stats.trace_flow(0);
    net.add_route(0, CbrSource::new(0, PKT, 3e6, 0.0, 2.0), Route::new(hops));
    net.run(4.0);
    net.verify_conservation().unwrap();

    let (events, skipped) = parse_trace(&buf.contents());
    assert_eq!(skipped, 0);
    let (by_link, anomalies) = per_link_records_from_trace(&events);
    assert_eq!(anomalies.unmatched_ends, 0);
    assert_eq!(by_link.len(), 3, "all three links appear in one trace");

    let (paths, _) = path_records_from_trace(&events);
    let tandem_paths: Vec<_> = paths.iter().filter(|p| p.flow == 0).collect();
    assert!(tandem_paths.len() > 80, "{} paths", tandem_paths.len());
    for p in &tandem_paths {
        assert_eq!(
            p.hops.iter().map(|&(l, _)| l).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "traversal order"
        );
        // End-to-end = hop delays + inter-hop propagation (final-hop
        // propagation is delivery, outside the trace).
        let resid = p.end_to_end()
            - (p.hop_delay(0) + p.hop_delay(1) + p.hop_delay(2))
            - (prop[0] + prop[1]);
        assert!(resid.abs() < 1e-9, "residual {resid}");
        // Each hop's delay includes at least its transmission time.
        for i in 0..3 {
            assert!(p.hop_delay(i) >= f64::from(PKT) * 8.0 / 10e6 - 1e-9);
        }
    }
    // The network's own service records (written at the last hop) agree
    // with the trace's last-hop view.
    let recs = net.stats.trace(0);
    assert_eq!(recs.len(), tandem_paths.len());
    for (rec, path) in recs.iter().zip(&tandem_paths) {
        assert_eq!(rec.id, path.id);
        assert!((rec.end - path.hops[2].1.end).abs() < 1e-12);
    }
}

/// Corrupts every packet of one flow into an invalid (zero-length) packet
/// at network ingress.
struct CorruptFlow(u32);

impl FaultInjector for CorruptFlow {
    fn on_packet(&mut self, _now: f64, pkt: &mut Packet) -> PacketVerdict {
        if pkt.flow == self.0 {
            pkt.len_bytes = 0;
            PacketVerdict::Corrupted
        } else {
            PacketVerdict::Pass
        }
    }
}

#[test]
fn faults_escalate_to_quarantine_at_every_hop() {
    let kind = SchedulerKind::Wf2qPlus;
    let mut net: Network<MixedScheduler> = Network::new();
    let mut hops = Vec::new();
    for _ in 0..2 {
        let mut bld = Hierarchy::<MixedScheduler>::builder(10e6, move |r| kind.build(r));
        let root = bld.root();
        let leaf = bld.add_leaf(root, 0.6).unwrap();
        let other = bld.add_leaf(root, 0.4).unwrap();
        let link = net.add_link(bld.build());
        hops.push(Hop {
            link,
            leaf,
            buffer_bytes: None,
            prop_delay: 0.001,
        });
        net.add_route(
            50 + link as u32,
            CbrSource::new(50 + link as u32, 1000, 5e6, 0.0, 3.0),
            Route::new(vec![Hop {
                link,
                leaf: other,
                buffer_bytes: None,
                prop_delay: 0.0,
            }]),
        );
    }
    net.add_route(
        7,
        CbrSource::new(7, 1000, 2e6, 0.0, 3.0),
        Route::new(hops.clone()),
    );
    net.set_fault_injector(CorruptFlow(7));
    net.set_escalation_policy(EscalationPolicy::standard());
    net.run(5.0);
    assert!(net.escalation().is_quarantined(7));
    assert!(!net.is_halted(), "standard policy quarantines, not halts");
    // The quarantined flow's leaves are detached at BOTH hops.
    for hop in &hops {
        assert!(net.link_server(hop.link).is_detached(hop.leaf));
    }
    // Invalid packets never made it to the byte ledger as accepted, and
    // the network still balances.
    net.verify_conservation().unwrap();
    assert_eq!(net.stats.flow(7).accepted_packets, 0);
    // Healthy cross traffic was unaffected.
    for link in 0..2u32 {
        assert!(net.stats.flow(50 + link).packets > 500);
    }
}
