//! Mid-run checkpoint/restore byte-identity oracle.
//!
//! `Network::snapshot()` / `Network::restore()` promise
//!
//! ```text
//! run(0..T)  ≡  run(0..t) → snapshot → restore → run(t..T)
//! ```
//!
//! on per-flow statistics, service records, link ledgers, and the JSONL
//! trace. These tests pin that promise on the two reference scenarios the
//! parallel-determinism oracle uses — the reduced Fig. 3 single-link
//! workload (outage + finite buffer) and a 3-link tandem with cross
//! traffic, a mid-run outage, and flow churn — in three restore modes:
//!
//! * **no-op**: snapshotting mid-run and simply continuing must not
//!   perturb the run (the queue is drained and rebuilt during capture);
//! * **rollback**: restoring an earlier snapshot into the *same* network
//!   after it ran further must rewind everything — including the trace,
//!   whose post-checkpoint lines are truncated — and replay identically;
//! * **resume**: restoring into a freshly built network must continue
//!   identically, with the trace picking up exactly at the checkpoint's
//!   byte offset (the prefix lives in the snapshot's origin).
//!
//! Serialized snapshots are byte-deterministic: equal runs checkpointed at
//! the same instant produce equal bytes, and a text round-trip through
//! `snap::parse` preserves them.

use hpfq::core::{Hierarchy, MixedScheduler, SchedulerKind};
use hpfq::obs::jsonl::merge_traces;
use hpfq::obs::snap::{self, Value};
use hpfq::obs::JsonlObserver;
use hpfq::sim::{
    CbrSource, FlowStats, Hop, LinkLedger, Network, PacketTrainSource, PeriodicOnOffSource,
    PoissonSource, Route, ServiceRecord, SimCommand,
};

const LINK: f64 = 45e6;
const PKT: u32 = 8192;

type Obs = JsonlObserver<Vec<u8>>;

fn sink() -> Obs {
    JsonlObserver::new(Vec::new())
}

/// Everything a finished run leaves behind that the oracle compares.
#[derive(Debug, PartialEq)]
struct RunArtifacts {
    flows: Vec<(u32, FlowStats)>,
    records: Vec<(u32, Vec<ServiceRecord>)>,
    total_bytes: u64,
    total_packets: u64,
    last_departure: f64,
    ledgers: Vec<LinkLedger>,
    /// Per-link raw trace buffers (pre-merge, for tail comparisons).
    bufs: Vec<String>,
    merged: String,
}

fn artifacts(net: Network<MixedScheduler, Obs>, flows: &[u32], traced: &[u32]) -> RunArtifacts {
    net.verify_conservation().unwrap();
    let flows = flows.iter().map(|&f| (f, net.stats.flow(f))).collect();
    let records = traced
        .iter()
        .map(|&f| (f, net.stats.trace(f).to_vec()))
        .collect();
    let total_bytes = net.stats.total_bytes;
    let total_packets = net.stats.total_packets;
    let last_departure = net.stats.last_departure;
    let ledgers = (0..net.link_count()).map(|l| net.link_ledger(l)).collect();
    let bufs: Vec<String> = net
        .into_observers()
        .into_iter()
        .map(|o| String::from_utf8(o.into_inner()).unwrap())
        .collect();
    let merged = merge_traces(&bufs);
    RunArtifacts {
        flows,
        records,
        total_bytes,
        total_packets,
        last_departure,
        ledgers,
        bufs,
        merged,
    }
}

fn assert_artifacts_match(golden: &RunArtifacts, got: &RunArtifacts, label: &str) {
    assert_eq!(golden.flows, got.flows, "{label}: per-flow stats diverged");
    assert_eq!(golden.records, got.records, "{label}: service records");
    assert_eq!(golden.total_bytes, got.total_bytes, "{label}: total bytes");
    assert_eq!(golden.total_packets, got.total_packets, "{label}: packets");
    assert_eq!(
        golden.last_departure, got.last_departure,
        "{label}: last departure"
    );
    assert_eq!(golden.ledgers, got.ledgers, "{label}: link ledgers");
    if golden.merged != got.merged {
        for (i, (a, b)) in golden.merged.lines().zip(got.merged.lines()).enumerate() {
            assert_eq!(a, b, "{label}: traces diverge at merged line {i}");
        }
        panic!(
            "{label}: trace lengths diverge ({} vs {} lines)",
            golden.merged.lines().count(),
            got.merged.lines().count()
        );
    }
}

/// The trace byte offset of link `i` recorded inside a snapshot (the
/// observer mark `[pos, write_errors]`).
fn trace_offset(snapshot: &Value, link: usize) -> usize {
    snapshot.get("links").unwrap().items().unwrap()[link]
        .get("obs")
        .unwrap()
        .items()
        .unwrap()[0]
        .as_usize()
        .unwrap()
}

/// Stats/records/ledgers must match in full; each per-link trace must be
/// exactly the golden trace's tail past the checkpoint's byte offset (a
/// resumed network never saw the prefix).
fn assert_resumed_match(golden: &RunArtifacts, got: &RunArtifacts, snapshot: &Value, label: &str) {
    assert_eq!(golden.flows, got.flows, "{label}: per-flow stats diverged");
    assert_eq!(golden.records, got.records, "{label}: service records");
    assert_eq!(golden.ledgers, got.ledgers, "{label}: link ledgers");
    assert_eq!(golden.bufs.len(), got.bufs.len(), "{label}: link count");
    for (i, (g, c)) in golden.bufs.iter().zip(&got.bufs).enumerate() {
        let cut = trace_offset(snapshot, i);
        assert!(
            cut <= g.len(),
            "{label}: link {i} checkpoint offset {cut} beyond golden trace"
        );
        assert_eq!(
            &g[cut..],
            c.as_str(),
            "{label}: link {i} resumed trace is not the golden tail"
        );
    }
}

/// The reduced Fig. 3 workload on one link (mirrors
/// `parallel_determinism::fig3_net`): five sources, a 30 ms outage, one
/// finite buffer.
fn fig3_net() -> Network<MixedScheduler, Obs> {
    let kind = SchedulerKind::Wf2qPlus;
    let mut bld = Hierarchy::<MixedScheduler, Obs>::builder_with_observer(
        LINK,
        move |r| kind.build(r),
        sink(),
    );
    let root = bld.root();
    let n2 = bld.add_internal(root, 0.5).unwrap();
    let n1 = bld.add_internal(n2, 0.494).unwrap();
    let rt1 = bld.add_leaf(n1, 0.81).unwrap();
    let be1 = bld.add_leaf(n1, 0.19).unwrap();
    let ps1 = bld.add_leaf(root, 0.05).unwrap();
    let cs1 = bld.add_leaf(root, 0.05).unwrap();
    let ps6 = bld.add_leaf(n2, 0.0506).unwrap();

    let mut net: Network<MixedScheduler, Obs> = Network::new();
    net.add_link(bld.build());
    net.stats.trace_flow(1);
    net.add_route(
        1,
        PeriodicOnOffSource::new(1, PKT, 9e6, 0.025, 0.100, 0.200, f64::INFINITY),
        Route::single(rt1, None, 0.0),
    );
    net.add_route(
        2,
        CbrSource::new(2, PKT, 12e6, 0.0, f64::INFINITY),
        Route::single(be1, Some(3 * u64::from(PKT)), 0.0),
    );
    net.add_route(
        11,
        PoissonSource::new(11, PKT, 2.25e6, 0.0, f64::INFINITY, 7),
        Route::single(ps1, None, 0.001),
    );
    net.add_route(
        31,
        PacketTrainSource::new(
            31,
            PKT,
            7,
            f64::from(PKT) * 8.0 / LINK,
            0.193,
            0.05,
            f64::INFINITY,
        ),
        Route::single(cs1, None, 0.0),
    );
    net.add_route(
        16,
        PoissonSource::new(16, PKT, 1.14e6, 0.0, f64::INFINITY, 9),
        Route::single(ps6, None, 0.0),
    );
    net.schedule_command(0.9, SimCommand::SetLinkRate(0.0));
    net.schedule_command(0.93, SimCommand::SetLinkRate(LINK));
    net
}

/// The 3-link tandem with cross traffic, mid-run outage on the middle
/// link, and churn (mirrors `parallel_determinism::tandem_net`).
fn tandem_net() -> Network<MixedScheduler, Obs> {
    let kind = SchedulerKind::Wf2qPlus;
    let mut net: Network<MixedScheduler, Obs> = Network::new();
    let mut hops = Vec::new();
    for li in 0..3usize {
        let mut bld = Hierarchy::<MixedScheduler, Obs>::builder_with_observer(
            10e6,
            move |r| kind.build(r),
            sink(),
        );
        let root = bld.root();
        let phi = if li == 1 { 0.2 } else { 0.5 };
        let tandem_leaf = bld.add_leaf(root, phi).unwrap();
        let cross_leaf = bld.add_leaf(root, 1.0 - phi).unwrap();
        let link = net.add_link(bld.build());
        assert_eq!(link, li);
        hops.push(Hop {
            link,
            leaf: tandem_leaf,
            buffer_bytes: if li == 1 {
                Some(2 * u64::from(PKT))
            } else {
                None
            },
            prop_delay: 0.002,
        });
        let flow = 100 + link as u32;
        net.add_route(
            flow,
            CbrSource::new(flow, PKT, 8e6, 0.0, 5.0),
            Route::new(vec![Hop {
                link,
                leaf: cross_leaf,
                buffer_bytes: Some(16 * u64::from(PKT)),
                prop_delay: 0.0,
            }]),
        );
    }
    net.stats.trace_flow(0);
    net.add_route(0, CbrSource::new(0, PKT, 4e6, 0.0, 5.0), Route::new(hops));
    net.schedule_command(1.0, SimCommand::SetLinkRateOn { link: 1, bps: 0.0 });
    net.schedule_command(1.05, SimCommand::SetLinkRateOn { link: 1, bps: 10e6 });
    net.schedule_command(2.0, SimCommand::RemoveFlow(101));
    net.schedule_command(3.0, SimCommand::RemoveFlow(0));
    net
}

const FIG3_FLOWS: &[u32] = &[1, 2, 11, 31, 16];
const TANDEM_FLOWS: &[u32] = &[0, 100, 101, 102];

#[test]
fn fig3_snapshot_is_observationally_a_noop_and_byte_deterministic() {
    let mut seq = fig3_net();
    seq.run(2.0);
    let golden = artifacts(seq, FIG3_FLOWS, &[1]);

    // Snapshot mid-run (just past the outage window, queues still
    // draining), twice in a row, and from an independent identical run:
    // all captures must be byte-identical and perturb nothing.
    let mut net = fig3_net();
    net.run(1.0);
    let snap_a = net.snapshot().unwrap();
    let snap_b = net.snapshot().unwrap();
    assert_eq!(
        snap_a.to_bytes(),
        snap_b.to_bytes(),
        "re-capture at the same instant changed bytes"
    );
    let mut twin = fig3_net();
    twin.run(1.0);
    assert_eq!(
        twin.snapshot().unwrap().to_bytes(),
        snap_a.to_bytes(),
        "identical runs captured different bytes"
    );
    // Text round-trip preserves the tree.
    let reparsed = snap::parse(&snap_a.to_text()).unwrap();
    assert_eq!(reparsed.to_bytes(), snap_a.to_bytes());

    net.run(2.0);
    let cont = artifacts(net, FIG3_FLOWS, &[1]);
    assert_artifacts_match(&golden, &cont, "fig3 snapshot+continue");
}

#[test]
fn fig3_rollback_and_resume_replay_byte_identically() {
    let mut seq = fig3_net();
    seq.run(2.0);
    let golden = artifacts(seq, FIG3_FLOWS, &[1]);
    assert!(golden.merged.lines().count() > 1000, "trace too small");

    let mut net = fig3_net();
    net.run(1.0);
    let snap = net.snapshot().unwrap();

    // Rollback: run to completion, then rewind the same network to the
    // checkpoint — trace tail truncated — and replay.
    net.run(2.0);
    net.restore(&snap).unwrap();
    net.run(2.0);
    let rolled = artifacts(net, FIG3_FLOWS, &[1]);
    assert_artifacts_match(&golden, &rolled, "fig3 rollback");

    // Resume: restore into a freshly built topology and run the tail.
    let mut fresh = fig3_net();
    fresh.restore(&snap).unwrap();
    fresh.run(2.0);
    let resumed = artifacts(fresh, FIG3_FLOWS, &[1]);
    assert_resumed_match(&golden, &resumed, &snap, "fig3 resume");
}

#[test]
fn tandem_rollback_and_resume_replay_byte_identically() {
    let mut seq = tandem_net();
    seq.run(8.0);
    let golden = artifacts(seq, TANDEM_FLOWS, &[0]);
    assert!(golden.merged.lines().count() > 1000, "trace too small");
    // Non-trivial scenario: churn purged bytes mid-path.
    let tandem = golden.flows.iter().find(|&&(f, _)| f == 0).unwrap();
    assert!(tandem.1.purged_bytes > 0, "{:?}", tandem.1);

    // Checkpoint instants bracketing the outage and both churn events.
    for t in [0.5, 1.02, 2.5, 3.5] {
        let mut net = tandem_net();
        net.run(t);
        let snap = net.snapshot().unwrap();

        net.run(8.0);
        net.restore(&snap).unwrap();
        net.run(8.0);
        let rolled = artifacts(net, TANDEM_FLOWS, &[0]);
        assert_artifacts_match(&golden, &rolled, &format!("tandem rollback t={t}"));

        let mut fresh = tandem_net();
        fresh.restore(&snap).unwrap();
        fresh.run(8.0);
        let resumed = artifacts(fresh, TANDEM_FLOWS, &[0]);
        assert_resumed_match(&golden, &resumed, &snap, &format!("tandem resume t={t}"));
    }
}

#[test]
fn tandem_resume_runs_parallel_byte_identically() {
    let mut seq = tandem_net();
    seq.run(8.0);
    let golden = artifacts(seq, TANDEM_FLOWS, &[0]);

    // Restore a mid-run checkpoint into a fresh network and finish the
    // run *sharded*: the parallel tail must still be the golden tail.
    for n in [1usize, 2, 4] {
        let mut net = tandem_net();
        net.run(2.5);
        let snap = net.snapshot().unwrap();

        let mut fresh = tandem_net();
        fresh.restore(&snap).unwrap();
        fresh.run_parallel(8.0, n);
        let resumed = artifacts(fresh, TANDEM_FLOWS, &[0]);
        assert_resumed_match(&golden, &resumed, &snap, &format!("tandem parallel n={n}"));
    }
}
