//! Traffic sources: the workloads of paper §5 plus supporting generators.
//!
//! A [`Source`] is a state machine driven by the simulator:
//! [`Source::start`] runs once at simulation start; [`Source::on_wake`]
//! runs at each timer the source scheduled; [`Source::on_delivered`] runs
//! when one of the source's packets is delivered to its destination (used
//! by the TCP model for ACK clocking — open-loop sources ignore it). Each
//! callback returns packets to enqueue *now* and further timers to set.
//!
//! Sources never see the clock except through callback timestamps, and all
//! randomness is seeded, so simulations are reproducible.

use crate::rng::SmallRng;
use hpfq_core::{vtime, Packet};
use hpfq_obs::snap::{SnapError, Value};

/// What a source callback hands back to the simulator.
#[derive(Debug, Default)]
pub struct SourceOutput {
    /// Packets to enqueue at the source's leaf, in order, at the current
    /// instant. Lengths and flow ids are the source's responsibility.
    pub packets: Vec<Packet>,
    /// Absolute times at which to call [`Source::on_wake`] again.
    pub wakes: Vec<f64>,
}

impl SourceOutput {
    /// Empty output.
    pub fn none() -> Self {
        Self::default()
    }

    /// Output consisting of a single wake-up.
    pub fn wake_at(t: f64) -> Self {
        SourceOutput {
            packets: Vec::new(),
            wakes: vec![t],
        }
    }
}

/// A traffic generator attached to one leaf of the hierarchy.
///
/// `Send` is a supertrait so that a whole [`crate::Network`] — sources
/// included — can be sharded across `std::thread::scope` workers by the
/// deterministic parallel execution mode. Sources are still driven from
/// exactly one thread at a time; the bound only rules out thread-pinned
/// interior handles (`Rc`, raw pointers) in source state.
pub trait Source: Send {
    /// Called once at simulation start (time 0); typically schedules the
    /// first wake-up.
    fn start(&mut self) -> SourceOutput;

    /// Called at a time previously requested via `wakes`.
    fn on_wake(&mut self, now: f64) -> SourceOutput;

    /// Called when one of this source's packets has been delivered to its
    /// destination (transmission complete + one-way delay). Open-loop
    /// sources use the default no-op.
    fn on_delivered(&mut self, _now: f64, _pkt: &Packet) -> SourceOutput {
        SourceOutput::none()
    }

    /// Short label for reports.
    fn label(&self) -> String {
        "source".to_owned()
    }

    /// Serializes the source — configuration and mutable position in its
    /// arrival process — for an epoch checkpoint. Every built-in source
    /// returns a `kind`-tagged map that [`load_source`] reconstructs
    /// exactly (RNG state included). External closed-loop sources opt in
    /// by overriding; the default refuses, so a [`crate::Network`]
    /// snapshot fails with a typed error instead of silently losing the
    /// source.
    fn save_state(&self) -> Result<Value, SnapError> {
        Err(SnapError {
            at: 0,
            what: format!("source '{}' does not support checkpointing", self.label()),
        })
    }
}

impl Source for Box<dyn Source> {
    fn start(&mut self) -> SourceOutput {
        (**self).start()
    }

    fn on_wake(&mut self, now: f64) -> SourceOutput {
        (**self).on_wake(now)
    }

    fn on_delivered(&mut self, now: f64, pkt: &Packet) -> SourceOutput {
        (**self).on_delivered(now, pkt)
    }

    fn label(&self) -> String {
        (**self).label()
    }

    fn save_state(&self) -> Result<Value, SnapError> {
        (**self).save_state()
    }
}

/// Rebuilds a boxed source from a snapshot produced by
/// [`Source::save_state`]. The `kind` tag selects among the built-in
/// source types; snapshots of external `Source` implementations cannot be
/// rebuilt here and yield an error naming the unknown kind.
pub fn load_source(v: &Value) -> Result<Box<dyn Source>, SnapError> {
    let kind = v.get("kind")?.as_str()?;
    match kind {
        "cbr" => Ok(Box::new(CbrSource::load(v)?)),
        "onoff" => Ok(Box::new(PeriodicOnOffSource::load(v)?)),
        "sched" => Ok(Box::new(ScheduledOnOffSource::load(v)?)),
        "poisson" => Ok(Box::new(PoissonSource::load(v)?)),
        "train" => Ok(Box::new(PacketTrainSource::load(v)?)),
        "lb" => Ok(Box::new(GreedyLbSource::load(v)?)),
        "trace" => Ok(Box::new(TraceSource::load(v)?)),
        other => Err(SnapError {
            at: 0,
            what: format!("unknown source kind '{other}'"),
        }),
    }
}

/// Allocates globally unique packet ids within one simulation.
/// (Sources receive an id range at construction: flow id in the high bits.)
fn pkt_id(flow: u32, seq: u64) -> u64 {
    (u64::from(flow) << 40) | (seq & 0xFF_FFFF_FFFF)
}

// ---------------------------------------------------------------------------

/// Constant-bit-rate source (the paper's PS-n sessions): fixed-size packets
/// at exact intervals from `start_time` until `stop_time`.
#[derive(Debug, Clone)]
pub struct CbrSource {
    flow: u32,
    len_bytes: u32,
    interval: f64,
    start_time: f64,
    stop_time: f64,
    seq: u64,
}

impl CbrSource {
    /// A CBR source sending `rate_bps` worth of `len_bytes` packets.
    pub fn new(flow: u32, len_bytes: u32, rate_bps: f64, start_time: f64, stop_time: f64) -> Self {
        assert!(rate_bps > 0.0 && len_bytes > 0);
        CbrSource {
            flow,
            len_bytes,
            interval: f64::from(len_bytes) * 8.0 / rate_bps,
            start_time,
            stop_time,
            seq: 0,
        }
    }
}

impl Source for CbrSource {
    fn start(&mut self) -> SourceOutput {
        SourceOutput::wake_at(self.start_time)
    }

    fn on_wake(&mut self, now: f64) -> SourceOutput {
        if now >= self.stop_time {
            return SourceOutput::none();
        }
        self.seq += 1;
        let pkt = Packet::new(pkt_id(self.flow, self.seq), self.flow, self.len_bytes, now);
        SourceOutput {
            packets: vec![pkt],
            wakes: vec![now + self.interval],
        }
    }

    fn label(&self) -> String {
        format!("cbr-{}", self.flow)
    }

    fn save_state(&self) -> Result<Value, SnapError> {
        Ok(Value::map(vec![
            ("kind", Value::Str("cbr".to_owned())),
            ("flow", Value::U64(u64::from(self.flow))),
            ("len_bytes", Value::U64(u64::from(self.len_bytes))),
            ("interval", Value::F64(self.interval)),
            ("start_time", Value::F64(self.start_time)),
            ("stop_time", Value::F64(self.stop_time)),
            ("seq", Value::U64(self.seq)),
        ]))
    }
}

impl CbrSource {
    fn load(v: &Value) -> Result<Self, SnapError> {
        Ok(CbrSource {
            flow: v.get("flow")?.as_u32()?,
            len_bytes: v.get("len_bytes")?.as_u32()?,
            interval: v.get("interval")?.as_f64()?,
            start_time: v.get("start_time")?.as_f64()?,
            stop_time: v.get("stop_time")?.as_f64()?,
            seq: v.get("seq")?.as_u64()?,
        })
    }
}

// ---------------------------------------------------------------------------

/// Deterministic periodic on/off source (the paper's RT-1: 25 ms on, 75 ms
/// off): during the on phase, sends like CBR at `peak_rate_bps`.
#[derive(Debug, Clone)]
pub struct PeriodicOnOffSource {
    flow: u32,
    len_bytes: u32,
    interval: f64,
    on_duration: f64,
    period: f64,
    start_time: f64,
    stop_time: f64,
    seq: u64,
}

impl PeriodicOnOffSource {
    /// `on_duration` of CBR at `peak_rate_bps` every `period` seconds.
    pub fn new(
        flow: u32,
        len_bytes: u32,
        peak_rate_bps: f64,
        on_duration: f64,
        period: f64,
        start_time: f64,
        stop_time: f64,
    ) -> Self {
        assert!(peak_rate_bps > 0.0 && on_duration > 0.0 && period >= on_duration);
        PeriodicOnOffSource {
            flow,
            len_bytes,
            interval: f64::from(len_bytes) * 8.0 / peak_rate_bps,
            on_duration,
            period,
            start_time,
            stop_time,
            seq: 0,
        }
    }

    /// Phase offset within the current period.
    fn phase(&self, now: f64) -> f64 {
        (now - self.start_time).rem_euclid(self.period)
    }
}

impl Source for PeriodicOnOffSource {
    fn start(&mut self) -> SourceOutput {
        SourceOutput::wake_at(self.start_time)
    }

    fn on_wake(&mut self, now: f64) -> SourceOutput {
        if now >= self.stop_time {
            return SourceOutput::none();
        }
        // Within the on phase (half-open: a packet slot must *begin*
        // strictly inside it)?
        if vtime::strictly_before(self.phase(now), self.on_duration) {
            self.seq += 1;
            let pkt = Packet::new(pkt_id(self.flow, self.seq), self.flow, self.len_bytes, now);
            let next = now + self.interval;
            // If the next slot falls in the off phase, jump to the next
            // period start.
            let wake = if vtime::strictly_before(self.phase(next), self.on_duration) && next > now {
                next
            } else {
                let k = ((next - self.start_time) / self.period).floor() + 1.0;
                self.start_time + k * self.period
            };
            SourceOutput {
                packets: vec![pkt],
                wakes: vec![wake],
            }
        } else {
            // Woke in the off phase (e.g. first wake landed oddly): go to
            // the next period boundary — strictly in the future, so float
            // rounding can never re-deliver the same instant forever.
            let mut k = ((now - self.start_time) / self.period).floor() + 1.0;
            let mut wake = self.start_time + k * self.period;
            if wake <= now {
                k += 1.0;
                wake = self.start_time + k * self.period;
            }
            SourceOutput::wake_at(wake)
        }
    }

    fn label(&self) -> String {
        format!("onoff-{}", self.flow)
    }

    fn save_state(&self) -> Result<Value, SnapError> {
        Ok(Value::map(vec![
            ("kind", Value::Str("onoff".to_owned())),
            ("flow", Value::U64(u64::from(self.flow))),
            ("len_bytes", Value::U64(u64::from(self.len_bytes))),
            ("interval", Value::F64(self.interval)),
            ("on_duration", Value::F64(self.on_duration)),
            ("period", Value::F64(self.period)),
            ("start_time", Value::F64(self.start_time)),
            ("stop_time", Value::F64(self.stop_time)),
            ("seq", Value::U64(self.seq)),
        ]))
    }
}

impl PeriodicOnOffSource {
    fn load(v: &Value) -> Result<Self, SnapError> {
        Ok(PeriodicOnOffSource {
            flow: v.get("flow")?.as_u32()?,
            len_bytes: v.get("len_bytes")?.as_u32()?,
            interval: v.get("interval")?.as_f64()?,
            on_duration: v.get("on_duration")?.as_f64()?,
            period: v.get("period")?.as_f64()?,
            start_time: v.get("start_time")?.as_f64()?,
            stop_time: v.get("stop_time")?.as_f64()?,
            seq: v.get("seq")?.as_u64()?,
        })
    }
}

// ---------------------------------------------------------------------------

/// On/off source with an explicit activity schedule (the §5.2 link-sharing
/// on/off sources, Fig. 8(b)): CBR at `rate_bps` during each interval.
#[derive(Debug, Clone)]
pub struct ScheduledOnOffSource {
    flow: u32,
    len_bytes: u32,
    interval: f64,
    /// Half-open active intervals `(start, end)`, sorted, non-overlapping.
    schedule: Vec<(f64, f64)>,
    seq: u64,
}

impl ScheduledOnOffSource {
    /// A source active during each `(start, end)` of `schedule`.
    pub fn new(flow: u32, len_bytes: u32, rate_bps: f64, schedule: Vec<(f64, f64)>) -> Self {
        assert!(rate_bps > 0.0);
        for w in schedule.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "schedule intervals must be sorted/disjoint"
            );
        }
        ScheduledOnOffSource {
            flow,
            len_bytes,
            interval: f64::from(len_bytes) * 8.0 / rate_bps,
            schedule,
            seq: 0,
        }
    }

    /// The active interval containing `t`, if any.
    fn active_at(&self, t: f64) -> Option<(f64, f64)> {
        self.schedule
            .iter()
            .copied()
            .find(|&(s, e)| vtime::approx_ge(t, s) && vtime::strictly_before(t, e))
    }

    /// Start of the first interval after `t`.
    fn next_start_after(&self, t: f64) -> Option<f64> {
        self.schedule
            .iter()
            .map(|&(s, _)| s)
            .find(|&s| vtime::strictly_after(s, t))
    }
}

impl Source for ScheduledOnOffSource {
    fn start(&mut self) -> SourceOutput {
        match self.schedule.first() {
            Some(&(s, _)) => SourceOutput::wake_at(s),
            None => SourceOutput::none(),
        }
    }

    fn on_wake(&mut self, now: f64) -> SourceOutput {
        if let Some((_, end)) = self.active_at(now) {
            self.seq += 1;
            let pkt = Packet::new(pkt_id(self.flow, self.seq), self.flow, self.len_bytes, now);
            let next = now + self.interval;
            let wake = if vtime::strictly_before(next, end) {
                Some(next)
            } else {
                self.next_start_after(now)
            };
            SourceOutput {
                packets: vec![pkt],
                wakes: wake.into_iter().collect(),
            }
        } else {
            match self.next_start_after(now) {
                Some(s) => SourceOutput::wake_at(s),
                None => SourceOutput::none(),
            }
        }
    }

    fn label(&self) -> String {
        format!("sched-{}", self.flow)
    }

    fn save_state(&self) -> Result<Value, SnapError> {
        Ok(Value::map(vec![
            ("kind", Value::Str("sched".to_owned())),
            ("flow", Value::U64(u64::from(self.flow))),
            ("len_bytes", Value::U64(u64::from(self.len_bytes))),
            ("interval", Value::F64(self.interval)),
            (
                "schedule",
                Value::List(
                    self.schedule
                        .iter()
                        .map(|&(s, e)| Value::List(vec![Value::F64(s), Value::F64(e)]))
                        .collect(),
                ),
            ),
            ("seq", Value::U64(self.seq)),
        ]))
    }
}

impl ScheduledOnOffSource {
    fn load(v: &Value) -> Result<Self, SnapError> {
        let mut schedule = Vec::new();
        for iv in v.get("schedule")?.items()? {
            let pair = iv.items()?;
            if pair.len() != 2 {
                return Err(SnapError {
                    at: 0,
                    what: format!("schedule interval has {} fields, expected 2", pair.len()),
                });
            }
            schedule.push((pair[0].as_f64()?, pair[1].as_f64()?));
        }
        Ok(ScheduledOnOffSource {
            flow: v.get("flow")?.as_u32()?,
            len_bytes: v.get("len_bytes")?.as_u32()?,
            interval: v.get("interval")?.as_f64()?,
            schedule,
            seq: v.get("seq")?.as_u64()?,
        })
    }
}

// ---------------------------------------------------------------------------

/// Poisson source: exponential inter-arrival times with mean matching
/// `rate_bps` (the paper's overloaded PS-n scenario sets `rate_bps` to 1.5×
/// the guaranteed rate).
#[derive(Debug)]
pub struct PoissonSource {
    flow: u32,
    len_bytes: u32,
    mean_interval: f64,
    start_time: f64,
    stop_time: f64,
    rng: SmallRng,
    seq: u64,
}

impl PoissonSource {
    /// A Poisson stream of `len_bytes` packets averaging `rate_bps`.
    pub fn new(
        flow: u32,
        len_bytes: u32,
        rate_bps: f64,
        start_time: f64,
        stop_time: f64,
        seed: u64,
    ) -> Self {
        assert!(rate_bps > 0.0);
        PoissonSource {
            flow,
            len_bytes,
            mean_interval: f64::from(len_bytes) * 8.0 / rate_bps,
            start_time,
            stop_time,
            rng: SmallRng::seed_from_u64(seed),
            seq: 0,
        }
    }

    fn exp_sample(&mut self) -> f64 {
        // Inverse-transform sampling; 1-u avoids ln(0).
        let u = self.rng.gen_f64();
        -(1.0 - u).ln() * self.mean_interval
    }
}

impl Source for PoissonSource {
    fn start(&mut self) -> SourceOutput {
        let first = self.start_time + self.exp_sample();
        SourceOutput::wake_at(first)
    }

    fn on_wake(&mut self, now: f64) -> SourceOutput {
        if now >= self.stop_time {
            return SourceOutput::none();
        }
        self.seq += 1;
        let pkt = Packet::new(pkt_id(self.flow, self.seq), self.flow, self.len_bytes, now);
        SourceOutput {
            packets: vec![pkt],
            wakes: vec![now + self.exp_sample()],
        }
    }

    fn label(&self) -> String {
        format!("poisson-{}", self.flow)
    }

    fn save_state(&self) -> Result<Value, SnapError> {
        Ok(Value::map(vec![
            ("kind", Value::Str("poisson".to_owned())),
            ("flow", Value::U64(u64::from(self.flow))),
            ("len_bytes", Value::U64(u64::from(self.len_bytes))),
            ("mean_interval", Value::F64(self.mean_interval)),
            ("start_time", Value::F64(self.start_time)),
            ("stop_time", Value::F64(self.stop_time)),
            (
                "rng",
                Value::List(self.rng.state().iter().map(|&w| Value::U64(w)).collect()),
            ),
            ("seq", Value::U64(self.seq)),
        ]))
    }
}

impl PoissonSource {
    fn load(v: &Value) -> Result<Self, SnapError> {
        let words = v.get("rng")?.items()?;
        if words.len() != 4 {
            return Err(SnapError {
                at: 0,
                what: format!("rng state has {} words, expected 4", words.len()),
            });
        }
        let mut s = [0u64; 4];
        for (slot, w) in s.iter_mut().zip(words) {
            *slot = w.as_u64()?;
        }
        Ok(PoissonSource {
            flow: v.get("flow")?.as_u32()?,
            len_bytes: v.get("len_bytes")?.as_u32()?,
            mean_interval: v.get("mean_interval")?.as_f64()?,
            start_time: v.get("start_time")?.as_f64()?,
            stop_time: v.get("stop_time")?.as_f64()?,
            rng: SmallRng::from_state(s),
            seq: v.get("seq")?.as_u64()?,
        })
    }
}

// ---------------------------------------------------------------------------

/// Packet-train source (the paper's CS-n sessions): every `period`, a burst
/// of `burst_len` packets spaced `intra_gap` apart — "the sort of packet
/// train burst that could be sent by individual users and/or networks with
/// high speed connections" (§5.1), produced there by multiplexing constant
/// sources.
#[derive(Debug, Clone)]
pub struct PacketTrainSource {
    flow: u32,
    len_bytes: u32,
    burst_len: u32,
    intra_gap: f64,
    period: f64,
    start_time: f64,
    stop_time: f64,
    seq: u64,
    in_burst: u32,
}

impl PacketTrainSource {
    /// Bursts of `burst_len` packets every `period` seconds.
    pub fn new(
        flow: u32,
        len_bytes: u32,
        burst_len: u32,
        intra_gap: f64,
        period: f64,
        start_time: f64,
        stop_time: f64,
    ) -> Self {
        assert!(burst_len > 0 && period > 0.0 && intra_gap >= 0.0);
        assert!(
            intra_gap * f64::from(burst_len) < period,
            "burst must fit in the period"
        );
        PacketTrainSource {
            flow,
            len_bytes,
            burst_len,
            intra_gap,
            period,
            start_time,
            stop_time,
            seq: 0,
            in_burst: 0,
        }
    }
}

impl Source for PacketTrainSource {
    fn start(&mut self) -> SourceOutput {
        SourceOutput::wake_at(self.start_time)
    }

    fn on_wake(&mut self, now: f64) -> SourceOutput {
        if now >= self.stop_time {
            return SourceOutput::none();
        }
        self.seq += 1;
        let pkt = Packet::new(pkt_id(self.flow, self.seq), self.flow, self.len_bytes, now);
        self.in_burst += 1;
        let wake = if self.in_burst < self.burst_len {
            if self.intra_gap > 0.0 {
                now + self.intra_gap
            } else {
                now // zero gap: back-to-back arrivals at the same instant
            }
        } else {
            self.in_burst = 0;
            let elapsed_bursts = ((now - self.start_time) / self.period).floor() + 1.0;
            self.start_time + elapsed_bursts * self.period
        };
        SourceOutput {
            packets: vec![pkt],
            wakes: vec![wake],
        }
    }

    fn label(&self) -> String {
        format!("train-{}", self.flow)
    }

    fn save_state(&self) -> Result<Value, SnapError> {
        Ok(Value::map(vec![
            ("kind", Value::Str("train".to_owned())),
            ("flow", Value::U64(u64::from(self.flow))),
            ("len_bytes", Value::U64(u64::from(self.len_bytes))),
            ("burst_len", Value::U64(u64::from(self.burst_len))),
            ("intra_gap", Value::F64(self.intra_gap)),
            ("period", Value::F64(self.period)),
            ("start_time", Value::F64(self.start_time)),
            ("stop_time", Value::F64(self.stop_time)),
            ("seq", Value::U64(self.seq)),
            ("in_burst", Value::U64(u64::from(self.in_burst))),
        ]))
    }
}

impl PacketTrainSource {
    fn load(v: &Value) -> Result<Self, SnapError> {
        Ok(PacketTrainSource {
            flow: v.get("flow")?.as_u32()?,
            len_bytes: v.get("len_bytes")?.as_u32()?,
            burst_len: v.get("burst_len")?.as_u32()?,
            intra_gap: v.get("intra_gap")?.as_f64()?,
            period: v.get("period")?.as_f64()?,
            start_time: v.get("start_time")?.as_f64()?,
            stop_time: v.get("stop_time")?.as_f64()?,
            seq: v.get("seq")?.as_u64()?,
            in_burst: v.get("in_burst")?.as_u32()?,
        })
    }
}

// ---------------------------------------------------------------------------

/// Greedy leaky-bucket source: the worst-case `(σ, ρ)`-constrained arrival
/// pattern — a burst of `σ` bytes at the start, then CBR at `ρ`. Used by
/// the delay-bound experiments, whose Corollary-2 bound assumes exactly
/// this envelope (eq. 17).
#[derive(Debug, Clone)]
pub struct GreedyLbSource {
    flow: u32,
    len_bytes: u32,
    sigma_bytes: u32,
    rho_bps: f64,
    start_time: f64,
    stop_time: f64,
    seq: u64,
    burst_sent: bool,
}

impl GreedyLbSource {
    /// A greedy `(sigma_bytes, rho_bps)` source of `len_bytes` packets.
    pub fn new(
        flow: u32,
        len_bytes: u32,
        sigma_bytes: u32,
        rho_bps: f64,
        start_time: f64,
        stop_time: f64,
    ) -> Self {
        assert!(rho_bps > 0.0 && len_bytes > 0 && sigma_bytes >= len_bytes);
        GreedyLbSource {
            flow,
            len_bytes,
            sigma_bytes,
            rho_bps,
            start_time,
            stop_time,
            seq: 0,
            burst_sent: false,
        }
    }
}

impl Source for GreedyLbSource {
    fn start(&mut self) -> SourceOutput {
        SourceOutput::wake_at(self.start_time)
    }

    fn on_wake(&mut self, now: f64) -> SourceOutput {
        if now >= self.stop_time {
            return SourceOutput::none();
        }
        if !self.burst_sent {
            self.burst_sent = true;
            let n = self.sigma_bytes / self.len_bytes;
            let packets = (0..n)
                .map(|_| {
                    self.seq += 1;
                    Packet::new(pkt_id(self.flow, self.seq), self.flow, self.len_bytes, now)
                })
                .collect();
            return SourceOutput {
                packets,
                wakes: vec![now + f64::from(self.len_bytes) * 8.0 / self.rho_bps],
            };
        }
        self.seq += 1;
        let pkt = Packet::new(pkt_id(self.flow, self.seq), self.flow, self.len_bytes, now);
        SourceOutput {
            packets: vec![pkt],
            wakes: vec![now + f64::from(self.len_bytes) * 8.0 / self.rho_bps],
        }
    }

    fn label(&self) -> String {
        format!("lb-{}", self.flow)
    }

    fn save_state(&self) -> Result<Value, SnapError> {
        Ok(Value::map(vec![
            ("kind", Value::Str("lb".to_owned())),
            ("flow", Value::U64(u64::from(self.flow))),
            ("len_bytes", Value::U64(u64::from(self.len_bytes))),
            ("sigma_bytes", Value::U64(u64::from(self.sigma_bytes))),
            ("rho_bps", Value::F64(self.rho_bps)),
            ("start_time", Value::F64(self.start_time)),
            ("stop_time", Value::F64(self.stop_time)),
            ("seq", Value::U64(self.seq)),
            ("burst_sent", Value::Bool(self.burst_sent)),
        ]))
    }
}

impl GreedyLbSource {
    fn load(v: &Value) -> Result<Self, SnapError> {
        Ok(GreedyLbSource {
            flow: v.get("flow")?.as_u32()?,
            len_bytes: v.get("len_bytes")?.as_u32()?,
            sigma_bytes: v.get("sigma_bytes")?.as_u32()?,
            rho_bps: v.get("rho_bps")?.as_f64()?,
            start_time: v.get("start_time")?.as_f64()?,
            stop_time: v.get("stop_time")?.as_f64()?,
            seq: v.get("seq")?.as_u64()?,
            burst_sent: v.get("burst_sent")?.as_bool()?,
        })
    }
}

// ---------------------------------------------------------------------------

/// Replays an explicit `(time, len_bytes)` trace.
#[derive(Debug, Clone)]
pub struct TraceSource {
    flow: u32,
    /// Remaining `(time, len)` entries, in time order (reversed for pop).
    entries: Vec<(f64, u32)>,
    seq: u64,
}

impl TraceSource {
    /// A source emitting exactly `entries` (must be sorted by time).
    pub fn new(flow: u32, mut entries: Vec<(f64, u32)>) -> Self {
        for w in entries.windows(2) {
            assert!(w[0].0 <= w[1].0, "trace must be sorted by time");
        }
        entries.reverse();
        TraceSource {
            flow,
            entries,
            seq: 0,
        }
    }
}

impl Source for TraceSource {
    fn start(&mut self) -> SourceOutput {
        match self.entries.last() {
            Some(&(t, _)) => SourceOutput::wake_at(t),
            None => SourceOutput::none(),
        }
    }

    fn on_wake(&mut self, now: f64) -> SourceOutput {
        let mut out = SourceOutput::none();
        while let Some(&(t, len)) = self.entries.last() {
            if vtime::approx_le(t, now) {
                self.entries.pop();
                self.seq += 1;
                out.packets.push(Packet::new(
                    pkt_id(self.flow, self.seq),
                    self.flow,
                    len,
                    now,
                ));
            } else {
                out.wakes.push(t);
                break;
            }
        }
        out
    }

    fn label(&self) -> String {
        format!("trace-{}", self.flow)
    }

    fn save_state(&self) -> Result<Value, SnapError> {
        Ok(Value::map(vec![
            ("kind", Value::Str("trace".to_owned())),
            ("flow", Value::U64(u64::from(self.flow))),
            (
                "entries",
                Value::List(
                    self.entries
                        .iter()
                        .map(|&(t, len)| {
                            Value::List(vec![Value::F64(t), Value::U64(u64::from(len))])
                        })
                        .collect(),
                ),
            ),
            ("seq", Value::U64(self.seq)),
        ]))
    }
}

impl TraceSource {
    fn load(v: &Value) -> Result<Self, SnapError> {
        // `entries` is saved in internal (reversed) order and restored
        // verbatim, bypassing `new()`'s sort check.
        let mut entries = Vec::new();
        for iv in v.get("entries")?.items()? {
            let pair = iv.items()?;
            if pair.len() != 2 {
                return Err(SnapError {
                    at: 0,
                    what: format!("trace entry has {} fields, expected 2", pair.len()),
                });
            }
            entries.push((pair[0].as_f64()?, pair[1].as_u32()?));
        }
        Ok(TraceSource {
            flow: v.get("flow")?.as_u32()?,
            entries,
            seq: v.get("seq")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(src: &mut dyn Source, horizon: f64) -> Vec<(f64, u64)> {
        // Minimal wake-loop harness for source unit tests. Wake times are
        // kept as exact f64 values (as the real simulator does): any
        // quantization here can make a source re-observe an instant just
        // before its scheduled wake and loop forever.
        let out = src.start();
        assert!(out.packets.is_empty(), "start() must not emit packets");
        let mut wakes: Vec<f64> = out.wakes;
        let mut emitted = Vec::new();
        let mut guard = 0u32;
        while !wakes.is_empty() {
            let Some((i, _)) = wakes.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)) else {
                break; // unreachable: the loop condition holds wakes non-empty
            };
            let t = wakes.swap_remove(i);
            if t > horizon {
                break;
            }
            guard += 1;
            assert!(guard < 1_000_000, "source wake loop ran away");
            let out = src.on_wake(t);
            for p in out.packets {
                emitted.push((t, p.id));
            }
            wakes.extend(out.wakes);
        }
        emitted
    }

    #[test]
    fn cbr_spacing() {
        // 1000 bytes at 8 kbit/s => one packet per second.
        let mut s = CbrSource::new(1, 1000, 8000.0, 0.5, 100.0);
        let pkts = drain(&mut s, 5.0);
        assert_eq!(pkts.len(), 5);
        for (i, &(t, _)) in pkts.iter().enumerate() {
            assert!((t - (0.5 + i as f64)).abs() < 1e-6);
        }
    }

    #[test]
    fn periodic_onoff_duty_cycle() {
        // 25 ms on / 75 ms off starting at 200 ms, peak 3.2 Mbit/s with
        // 1000-byte packets => 8000 bits / 3.2e6 = 2.5 ms per packet =>
        // 10 packets per burst.
        let mut s = PeriodicOnOffSource::new(2, 1000, 3.2e6, 0.025, 0.1, 0.2, 10.0);
        let pkts = drain(&mut s, 0.4999);
        // Bursts at 200 and 300 and 400 ms: 3 bursts of 10.
        assert_eq!(pkts.len(), 30);
        assert!((pkts[0].0 - 0.2).abs() < 1e-9);
        assert!((pkts[10].0 - 0.3).abs() < 1e-6);
        // No packet in an off phase.
        for &(t, _) in &pkts {
            let phase = (t - 0.2).rem_euclid(0.1);
            assert!(phase < 0.025 + 1e-9, "packet at {t} in off phase");
        }
    }

    #[test]
    fn scheduled_onoff_respects_schedule() {
        let mut s = ScheduledOnOffSource::new(3, 1000, 8000.0, vec![(1.0, 3.0), (5.0, 6.0)]);
        let pkts = drain(&mut s, 10.0);
        for &(t, _) in &pkts {
            assert!(
                (1.0 - 1e-9..3.0).contains(&t) || (5.0 - 1e-9..6.0).contains(&t),
                "packet at {t} outside schedule"
            );
        }
        // Interval 1: t=1,2 (packet at 3.0 would end outside); interval 2:
        // t=5.
        assert_eq!(pkts.len(), 3);
    }

    #[test]
    fn poisson_mean_rate() {
        let mut s = PoissonSource::new(4, 1000, 8000.0, 0.0, 1e9, 42);
        let pkts = drain(&mut s, 2000.0);
        // Expect ~2000 packets (one per second on average); 3 sigma ≈ 134.
        assert!(
            (pkts.len() as f64 - 2000.0).abs() < 200.0,
            "{} packets",
            pkts.len()
        );
    }

    #[test]
    fn packet_train_bursts() {
        let mut s = PacketTrainSource::new(5, 1000, 4, 0.001, 0.193, 0.0, 10.0);
        let pkts = drain(&mut s, 0.4);
        // Bursts at 0, 0.193, 0.386 => 12 packets.
        assert_eq!(pkts.len(), 12);
        assert!((pkts[3].0 - 0.003).abs() < 1e-9);
        assert!((pkts[4].0 - 0.193).abs() < 1e-9);
    }

    #[test]
    fn greedy_lb_burst_then_rate() {
        let mut s = GreedyLbSource::new(6, 100, 500, 800.0, 0.0, 100.0);
        let pkts = drain(&mut s, 3.0);
        // Burst of 5 at t=0, then 1 packet per second (800 bits at 800
        // bps).
        assert_eq!(pkts.len(), 8);
        for p in &pkts[..5] {
            assert_eq!(p.0, 0.0);
        }
        assert!((pkts[5].0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_replay() {
        let mut s = TraceSource::new(7, vec![(0.5, 100), (0.5, 200), (2.0, 300)]);
        let pkts = drain(&mut s, 10.0);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].0, 0.5);
        assert_eq!(pkts[1].0, 0.5);
        assert_eq!(pkts[2].0, 2.0);
    }
}
