//! Deterministic parallel execution of a multi-link [`Network`]:
//! conservative epochs over sharded links.
//!
//! # Model
//!
//! Links are assigned round-robin to `n` shards; each shard owns its
//! links' hierarchies, the sources whose **first hop** is on one of them,
//! and a private [`hpfq_events::Engine`]. Shards advance in lock-step
//! *epochs* `[T, T + W)` where the lookahead `W` is the minimum
//! propagation delay across *inter-shard* edges: hop-to-hop handoffs
//! whose two links live on different shards, and last-hop-to-source
//! delivery edges whose shards differ. Within an epoch a shard pops only
//! events with `t < T + W`; any event it produces for another shard is at
//! least `W` in the future (every cross-shard event — `Arrive`,
//! `Deliver`, `Detach` — travels a propagation edge), so it cannot land
//! inside the epoch that produced it. Outbound events are buffered per
//! shard and exchanged at a barrier; each shard then schedules its inbox
//! in `(time, minor-key, sender, sender-sequence)` order and all shards
//! agree on the next epoch start: the global minimum pending event time
//! (jumping over empty windows keeps the epoch count proportional to
//! event density, not to `horizon / W`).
//!
//! # Determinism argument
//!
//! The sequential run orders same-time events by `(minor key, global
//! scheduling sequence)`; minor keys are content-derived
//! ([`crate::network::minor_of`]) and collide only for events with
//! identical content streams (same packet id, same timer owner), whose
//! relative FIFO order is itself content-determined. A shard therefore
//! pops the events *of its links* in exactly the order the sequential
//! engine would have popped them, provided every event reaches the right
//! engine before its epoch — which the conservative window guarantees.
//! Handlers are the *same code* in both modes ([`Network::handle`]) and
//! mutate only shard-owned state (routing sends every event to the shard
//! owning the link it mutates; the one cross-shard read — a removed
//! flow's liveness — was converted into the explicitly propagated
//! `Detach`/`Deliver` events). Ledgers, traces, stats, and escalation
//! state merge losslessly, so the merged result is bit-identical to the
//! sequential run. The golden oracle in `tests/parallel_determinism.rs`
//! holds this to byte equality for n ∈ {1, 2, 4}.
//!
//! # Fallback
//!
//! Some configurations cannot be sharded without changing observable
//! behaviour; [`Network::run_parallel`] then runs sequentially and says
//! so in the returned [`ParallelReport`]:
//!
//! * fewer than two links (nothing to parallelise);
//! * a zero (or negative) lookahead — some inter-shard edge has no
//!   propagation delay, so no conservative window exists (the degenerate
//!   case the epoch tests pin: fall back, never deadlock);
//! * an installed [`crate::FaultInjector`] (a single stateful object
//!   consulted from every shard would race);
//! * a halt-capable escalation policy (halting is an instantaneous
//!   global effect with no propagation delay to hide behind).

use std::sync::{Barrier, Mutex};

use hpfq_core::NodeScheduler;
use hpfq_events::Engine;
use hpfq_obs::{EpochSpan, Observer, SpanKind, SpanProfiler};

use crate::network::{NetEvent, Network, OutMsg, ShardCtx, SourceSlot};
use crate::stats::SimStats;

/// Why [`Network::run_parallel`] executed sequentially instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Fewer than two links, or one shard requested.
    SingleShard,
    /// An inter-shard edge has zero (or negative) propagation delay:
    /// there is no conservative lookahead window.
    ZeroLookahead,
    /// A [`crate::FaultInjector`] is installed; its single mutable state
    /// cannot be consulted from concurrent shards deterministically.
    InjectorInstalled,
    /// The escalation policy can halt the run — an instantaneous global
    /// transition incompatible with conservative windows.
    HaltCapablePolicy,
    /// [`Network::run_permuted`] was given an empty order list or an
    /// entry that is not a permutation of `0..shards`.
    InvalidOrders,
}

/// What [`Network::run_parallel`] actually did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelReport {
    /// Shards that executed (1 on fallback).
    pub shards: usize,
    /// Conservative epochs run (0 on fallback).
    pub epochs: u64,
    /// Epoch width in seconds (`f64::INFINITY` when no route crosses
    /// shards; unset on fallback).
    pub lookahead: f64,
    /// Why the run fell back to sequential execution, if it did.
    pub fallback: Option<FallbackReason>,
}

/// One cross-shard message in flight between epochs, tagged for
/// deterministic inbox ordering.
struct Envelope {
    t: f64,
    minor: u64,
    sender: usize,
    seq: usize,
    ev: NetEvent,
}

/// Locks `m`, tolerating poisoning: mailbox contents are plain data and a
/// panicked peer worker already propagates its panic through the scope, so
/// continuing with the inner value never observes broken invariants.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<S: NodeScheduler + Send, O: Observer + Send> Network<S, O> {
    /// Runs the simulation to `horizon` on up to `shards` worker threads,
    /// producing results byte-identical to [`Network::run`]`(horizon)`.
    /// Falls back to the sequential loop (and reports why) when the
    /// configuration cannot be sharded conservatively.
    pub fn run_parallel(&mut self, horizon: f64, shards: usize) -> ParallelReport {
        let requested = shards.clamp(1, self.links.len().max(1));
        let fallback = |reason| ParallelReport {
            shards: 1,
            epochs: 0,
            lookahead: 0.0,
            fallback: Some(reason),
        };
        if requested < 2 || self.links.len() < 2 {
            self.run(horizon);
            return fallback(FallbackReason::SingleShard);
        }
        if self.injector.is_some() {
            self.run(horizon);
            return fallback(FallbackReason::InjectorInstalled);
        }
        if self.policy.halt_after != u32::MAX {
            self.run(horizon);
            return fallback(FallbackReason::HaltCapablePolicy);
        }
        if self.halted {
            return ParallelReport {
                shards: requested,
                epochs: 0,
                lookahead: 0.0,
                fallback: None,
            };
        }

        // Round-robin link → shard assignment: deterministic, and
        // balanced for the homogeneous-link topologies we shard.
        let link_shard: std::sync::Arc<Vec<usize>> =
            std::sync::Arc::new((0..self.links.len()).map(|i| i % requested).collect());
        let lookahead = self.lookahead_of(&link_shard);
        if lookahead <= 0.0 {
            self.run(horizon);
            return fallback(FallbackReason::ZeroLookahead);
        }

        // Sources not yet started emit their first timers here, on the
        // master, exactly as a sequential run would.
        self.start_pending_sources();

        let base_sources = self.sources.len();
        let mut workers = self.split(&link_shard, requested);

        let barrier = Barrier::new(requested);
        let mailboxes: Vec<Mutex<Vec<Envelope>>> =
            (0..requested).map(|_| Mutex::new(Vec::new())).collect();
        // Each shard's earliest pending event time after the exchange
        // (INFINITY = drained); slot `i` is written only by worker `i`
        // between the two barriers of an epoch.
        let next_times: Mutex<Vec<f64>> = Mutex::new(vec![0.0; requested]);
        let epochs = std::sync::atomic::AtomicU64::new(0);
        let start = self.engine.now();

        std::thread::scope(|scope| {
            for (sid, net) in workers.iter_mut().enumerate() {
                let barrier = &barrier;
                let mailboxes = &mailboxes;
                let next_times = &next_times;
                let epochs = &epochs;
                scope.spawn(move || {
                    let n = run_shard(
                        net, sid, start, horizon, lookahead, barrier, mailboxes, next_times,
                    );
                    if sid == 0 {
                        epochs.store(n, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });

        if SpanProfiler::ENABLED {
            self.profiler.span_enter(SpanKind::Merge);
        }
        self.merge(workers, &link_shard, base_sources);
        if SpanProfiler::ENABLED {
            self.profiler.span_exit(SpanKind::Merge);
        }
        ParallelReport {
            shards: requested,
            epochs: epochs.load(std::sync::atomic::Ordering::Relaxed),
            lookahead,
            fallback: None,
        }
    }

    /// Replays the conservative-epoch protocol **single-threaded** under
    /// an explicit per-epoch shard commit order, producing results
    /// byte-identical to [`Network::run`]`(horizon)`.
    ///
    /// This is the schedule-permutation half of the determinism oracle:
    /// [`Network::run_parallel`] exercises whichever interleaving the OS
    /// scheduler happens to produce, while this harness pins *every*
    /// interleaving the protocol admits. Epoch `e` executes shards —
    /// compute phase, then outbox commit into the mailboxes — in the
    /// order `orders[e % orders.len()]`. Committing whole outboxes in a
    /// permuted shard order subsumes the threaded version's
    /// per-envelope mutex interleavings: the canonical
    /// `(t, minor, sender, seq)` inbox sort is insensitive to arrival
    /// order within a mailbox, so any finer interleaving sorts to the
    /// same inbox the coarse one does. A caller that drives this over
    /// all `shards!` permutations (plus per-epoch rotations) has
    /// therefore checked every commit schedule the barrier protocol can
    /// produce.
    ///
    /// Falls back exactly like [`Network::run_parallel`], plus
    /// [`FallbackReason::InvalidOrders`] when `orders` is empty or an
    /// entry is not a permutation of `0..shards`.
    pub fn run_permuted(
        &mut self,
        horizon: f64,
        shards: usize,
        orders: &[Vec<usize>],
    ) -> ParallelReport {
        let requested = shards.clamp(1, self.links.len().max(1));
        let fallback = |reason| ParallelReport {
            shards: 1,
            epochs: 0,
            lookahead: 0.0,
            fallback: Some(reason),
        };
        if requested < 2 || self.links.len() < 2 {
            self.run(horizon);
            return fallback(FallbackReason::SingleShard);
        }
        if self.injector.is_some() {
            self.run(horizon);
            return fallback(FallbackReason::InjectorInstalled);
        }
        if self.policy.halt_after != u32::MAX {
            self.run(horizon);
            return fallback(FallbackReason::HaltCapablePolicy);
        }
        let is_perm = |o: &Vec<usize>| {
            let mut seen = vec![false; requested];
            o.len() == requested
                && o.iter()
                    .all(|&s| s < requested && !std::mem::replace(&mut seen[s], true))
        };
        if orders.is_empty() || !orders.iter().all(is_perm) {
            self.run(horizon);
            return fallback(FallbackReason::InvalidOrders);
        }
        if self.halted {
            return ParallelReport {
                shards: requested,
                epochs: 0,
                lookahead: 0.0,
                fallback: None,
            };
        }

        let link_shard: std::sync::Arc<Vec<usize>> =
            std::sync::Arc::new((0..self.links.len()).map(|i| i % requested).collect());
        let lookahead = self.lookahead_of(&link_shard);
        if lookahead <= 0.0 {
            self.run(horizon);
            return fallback(FallbackReason::ZeroLookahead);
        }
        self.start_pending_sources();
        let base_sources = self.sources.len();
        let mut workers = self.split(&link_shard, requested);
        let start = self.engine.now();

        let mut mailboxes: Vec<Vec<Envelope>> = (0..requested).map(|_| Vec::new()).collect();
        let mut next_times = vec![0.0f64; requested];
        let mut send_seq = vec![0usize; requested];
        let mut t_start = start;
        let mut epochs = 0u64;
        loop {
            let order = &orders[(epochs as usize) % orders.len()];
            epochs += 1;
            let epoch_end = t_start + lookahead;
            // Compute phase + outbox commit, one shard at a time in the
            // permuted order. Mailboxes are only written here and only
            // read after the phase completes — the sequential analogue
            // of the first barrier in `run_shard`.
            for &sid in order {
                let net = &mut workers[sid];
                net.engine.advance_to(t_start);
                let mut handled = 0u64;
                loop {
                    let due = if epoch_end <= horizon {
                        net.engine.pop_strictly_before(epoch_end)
                    } else {
                        net.engine.pop_due(horizon)
                    };
                    let Some((t, ev)) = due else { break };
                    net.handle(t, ev);
                    handled += 1;
                }
                if net.record_epochs {
                    net.epoch_log.push(EpochSpan {
                        shard: sid,
                        t0: t_start,
                        t1: epoch_end.min(horizon),
                        events: handled,
                    });
                }
                if let Some(ctx) = net.shard.as_mut() {
                    for OutMsg { dest, t, minor, ev } in ctx.outbox.drain(..) {
                        send_seq[sid] += 1;
                        mailboxes[dest].push(Envelope {
                            t,
                            minor,
                            sender: sid,
                            seq: send_seq[sid],
                            ev,
                        });
                    }
                }
            }
            // Delivery phase: every outbox is committed, so each inbox
            // is complete — sort it canonically and feed the engine,
            // then publish each shard's next pending event time (the
            // sequential analogue of the second barrier).
            for &sid in order {
                let mut inbox = std::mem::take(&mut mailboxes[sid]);
                inbox.sort_by(|a, b| {
                    a.t.total_cmp(&b.t)
                        .then(a.minor.cmp(&b.minor))
                        .then(a.sender.cmp(&b.sender))
                        .then(a.seq.cmp(&b.seq))
                });
                let net = &mut workers[sid];
                for env in inbox {
                    net.engine.schedule_keyed(env.t, env.minor, env.ev);
                }
                next_times[sid] = net.engine.peek_time().unwrap_or(f64::INFINITY);
            }
            let global_next = next_times
                .iter()
                .fold(f64::INFINITY, |m, &t| if t < m { t } else { m });
            if !global_next.is_finite() || global_next > horizon {
                break;
            }
            t_start = global_next;
        }

        if SpanProfiler::ENABLED {
            self.profiler.span_enter(SpanKind::Merge);
        }
        self.merge(workers, &link_shard, base_sources);
        if SpanProfiler::ENABLED {
            self.profiler.span_exit(SpanKind::Merge);
        }
        ParallelReport {
            shards: requested,
            epochs,
            lookahead,
            fallback: None,
        }
    }

    /// Minimum propagation delay over inter-shard edges: consecutive route
    /// hops on different shards, and final-hop delivery edges back to a
    /// source owned by a different shard. `INFINITY` when no route
    /// crosses shards (a single epoch suffices).
    fn lookahead_of(&self, link_shard: &[usize]) -> f64 {
        let mut w = f64::INFINITY;
        for slot in &self.sources {
            let hops = &slot.route.hops;
            let owner = link_shard[hops[0].link];
            for pair in hops.windows(2) {
                if link_shard[pair[0].link] != link_shard[pair[1].link] && pair[0].prop_delay < w {
                    w = pair[0].prop_delay;
                }
            }
            if let Some(last) = hops.last() {
                if link_shard[last.link] != owner && last.prop_delay < w {
                    w = last.prop_delay;
                }
            }
        }
        w
    }

    /// Carves `self` into `n` shard networks: links and source boxes move
    /// to their owning shard, routing metadata is replicated, pending
    /// events are dealt out by [`Network::event_shard`]. The master keeps
    /// its accumulated stats/escalation/ledger history; shards start from
    /// clean accumulators that merge back exactly.
    fn split(&mut self, link_shard: &std::sync::Arc<Vec<usize>>, n: usize) -> Vec<Network<S, O>> {
        let now = self.engine.now();
        let pending = self.engine.drain_ordered();
        let mut workers: Vec<Network<S, O>> = (0..n)
            .map(|sid| {
                let mut stats = SimStats::new();
                for flow in self.stats.traced_flows() {
                    stats.trace_flow(flow);
                }
                let mut engine = Engine::new();
                engine.advance_to(now);
                Network {
                    links: Vec::new(),
                    engine,
                    sources: Vec::new(),
                    stats,
                    flow_owner: self.flow_owner.clone(),
                    injector: None,
                    policy: self.policy,
                    escalation: self.escalation.clone(),
                    halted: false,
                    inflight_bytes: 0,
                    command_errors: Vec::new(),
                    shard: Some(ShardCtx {
                        id: sid,
                        link_shard: std::sync::Arc::clone(link_shard),
                        outbox: Vec::new(),
                    }),
                    // Each worker times against its own base Instant;
                    // snapshots carry only durations, so merging them into
                    // the master is exact.
                    profiler: SpanProfiler::new(),
                    record_epochs: self.record_epochs,
                    epoch_log: Vec::new(),
                    shard_spans: Vec::new(),
                }
            })
            .collect();
        for (i, slot) in self.links.iter_mut().enumerate() {
            for (sid, w) in workers.iter_mut().enumerate() {
                w.links.push(if link_shard[i] == sid {
                    slot.take()
                } else {
                    None
                });
            }
        }
        for slot in &mut self.sources {
            let owner = link_shard[slot.route.hops[0].link];
            for (sid, w) in workers.iter_mut().enumerate() {
                w.sources.push(SourceSlot {
                    src: if sid == owner { slot.src.take() } else { None },
                    route: slot.route.clone(),
                    flow: slot.flow,
                    live: slot.live,
                    started: slot.started,
                });
            }
        }
        for (t, minor, ev) in pending {
            let dest = self.event_shard(link_shard, &ev);
            workers[dest].engine.schedule_keyed(t, minor, ev);
        }
        workers
    }

    /// Reassembles the master from finished shards. Every merge below is
    /// exact — see the field-by-field arguments at the merge sites.
    fn merge(&mut self, workers: Vec<Network<S, O>>, link_shard: &[usize], base_sources: usize) {
        let mut leftovers: Vec<(f64, u64, usize, usize, NetEvent)> = Vec::new();
        let mut errors: Vec<(f64, usize, hpfq_core::HpfqError)> = Vec::new();
        let mut max_now = self.engine.now();
        self.shard_spans.clear();
        for (sid, mut w) in workers.into_iter().enumerate() {
            // Wall-clock spans fold into the master aggregate and are also
            // kept per shard; epoch windows (simulation time) append in
            // shard-major order.
            if SpanProfiler::ENABLED {
                let snap = w.profiler.snapshot();
                self.profiler.absorb(&snap);
                self.shard_spans.push(snap);
            }
            self.epoch_log.append(&mut w.epoch_log);
            // Links move back whole: ledger, hierarchy, observer state and
            // all. Each was owned by exactly one shard.
            for (i, slot) in w.links.iter_mut().enumerate() {
                if link_shard[i] == sid {
                    self.links[i] = slot.take();
                }
            }
            for (i, slot) in w.sources.iter_mut().enumerate() {
                if i >= base_sources {
                    // A flow added mid-run. AddFlow executes only on the
                    // shard owning link 0, which therefore holds the only
                    // real (non-replica) slot at each appended index, in
                    // order — so indices line up with a plain push.
                    if slot.src.is_some() && i == self.sources.len() {
                        self.sources.push(SourceSlot {
                            src: slot.src.take(),
                            route: slot.route.clone(),
                            flow: slot.flow,
                            live: slot.live,
                            started: slot.started,
                        });
                    }
                    continue;
                }
                if slot.src.is_some() {
                    // Owner shard: its liveness/started flags are the
                    // authoritative ones.
                    self.sources[i].src = slot.src.take();
                    self.sources[i].live = slot.live;
                    self.sources[i].started = slot.started;
                }
            }
            // flow_owner only grows (AddFlow on link 0's shard); absorb
            // all entries.
            for (flow, idx) in std::mem::take(&mut w.flow_owner) {
                self.flow_owner.entry(flow).or_insert(idx);
            }
            // Exact counter/extremum merge (see SimStats::merge_from).
            self.stats.merge_from(std::mem::take(&mut w.stats));
            // Per-flow strikes advance on one shard only: max is exact.
            self.escalation.absorb_max(&w.escalation);
            // Signed per-shard deltas sum to the true in-flight count.
            self.inflight_bytes += w.inflight_bytes;
            for (t, e) in w.command_errors.drain(..) {
                errors.push((t, sid, e));
            }
            if w.engine.now() > max_now {
                max_now = w.engine.now();
            }
            for (idx, (t, minor, ev)) in w.engine.drain_ordered().into_iter().enumerate() {
                leftovers.push((t, minor, sid, idx, ev));
            }
        }
        // Post-horizon events go back into the master engine in global
        // `(time, minor, shard, shard-order)` order so a later sequential
        // or parallel segment continues deterministically.
        leftovers.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
        self.engine.advance_to(max_now);
        for (t, minor, _, _, ev) in leftovers {
            self.engine.schedule_keyed(t, minor, ev);
        }
        errors.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.command_errors
            .extend(errors.into_iter().map(|(t, _, e)| (t, e)));
    }
}

/// The per-shard epoch loop. Returns the number of epochs executed.
#[allow(clippy::too_many_arguments)]
fn run_shard<S: NodeScheduler + Send, O: Observer + Send>(
    net: &mut Network<S, O>,
    sid: usize,
    start: f64,
    horizon: f64,
    lookahead: f64,
    barrier: &Barrier,
    mailboxes: &[Mutex<Vec<Envelope>>],
    next_times: &Mutex<Vec<f64>>,
) -> u64 {
    let mut t_start = start;
    let mut epochs = 0u64;
    let mut send_seq = 0usize;
    loop {
        epochs += 1;
        let epoch_end = t_start + lookahead;
        net.engine.advance_to(t_start);
        // Drain this shard's events due inside the window (and horizon):
        // strictly before the epoch boundary, inclusively at the horizon
        // (matching the sequential loop's `pop_due` semantics there).
        if SpanProfiler::ENABLED {
            net.profiler.span_enter(SpanKind::EpochCompute);
        }
        let mut handled = 0u64;
        loop {
            let due = if epoch_end <= horizon {
                net.engine.pop_strictly_before(epoch_end)
            } else {
                net.engine.pop_due(horizon)
            };
            let Some((t, ev)) = due else { break };
            net.handle(t, ev);
            handled += 1;
        }
        if SpanProfiler::ENABLED {
            net.profiler.span_exit(SpanKind::EpochCompute);
        }
        if net.record_epochs {
            net.epoch_log.push(EpochSpan {
                shard: sid,
                t0: t_start,
                t1: epoch_end.min(horizon),
                events: handled,
            });
        }
        // Post everything produced for other shards. `send_seq` keeps the
        // producing order so identical `(t, minor)` envelopes from one
        // sender stay FIFO after the inbox sort.
        if SpanProfiler::ENABLED {
            net.profiler.span_enter(SpanKind::Exchange);
        }
        if let Some(ctx) = net.shard.as_mut() {
            for OutMsg { dest, t, minor, ev } in ctx.outbox.drain(..) {
                send_seq += 1;
                lock_clean(&mailboxes[dest]).push(Envelope {
                    t,
                    minor,
                    sender: sid,
                    seq: send_seq,
                    ev,
                });
            }
        }
        if SpanProfiler::ENABLED {
            net.profiler.span_exit(SpanKind::Exchange);
        }
        if SpanProfiler::ENABLED {
            net.profiler.span_enter(SpanKind::BarrierWait);
        }
        barrier.wait();
        if SpanProfiler::ENABLED {
            net.profiler.span_exit(SpanKind::BarrierWait);
        }
        // All inboxes are complete now: take mine, order it canonically,
        // feed the engine.
        if SpanProfiler::ENABLED {
            net.profiler.span_enter(SpanKind::Exchange);
        }
        let mut inbox = std::mem::take(&mut *lock_clean(&mailboxes[sid]));
        inbox.sort_by(|a, b| {
            a.t.total_cmp(&b.t)
                .then(a.minor.cmp(&b.minor))
                .then(a.sender.cmp(&b.sender))
                .then(a.seq.cmp(&b.seq))
        });
        for env in inbox {
            net.engine.schedule_keyed(env.t, env.minor, env.ev);
        }
        if SpanProfiler::ENABLED {
            net.profiler.span_exit(SpanKind::Exchange);
        }
        lock_clean(next_times)[sid] = net.engine.peek_time().unwrap_or(f64::INFINITY);
        if SpanProfiler::ENABLED {
            net.profiler.span_enter(SpanKind::BarrierWait);
        }
        barrier.wait();
        if SpanProfiler::ENABLED {
            net.profiler.span_exit(SpanKind::BarrierWait);
        }
        // Every shard computes the same next epoch start from the same
        // published vector; no third barrier is needed because slot `sid`
        // is only rewritten after the *next* exchange barrier.
        let global_next =
            lock_clean(next_times)
                .iter()
                .fold(f64::INFINITY, |m, &t| if t < m { t } else { m });
        if !global_next.is_finite() || global_next > horizon {
            return epochs;
        }
        t_start = global_next;
    }
}
