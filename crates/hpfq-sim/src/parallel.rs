//! Deterministic parallel execution of a multi-link [`Network`]:
//! conservative epochs over sharded links, supervised by an epoch
//! checkpoint/rollback loop that contains shard crashes.
//!
//! # Model
//!
//! Links are assigned round-robin to `n` shards; each shard owns its
//! links' hierarchies, the sources whose **first hop** is on one of them,
//! and a private [`hpfq_events::Engine`]. Shards advance in lock-step
//! *epochs* `[T, T + W)` where the lookahead `W` is the minimum
//! propagation delay across *inter-shard* edges: hop-to-hop handoffs
//! whose two links live on different shards, and last-hop-to-source
//! delivery edges whose shards differ. Within an epoch a shard pops only
//! events with `t < T + W`; any event it produces for another shard is at
//! least `W` in the future (every cross-shard event — `Arrive`,
//! `Deliver`, `Detach` — travels a propagation edge), so it cannot land
//! inside the epoch that produced it. Outbound events are buffered per
//! shard and exchanged at a barrier; each shard then schedules its inbox
//! in `(time, minor-key, sender, sender-sequence)` order and all shards
//! agree on the next epoch start: the global minimum pending event time
//! (jumping over empty windows keeps the epoch count proportional to
//! event density, not to `horizon / W`).
//!
//! # Supervision (DESIGN.md §14)
//!
//! Epochs are grouped into **stints** of [`Network::set_stint_epochs`]
//! epochs. At each stint boundary the shards merge back into the master,
//! which refreshes its [`Network::snapshot`] **checkpoint** and re-splits.
//! Each worker's stint runs under `catch_unwind`; a panic poisons the
//! exchange barrier (a [`PhaseBarrier`] with a watchdog timeout, so a
//! dead peer produces a typed timeout instead of a hang) and the stint's
//! results are discarded: the supervisor restores the checkpoint and
//! retries the stint within a bounded budget, then escalates to a typed
//! halt ([`hpfq_obs::EscalationState::mark_halted`]). Every contained
//! failure is reported as a [`ShardFailure`] in the [`ParallelReport`].
//!
//! A halt demanded by the escalation ladder is an *instantaneous global*
//! transition with no propagation delay to hide behind, so a sharded
//! stint cannot reproduce its exact stopping point. Instead, when any
//! shard halts — or the merged quarantine roster crosses the policy's
//! `halt_after` threshold, which no single shard could see — the
//! supervisor rolls the stint back and replays the tail **sequentially**
//! from the checkpoint, reproducing the sequential halt byte-identically.
//!
//! An installed [`crate::FaultInjector`] shards by forking: each shard's
//! worker receives a [`crate::FaultInjector::fork_shard`] child owning
//! the per-flow decision streams of the flows whose ingress link it
//! owns, and the children's final states are absorbed back into the
//! parent at each stint boundary.
//!
//! # Determinism argument
//!
//! The sequential run orders same-time events by `(minor key, global
//! scheduling sequence)`; minor keys are content-derived
//! ([`crate::network::minor_of`]) and collide only for events with
//! identical content streams (same packet id, same timer owner), whose
//! relative FIFO order is itself content-determined. A shard therefore
//! pops the events *of its links* in exactly the order the sequential
//! engine would have popped them, provided every event reaches the right
//! engine before its epoch — which the conservative window guarantees.
//! Handlers are the *same code* in both modes ([`Network::handle`]) and
//! mutate only shard-owned state (routing sends every event to the shard
//! owning the link it mutates; the one cross-shard read — a removed
//! flow's liveness — was converted into the explicitly propagated
//! `Detach`/`Deliver` events). Ledgers, traces, stats, and escalation
//! state merge losslessly — in particular each flow's accumulator and
//! trace are *moved* to the shard owning its last hop at the split, so
//! the float-valued `delay_sum` keeps accumulating incrementally on its
//! single writer across stint boundaries — so the merged result is
//! bit-identical to the sequential run. The golden oracle in
//! `tests/parallel_determinism.rs` holds this to byte equality for
//! n ∈ {1, 2, 4}.
//!
//! # Fallback
//!
//! Some configurations cannot be sharded without changing observable
//! behaviour; [`Network::run_parallel`] then runs sequentially and says
//! so in the returned [`ParallelReport`]:
//!
//! * fewer than two links (nothing to parallelise);
//! * a zero (or negative) lookahead — some inter-shard edge has no
//!   propagation delay, so no conservative window exists (the degenerate
//!   case the epoch tests pin: fall back, never deadlock);
//! * an installed [`crate::FaultInjector`] whose
//!   [`crate::FaultInjector::fork_shard`] declines to split;
//! * a halt-capable escalation policy on a network that cannot be
//!   checkpointed — exact halt semantics require the rollback-and-replay
//!   path, which requires [`Network::snapshot`] to succeed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
// lint:allow(L007): the barrier watchdog measures wall-clock on purpose —
// a wedged peer never advances virtual time, so only host time can expose
// it. The reading feeds a typed failure, never simulation state.
use std::time::{Duration, Instant};

use hpfq_core::NodeScheduler;
use hpfq_events::Engine;
use hpfq_obs::snap::Value;
use hpfq_obs::{EpochSpan, Observer, SpanKind, SpanProfiler};

use crate::network::{FaultInjector, NetEvent, Network, OutMsg, ShardCtx, SourceSlot};
use crate::stats::SimStats;

/// Retries the supervisor grants one stint before declaring the failure
/// persistent and halting: the first attempt plus this many rollbacks.
const STINT_RETRY_BUDGET: u32 = 2;

/// Why [`Network::run_parallel`] executed sequentially instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Fewer than two links, or one shard requested.
    SingleShard,
    /// An inter-shard edge has zero (or negative) propagation delay:
    /// there is no conservative lookahead window.
    ZeroLookahead,
    /// The installed [`crate::FaultInjector`] declined to fork per-shard
    /// children ([`crate::FaultInjector::fork_shard`] returned `None`),
    /// so its decision streams cannot be split deterministically.
    InjectorUnsplittable,
    /// The escalation policy can halt the run — an instantaneous global
    /// transition reproduced by rolling back to a checkpoint and
    /// replaying sequentially — but [`Network::snapshot`] failed, so no
    /// checkpoint exists to replay from.
    Uncheckpointable,
    /// [`Network::run_permuted`] was given an empty order list or an
    /// entry that is not a permutation of `0..shards`.
    InvalidOrders,
}

/// One contained failure of a parallel worker, classified for the
/// [`ParallelReport`]. Each names the shard it struck and the global
/// epoch it struck at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFailure {
    /// The worker panicked; the payload's message is preserved.
    Panic {
        /// Shard whose worker panicked.
        shard: usize,
        /// Global epoch the worker had reached.
        epoch: u64,
        /// The panic payload, stringified.
        message: String,
    },
    /// The worker waited at the exchange barrier past the watchdog
    /// timeout ([`Network::set_watchdog`]): a peer died or wedged.
    BarrierTimeout {
        /// Shard whose wait timed out.
        shard: usize,
        /// Global epoch the worker had reached.
        epoch: u64,
    },
    /// The exchange barrier was poisoned by a failing peer; this worker
    /// abandoned its stint cleanly.
    BarrierPoisoned {
        /// Shard that observed the poisoned barrier.
        shard: usize,
        /// Global epoch the worker had reached.
        epoch: u64,
    },
    /// A shard's forked injector child could not be saved or folded back
    /// into the parent: the fault decision streams are desynchronized.
    InjectorDesync {
        /// Shard whose child failed to absorb.
        shard: usize,
        /// The underlying serialization error.
        detail: String,
    },
}

/// What [`Network::run_parallel`] actually did.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelReport {
    /// Shards that executed (1 on fallback).
    pub shards: usize,
    /// Conservative epochs committed (0 on fallback; epochs of a rolled
    /// back or halt-replayed stint do not count).
    pub epochs: u64,
    /// Epoch width in seconds (`f64::INFINITY` when no route crosses
    /// shards; unset on fallback).
    pub lookahead: f64,
    /// Why the run fell back to sequential execution, if it did.
    pub fallback: Option<FallbackReason>,
    /// Every contained shard failure, across all stint attempts. Failures
    /// that were rolled back and retried successfully still appear here —
    /// they are the containment record.
    pub failures: Vec<ShardFailure>,
    /// Checkpoint rollbacks performed (failed stints discarded).
    pub rollbacks: u64,
    /// Epoch checkpoints taken (initial plus per-stint refreshes).
    pub checkpoints: u64,
    /// A halt fired inside a sharded stint; the stint was rolled back and
    /// the tail replayed sequentially from the checkpoint.
    pub halt_replayed: bool,
}

impl ParallelReport {
    fn new(shards: usize) -> Self {
        ParallelReport {
            shards,
            epochs: 0,
            lookahead: 0.0,
            fallback: None,
            failures: Vec::new(),
            rollbacks: 0,
            checkpoints: 0,
            halt_replayed: false,
        }
    }

    fn sequential(reason: FallbackReason) -> Self {
        let mut r = ParallelReport::new(1);
        r.fallback = Some(reason);
        r
    }
}

/// One cross-shard message in flight between epochs, tagged for
/// deterministic inbox ordering.
struct Envelope {
    t: f64,
    minor: u64,
    sender: usize,
    seq: usize,
    ev: NetEvent,
}

/// How a worker's stint ended (identical across workers: every variant is
/// decided from state all shards agree on at an epoch boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StintEnd {
    /// The run is complete: no pending event at or before the horizon.
    Finished,
    /// The stint's epoch budget is spent; merge, checkpoint, re-split.
    CheckpointDue,
    /// Some shard's escalation ladder halted; the supervisor must roll
    /// back and replay the tail sequentially.
    Halted,
}

/// A successfully completed worker stint.
#[derive(Debug, Clone, Copy)]
struct StintResult {
    /// Epochs this stint executed (lock-step: equal across workers).
    epochs: u64,
    end: StintEnd,
}

/// Locks `m`, tolerating poisoning: mailbox contents are plain data and a
/// panicked peer worker is already reported through its own typed
/// [`ShardFailure`], so continuing with the inner value never observes
/// broken invariants.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Stringifies a panic payload (the `Box<dyn Any>` from `catch_unwind`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Why a [`PhaseBarrier::wait`] returned without the phase completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BarrierError {
    /// A peer poisoned the barrier (it panicked or timed out).
    Poisoned,
    /// This waiter exceeded the watchdog timeout and poisoned the
    /// barrier itself.
    Timeout,
}

/// Interior state of a [`PhaseBarrier`].
struct BarrierPhase {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// A reusable N-party barrier with a watchdog timeout and explicit
/// poisoning — the crash-containment replacement for
/// `std::sync::Barrier`, whose `wait` blocks forever if a peer dies
/// before arriving. A worker that panics poisons the barrier on its way
/// out; a worker whose wait exceeds the timeout poisons it too. Either
/// way every current and future waiter returns a typed error instead of
/// wedging the run.
struct PhaseBarrier {
    n: usize,
    timeout: Duration,
    state: Mutex<BarrierPhase>,
    cv: Condvar,
}

impl PhaseBarrier {
    fn new(n: usize, timeout: Duration) -> Self {
        PhaseBarrier {
            n,
            timeout,
            state: Mutex::new(BarrierPhase {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `n` parties arrive, the watchdog expires, or the
    /// barrier is poisoned.
    fn wait(&self) -> Result<(), BarrierError> {
        let mut st = lock_clean(&self.state);
        if st.poisoned {
            return Err(BarrierError::Poisoned);
        }
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        // lint:allow(L007): watchdog deadline — wall-clock is the only
        // clock a wedged peer cannot stall; the value never reaches
        // simulation state, it only converts a hang into a typed error.
        let deadline = Instant::now() + self.timeout;
        loop {
            // lint:allow(L007): same watchdog — see the deadline above.
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                st.poisoned = true;
                self.cv.notify_all();
                return Err(BarrierError::Timeout);
            }
            st = self
                .cv
                .wait_timeout(st, remaining)
                .unwrap_or_else(|e| e.into_inner())
                .0;
            if st.poisoned {
                return Err(BarrierError::Poisoned);
            }
            if st.generation != gen {
                return Ok(());
            }
        }
    }

    /// Poisons the barrier and wakes every waiter. Called by a worker
    /// abandoning its stint (panic caught) so peers unblock immediately
    /// instead of waiting out the watchdog.
    fn poison(&self) {
        let mut st = lock_clean(&self.state);
        st.poisoned = true;
        self.cv.notify_all();
    }
}

impl<S: NodeScheduler + Send, O: Observer + Send> Network<S, O> {
    /// Runs the simulation to `horizon` on up to `shards` worker threads,
    /// producing results byte-identical to [`Network::run`]`(horizon)`.
    ///
    /// The run is supervised (see the module docs): epochs execute in
    /// checkpointed stints, worker panics and barrier wedges are caught,
    /// classified, rolled back, and retried within a bounded budget
    /// before escalating to a typed halt; a mid-stint escalation halt is
    /// replayed sequentially from the checkpoint so its stopping point is
    /// exact. Falls back to the sequential loop (and reports why) when
    /// the configuration cannot be sharded conservatively.
    pub fn run_parallel(&mut self, horizon: f64, shards: usize) -> ParallelReport {
        let requested = shards.clamp(1, self.links.len().max(1));
        if requested < 2 || self.links.len() < 2 {
            self.run(horizon);
            return ParallelReport::sequential(FallbackReason::SingleShard);
        }
        if self.halted {
            return ParallelReport::new(requested);
        }

        // Round-robin link → shard assignment: deterministic, and
        // balanced for the homogeneous-link topologies we shard.
        let link_shard: std::sync::Arc<Vec<usize>> =
            std::sync::Arc::new((0..self.links.len()).map(|i| i % requested).collect());
        let lookahead = self.lookahead_of(&link_shard);
        if lookahead <= 0.0 {
            self.run(horizon);
            return ParallelReport::sequential(FallbackReason::ZeroLookahead);
        }

        // Sources not yet started emit their first timers here, on the
        // master, exactly as a sequential run would.
        self.start_pending_sources();

        // A halt-capable policy needs the rollback-and-replay path for
        // exact halt semantics, which needs a checkpoint; everyone else
        // degrades to uncontained sharding when snapshots are impossible
        // (e.g. a custom source without checkpoint support).
        let can_halt = self.policy.halt_after != u32::MAX;
        let mut checkpoint = match self.snapshot() {
            Ok(v) => Some(v),
            Err(_) if can_halt => {
                self.run(horizon);
                return ParallelReport::sequential(FallbackReason::Uncheckpointable);
            }
            Err(_) => None,
        };

        let mut report = ParallelReport::new(requested);
        report.lookahead = lookahead;
        if checkpoint.is_some() {
            report.checkpoints = 1;
        }
        let stint_epochs = if self.stint_epochs == 0 {
            u64::MAX
        } else {
            self.stint_epochs
        };
        let watchdog = self.watchdog;

        let mut total_epochs = 0u64;
        let mut attempt = 0u32;
        'stints: loop {
            let epoch_base = total_epochs;
            // Epoch numbering is deterministic, so the stint start time
            // is too: the master's clock for the first stint (matching
            // the sequential entry point), the earliest pending event —
            // exactly the global-next the previous stint agreed on — for
            // every later one.
            let start = if epoch_base == 0 {
                self.engine.now()
            } else {
                match self.engine.peek_time() {
                    Some(t) if t <= horizon => t,
                    _ => break 'stints,
                }
            };

            // Fork the injector's per-shard children (re-forked each
            // stint from the absorbed parent, so streams are continuous).
            let children = match self.fork_children(&link_shard, requested) {
                Ok(c) => c,
                Err(()) if epoch_base == 0 && report.rollbacks == 0 => {
                    self.run(horizon);
                    return ParallelReport::sequential(FallbackReason::InjectorUnsplittable);
                }
                Err(()) => {
                    // The injector split before but refuses now: its
                    // state is suspect. Contained, typed halt.
                    self.escalation.mark_halted();
                    self.halted = true;
                    report.failures.push(ShardFailure::InjectorDesync {
                        shard: 0,
                        detail: "fork_shard refused mid-run".to_string(),
                    });
                    break 'stints;
                }
            };

            let pre_epoch_log = self.epoch_log.len();
            let base_sources = self.sources.len();
            let mut workers = self.split(&link_shard, requested);
            if let Some(children) = children {
                for (w, c) in workers.iter_mut().zip(children) {
                    w.injector = Some(c);
                }
            }
            // The injected-panic test hook fires on first attempts only:
            // the retry then proves the rollback path end to end.
            if attempt == 0 {
                if let Some((ps, _)) = self.panic_plan {
                    if ps < requested {
                        workers[ps].panic_plan = self.panic_plan;
                    }
                }
            }

            let barrier = PhaseBarrier::new(requested, watchdog);
            let mailboxes: Vec<Mutex<Vec<Envelope>>> =
                (0..requested).map(|_| Mutex::new(Vec::new())).collect();
            // Each shard's earliest pending event time after the exchange
            // (INFINITY = drained); slot `i` is written only by worker
            // `i` between the two barriers of an epoch.
            let next_times: Mutex<Vec<f64>> = Mutex::new(vec![0.0; requested]);
            let halt_flag = AtomicBool::new(false);
            // Each worker publishes the global epoch it is executing so a
            // caught panic can be attributed to the epoch it struck at.
            let progress: Vec<AtomicU64> =
                (0..requested).map(|_| AtomicU64::new(epoch_base)).collect();

            let results: Vec<Result<StintResult, ShardFailure>> = std::thread::scope(|scope| {
                let handles: Vec<_> = workers
                    .iter_mut()
                    .enumerate()
                    .map(|(sid, net)| {
                        let barrier = &barrier;
                        let mailboxes = &mailboxes;
                        let next_times = &next_times;
                        let halt_flag = &halt_flag;
                        let progress = &progress;
                        scope.spawn(move || {
                            let caught = catch_unwind(AssertUnwindSafe(|| {
                                run_shard(
                                    net,
                                    sid,
                                    start,
                                    horizon,
                                    lookahead,
                                    stint_epochs,
                                    epoch_base,
                                    barrier,
                                    mailboxes,
                                    next_times,
                                    halt_flag,
                                    progress,
                                )
                            }));
                            caught.unwrap_or_else(|payload| {
                                // Unblock peers immediately; the shard's
                                // half-mutated state is discarded by the
                                // supervisor's rollback.
                                barrier.poison();
                                Err(ShardFailure::Panic {
                                    shard: sid,
                                    epoch: progress[sid].load(Ordering::Relaxed),
                                    message: panic_message(payload),
                                })
                            })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(sid, h)| {
                        h.join().unwrap_or_else(|_| {
                            Err(ShardFailure::Panic {
                                shard: sid,
                                epoch: progress[sid].load(Ordering::Relaxed),
                                message: "worker thread died outside the panic guard".to_string(),
                            })
                        })
                    })
                    .collect()
            });

            // Reclaim the injector children before the merge consumes the
            // workers; their states are absorbed only if the stint
            // commits.
            let mut child_states: Vec<(usize, Result<Value, hpfq_obs::SnapError>)> = Vec::new();
            for (sid, w) in workers.iter_mut().enumerate() {
                if let Some(c) = w.injector.take() {
                    child_states.push((sid, c.save_state()));
                }
            }
            if SpanProfiler::ENABLED {
                self.profiler.span_enter(SpanKind::Merge);
            }
            self.merge(workers, &link_shard, base_sources);
            if SpanProfiler::ENABLED {
                self.profiler.span_exit(SpanKind::Merge);
            }

            let failures: Vec<ShardFailure> =
                results.iter().filter_map(|r| r.clone().err()).collect();
            if !failures.is_empty() {
                report.failures.extend(failures);
                let restorable = checkpoint
                    .as_ref()
                    .map(|cp| (attempt < STINT_RETRY_BUDGET, cp.clone()));
                if let Some((retry, cp)) = restorable {
                    if self.restore(&cp).is_ok() {
                        self.epoch_log.truncate(pre_epoch_log);
                        report.rollbacks += 1;
                        if retry {
                            attempt += 1;
                            continue 'stints;
                        }
                        // Budget exhausted: the master is left at the
                        // last good checkpoint for post-mortems.
                    }
                }
                self.escalation.mark_halted();
                self.halted = true;
                break 'stints;
            }

            // The stint committed: fold the injector children's advanced
            // streams back into the parent.
            if self.injector.is_some() {
                let mut desync = None;
                for (sid, st) in child_states {
                    let folded = match st {
                        Ok(v) => self
                            .injector
                            .as_mut()
                            .map(|inj| inj.absorb_shard(&v))
                            .unwrap_or(Ok(())),
                        Err(e) => Err(e),
                    };
                    if let Err(e) = folded {
                        desync = Some(ShardFailure::InjectorDesync {
                            shard: sid,
                            detail: e.what,
                        });
                        break;
                    }
                }
                if let Some(f) = desync {
                    report.failures.push(f);
                    self.escalation.mark_halted();
                    self.halted = true;
                    break 'stints;
                }
            }

            attempt = 0;
            // Lock-step protocol: every worker ran the same epochs.
            let stint = match results[0] {
                Ok(s) => s,
                // lint:allow(L002): any Err took the retry/abort branch
                // above and either continued the loop or broke out of it;
                // reaching this match means every result is Ok.
                Err(_) => unreachable!("failures handled above"),
            };
            total_epochs += stint.epochs;

            // Halt semantics: if any shard's ladder halted, or the merged
            // quarantine roster crossed the policy threshold no single
            // shard could see, discard the stint and replay it
            // sequentially from the checkpoint — the sequential loop
            // stops at the exact halting event.
            let union_crossed = can_halt
                && self.escalation.quarantined_flows().len() as u64
                    >= u64::from(self.policy.halt_after);
            if stint.end == StintEnd::Halted || self.escalation.is_halted() || union_crossed {
                // `can_halt` guaranteed a checkpoint at entry; a ladder
                // halt is impossible otherwise.
                // lint:allow(L002): checkpoint existence is implied by
                // the Uncheckpointable fallback taken at entry for every
                // halt-capable policy.
                let cp = checkpoint.as_ref().expect("halt implies a checkpoint");
                if self.restore(cp).is_ok() {
                    self.epoch_log.truncate(pre_epoch_log);
                    total_epochs = epoch_base;
                    report.halt_replayed = true;
                    self.run(horizon);
                } else {
                    // No way back: surface the halt where we stand.
                    self.escalation.mark_halted();
                    self.halted = true;
                }
                break 'stints;
            }

            if stint.end == StintEnd::Finished {
                break 'stints;
            }
            // Refresh the checkpoint at the committed stint boundary; on
            // failure keep the previous one (rolling back further is
            // slower but still byte-identical).
            if checkpoint.is_some() {
                if let Ok(v) = self.snapshot() {
                    checkpoint = Some(v);
                    report.checkpoints += 1;
                }
            }
        }

        // Keep the final checkpoint around for post-mortems: on a halt or
        // an exhausted retry budget this is the exact state to resume
        // from, and harnesses hand its bytes to the flight recorder.
        self.last_checkpoint = checkpoint;
        report.epochs = total_epochs;
        report
    }

    /// Replays the conservative-epoch protocol **single-threaded** under
    /// an explicit per-epoch shard commit order, producing results
    /// byte-identical to [`Network::run`]`(horizon)`.
    ///
    /// This is the schedule-permutation half of the determinism oracle:
    /// [`Network::run_parallel`] exercises whichever interleaving the OS
    /// scheduler happens to produce, while this harness pins *every*
    /// interleaving the protocol admits. Epoch `e` executes shards —
    /// compute phase, then outbox commit into the mailboxes — in the
    /// order `orders[e % orders.len()]`. Committing whole outboxes in a
    /// permuted shard order subsumes the threaded version's
    /// per-envelope mutex interleavings: the canonical
    /// `(t, minor, sender, seq)` inbox sort is insensitive to arrival
    /// order within a mailbox, so any finer interleaving sorts to the
    /// same inbox the coarse one does. A caller that drives this over
    /// all `shards!` permutations (plus per-epoch rotations) has
    /// therefore checked every commit schedule the barrier protocol can
    /// produce.
    ///
    /// Shards injectors and replays halts exactly like
    /// [`Network::run_parallel`] (fork/absorb children, rollback and
    /// sequential tail replay from the entry checkpoint); being
    /// single-threaded it needs no panic containment. Falls back exactly
    /// like [`Network::run_parallel`], plus
    /// [`FallbackReason::InvalidOrders`] when `orders` is empty or an
    /// entry is not a permutation of `0..shards`.
    pub fn run_permuted(
        &mut self,
        horizon: f64,
        shards: usize,
        orders: &[Vec<usize>],
    ) -> ParallelReport {
        let requested = shards.clamp(1, self.links.len().max(1));
        if requested < 2 || self.links.len() < 2 {
            self.run(horizon);
            return ParallelReport::sequential(FallbackReason::SingleShard);
        }
        let is_perm = |o: &Vec<usize>| {
            let mut seen = vec![false; requested];
            o.len() == requested
                && o.iter()
                    .all(|&s| s < requested && !std::mem::replace(&mut seen[s], true))
        };
        if orders.is_empty() || !orders.iter().all(is_perm) {
            self.run(horizon);
            return ParallelReport::sequential(FallbackReason::InvalidOrders);
        }
        if self.halted {
            return ParallelReport::new(requested);
        }

        let link_shard: std::sync::Arc<Vec<usize>> =
            std::sync::Arc::new((0..self.links.len()).map(|i| i % requested).collect());
        let lookahead = self.lookahead_of(&link_shard);
        if lookahead <= 0.0 {
            self.run(horizon);
            return ParallelReport::sequential(FallbackReason::ZeroLookahead);
        }
        self.start_pending_sources();

        let can_halt = self.policy.halt_after != u32::MAX;
        let checkpoint = match self.snapshot() {
            Ok(v) => Some(v),
            Err(_) if can_halt => {
                self.run(horizon);
                return ParallelReport::sequential(FallbackReason::Uncheckpointable);
            }
            Err(_) => None,
        };
        let children = match self.fork_children(&link_shard, requested) {
            Ok(c) => c,
            Err(()) => {
                self.run(horizon);
                return ParallelReport::sequential(FallbackReason::InjectorUnsplittable);
            }
        };

        let mut report = ParallelReport::new(requested);
        report.lookahead = lookahead;
        if checkpoint.is_some() {
            report.checkpoints = 1;
        }
        let pre_epoch_log = self.epoch_log.len();
        let base_sources = self.sources.len();
        let mut workers = self.split(&link_shard, requested);
        if let Some(children) = children {
            for (w, c) in workers.iter_mut().zip(children) {
                w.injector = Some(c);
            }
        }
        let start = self.engine.now();

        let mut mailboxes: Vec<Vec<Envelope>> = (0..requested).map(|_| Vec::new()).collect();
        let mut next_times = vec![0.0f64; requested];
        let mut send_seq = vec![0usize; requested];
        let mut t_start = start;
        let mut epochs = 0u64;
        let mut halted = false;
        loop {
            let order = &orders[(epochs as usize) % orders.len()];
            epochs += 1;
            let epoch_end = t_start + lookahead;
            // Compute phase + outbox commit, one shard at a time in the
            // permuted order. Mailboxes are only written here and only
            // read after the phase completes — the sequential analogue
            // of the first barrier in `run_shard`.
            for &sid in order {
                let net = &mut workers[sid];
                net.engine.advance_to(t_start);
                let mut handled = 0u64;
                while !net.halted {
                    let due = if epoch_end <= horizon {
                        net.engine.pop_strictly_before(epoch_end)
                    } else {
                        net.engine.pop_due(horizon)
                    };
                    let Some((t, ev)) = due else { break };
                    net.handle(t, ev);
                    handled += 1;
                }
                halted |= net.halted;
                if net.record_epochs {
                    net.epoch_log.push(EpochSpan {
                        shard: sid,
                        t0: t_start,
                        t1: epoch_end.min(horizon),
                        events: handled,
                    });
                }
                if let Some(ctx) = net.shard.as_mut() {
                    for OutMsg { dest, t, minor, ev } in ctx.outbox.drain(..) {
                        send_seq[sid] += 1;
                        mailboxes[dest].push(Envelope {
                            t,
                            minor,
                            sender: sid,
                            seq: send_seq[sid],
                            ev,
                        });
                    }
                }
            }
            // Delivery phase: every outbox is committed, so each inbox
            // is complete — sort it canonically and feed the engine,
            // then publish each shard's next pending event time (the
            // sequential analogue of the second barrier).
            for &sid in order {
                let mut inbox = std::mem::take(&mut mailboxes[sid]);
                inbox.sort_by(|a, b| {
                    a.t.total_cmp(&b.t)
                        .then(a.minor.cmp(&b.minor))
                        .then(a.sender.cmp(&b.sender))
                        .then(a.seq.cmp(&b.seq))
                });
                let net = &mut workers[sid];
                for env in inbox {
                    net.engine.schedule_keyed(env.t, env.minor, env.ev);
                }
                next_times[sid] = net.engine.peek_time().unwrap_or(f64::INFINITY);
            }
            if halted {
                break;
            }
            let global_next = next_times
                .iter()
                .fold(f64::INFINITY, |m, &t| if t < m { t } else { m });
            if !global_next.is_finite() || global_next > horizon {
                break;
            }
            t_start = global_next;
        }

        let mut child_states: Vec<(usize, Result<Value, hpfq_obs::SnapError>)> = Vec::new();
        for (sid, w) in workers.iter_mut().enumerate() {
            if let Some(c) = w.injector.take() {
                child_states.push((sid, c.save_state()));
            }
        }
        if SpanProfiler::ENABLED {
            self.profiler.span_enter(SpanKind::Merge);
        }
        self.merge(workers, &link_shard, base_sources);
        if SpanProfiler::ENABLED {
            self.profiler.span_exit(SpanKind::Merge);
        }

        let union_crossed = can_halt
            && self.escalation.quarantined_flows().len() as u64
                >= u64::from(self.policy.halt_after);
        if halted || self.escalation.is_halted() || union_crossed {
            // lint:allow(L002): checkpoint existence is implied by the
            // Uncheckpointable fallback taken at entry for every
            // halt-capable policy.
            let cp = checkpoint.as_ref().expect("halt implies a checkpoint");
            if self.restore(cp).is_ok() {
                self.epoch_log.truncate(pre_epoch_log);
                epochs = 0;
                report.halt_replayed = true;
                self.run(horizon);
            } else {
                self.escalation.mark_halted();
                self.halted = true;
            }
        } else if self.injector.is_some() {
            for (sid, st) in child_states {
                let folded = match st {
                    Ok(v) => self
                        .injector
                        .as_mut()
                        .map(|inj| inj.absorb_shard(&v))
                        .unwrap_or(Ok(())),
                    Err(e) => Err(e),
                };
                if let Err(e) = folded {
                    report.failures.push(ShardFailure::InjectorDesync {
                        shard: sid,
                        detail: e.what,
                    });
                    self.escalation.mark_halted();
                    self.halted = true;
                    break;
                }
            }
        }
        self.last_checkpoint = checkpoint;
        report.epochs = epochs;
        report
    }

    /// Minimum propagation delay over inter-shard edges: consecutive route
    /// hops on different shards, and final-hop delivery edges back to a
    /// source owned by a different shard. `INFINITY` when no route
    /// crosses shards (a single epoch suffices).
    fn lookahead_of(&self, link_shard: &[usize]) -> f64 {
        let mut w = f64::INFINITY;
        for slot in &self.sources {
            let hops = &slot.route.hops;
            let owner = link_shard[hops[0].link];
            for pair in hops.windows(2) {
                if link_shard[pair[0].link] != link_shard[pair[1].link] && pair[0].prop_delay < w {
                    w = pair[0].prop_delay;
                }
            }
            if let Some(last) = hops.last() {
                if link_shard[last.link] != owner && last.prop_delay < w {
                    w = last.prop_delay;
                }
            }
        }
        w
    }

    /// Forks the installed injector into one child per shard, each owning
    /// the decision streams of the flows whose ingress (first-hop) link
    /// that shard owns — the flows whose packets and wakes the shard will
    /// consult the injector for. `Ok(None)` when no injector is
    /// installed; `Err(())` when [`crate::FaultInjector::fork_shard`]
    /// declines.
    #[allow(clippy::type_complexity)]
    fn fork_children(
        &mut self,
        link_shard: &[usize],
        n: usize,
    ) -> Result<Option<Vec<Box<dyn FaultInjector>>>, ()> {
        let Some(inj) = self.injector.as_mut() else {
            return Ok(None);
        };
        let mut rosters: Vec<Vec<u32>> = vec![Vec::new(); n];
        for slot in &self.sources {
            rosters[link_shard[slot.route.hops[0].link]].push(slot.flow);
        }
        let mut children = Vec::with_capacity(n);
        for roster in &rosters {
            match inj.fork_shard(roster) {
                Some(c) => children.push(c),
                None => return Err(()),
            }
        }
        Ok(Some(children))
    }

    /// Carves `self` into `n` shard networks: links and source boxes move
    /// to their owning shard, routing metadata is replicated, pending
    /// events are dealt out by [`Network::event_shard`]. Each flow's
    /// accumulated [`crate::FlowStats`] and captured trace move to the
    /// shard owning the flow's **last** hop — the single writer of its
    /// service-side fields — so float accumulation stays incremental
    /// across stint boundaries (see [`SimStats::extract_flow`]); the
    /// master keeps the network totals, which merge back exactly.
    fn split(&mut self, link_shard: &std::sync::Arc<Vec<usize>>, n: usize) -> Vec<Network<S, O>> {
        let now = self.engine.now();
        let pending = self.engine.drain_ordered();
        let mut workers: Vec<Network<S, O>> = (0..n)
            .map(|sid| {
                let mut stats = SimStats::new();
                for flow in self.stats.traced_flows() {
                    stats.trace_flow(flow);
                }
                let mut engine = Engine::new();
                engine.advance_to(now);
                Network {
                    links: Vec::new(),
                    engine,
                    sources: Vec::new(),
                    stats,
                    flow_owner: self.flow_owner.clone(),
                    injector: None,
                    policy: self.policy,
                    escalation: self.escalation.clone(),
                    halted: false,
                    inflight_bytes: 0,
                    command_errors: Vec::new(),
                    shard: Some(ShardCtx {
                        id: sid,
                        link_shard: std::sync::Arc::clone(link_shard),
                        outbox: Vec::new(),
                    }),
                    // Each worker times against its own base Instant;
                    // snapshots carry only durations, so merging them into
                    // the master is exact.
                    profiler: SpanProfiler::new(),
                    record_epochs: self.record_epochs,
                    epoch_log: Vec::new(),
                    shard_spans: Vec::new(),
                    stint_epochs: self.stint_epochs,
                    watchdog: self.watchdog,
                    panic_plan: None,
                    last_checkpoint: None,
                    dispatch_batch: self.dispatch_batch,
                }
            })
            .collect();
        for (i, slot) in self.links.iter_mut().enumerate() {
            for (sid, w) in workers.iter_mut().enumerate() {
                w.links.push(if link_shard[i] == sid {
                    slot.take()
                } else {
                    None
                });
            }
        }
        for slot in &mut self.sources {
            let owner = link_shard[slot.route.hops[0].link];
            for (sid, w) in workers.iter_mut().enumerate() {
                w.sources.push(SourceSlot {
                    src: if sid == owner { slot.src.take() } else { None },
                    route: slot.route.clone(),
                    flow: slot.flow,
                    live: slot.live,
                    started: slot.started,
                });
            }
        }
        // Move each flow's accumulator and trace prefix to the shard that
        // owns its last hop (the `record_service` writer). Flows with no
        // owning source (none, in practice) stay on the master, which is
        // inert during the stint.
        for flow in self.stats.flows() {
            if let Some(owner) = self.service_shard(link_shard, flow) {
                if let Some(fs) = self.stats.extract_flow(flow) {
                    workers[owner].stats.seed_flow(flow, fs);
                }
            }
        }
        for flow in self.stats.traced_flows() {
            if let Some(owner) = self.service_shard(link_shard, flow) {
                let records = self.stats.extract_trace(flow);
                workers[owner].stats.seed_trace(flow, records);
            }
        }
        for (t, minor, ev) in pending {
            let dest = self.event_shard(link_shard, &ev);
            workers[dest].engine.schedule_keyed(t, minor, ev);
        }
        workers
    }

    /// The shard that writes `flow`'s service-side stats: the owner of
    /// its route's last-hop link.
    fn service_shard(&self, link_shard: &[usize], flow: u32) -> Option<usize> {
        let idx = *self.flow_owner.get(&flow)?;
        self.sources[idx]
            .route
            .hops
            .last()
            .map(|h| link_shard[h.link])
    }

    /// Reassembles the master from finished shards. Every merge below is
    /// exact — see the field-by-field arguments at the merge sites.
    fn merge(&mut self, workers: Vec<Network<S, O>>, link_shard: &[usize], base_sources: usize) {
        let mut leftovers: Vec<(f64, u64, usize, usize, NetEvent)> = Vec::new();
        let mut errors: Vec<(f64, usize, hpfq_core::HpfqError)> = Vec::new();
        let mut max_now = self.engine.now();
        self.shard_spans.clear();
        for (sid, mut w) in workers.into_iter().enumerate() {
            // Wall-clock spans fold into the master aggregate and are also
            // kept per shard; epoch windows (simulation time) append in
            // shard-major order.
            if SpanProfiler::ENABLED {
                let snap = w.profiler.snapshot();
                self.profiler.absorb(&snap);
                self.shard_spans.push(snap);
            }
            self.epoch_log.append(&mut w.epoch_log);
            // Links move back whole: ledger, hierarchy, observer state and
            // all. Each was owned by exactly one shard.
            for (i, slot) in w.links.iter_mut().enumerate() {
                if link_shard[i] == sid {
                    self.links[i] = slot.take();
                }
            }
            for (i, slot) in w.sources.iter_mut().enumerate() {
                if i >= base_sources {
                    // A flow added mid-run. AddFlow executes only on the
                    // shard owning link 0, which therefore holds the only
                    // real (non-replica) slot at each appended index, in
                    // order — so indices line up with a plain push.
                    if slot.src.is_some() && i == self.sources.len() {
                        self.sources.push(SourceSlot {
                            src: slot.src.take(),
                            route: slot.route.clone(),
                            flow: slot.flow,
                            live: slot.live,
                            started: slot.started,
                        });
                    }
                    continue;
                }
                if slot.src.is_some() {
                    // Owner shard: its liveness/started flags are the
                    // authoritative ones.
                    self.sources[i].src = slot.src.take();
                    self.sources[i].live = slot.live;
                    self.sources[i].started = slot.started;
                }
            }
            // flow_owner only grows (AddFlow on link 0's shard); absorb
            // all entries.
            for (flow, idx) in std::mem::take(&mut w.flow_owner) {
                self.flow_owner.entry(flow).or_insert(idx);
            }
            // Exact counter/extremum merge (see SimStats::merge_from);
            // per-flow float fields came back from their single writer.
            self.stats.merge_from(std::mem::take(&mut w.stats));
            // Per-flow strikes advance on one shard only: max is exact.
            self.escalation.absorb_max(&w.escalation);
            // Signed per-shard deltas sum to the true in-flight count.
            self.inflight_bytes += w.inflight_bytes;
            for (t, e) in w.command_errors.drain(..) {
                errors.push((t, sid, e));
            }
            if w.engine.now() > max_now {
                max_now = w.engine.now();
            }
            for (idx, (t, minor, ev)) in w.engine.drain_ordered().into_iter().enumerate() {
                leftovers.push((t, minor, sid, idx, ev));
            }
        }
        // Post-horizon events go back into the master engine in global
        // `(time, minor, shard, shard-order)` order so a later sequential
        // or parallel segment continues deterministically.
        leftovers.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
        // On a committed stint every leftover sits at or beyond the epoch
        // boundary no worker crossed, so this advances to `max_now`
        // exactly. A halted or failed stint leaves workers stopped at
        // different points — one shard's pending events can predate
        // another's clock. The merged state is then only a vehicle for
        // rolling back to the checkpoint, but it must still reassemble
        // without tripping the clock-monotonicity guard: cap the advance
        // at the earliest leftover.
        let clock = leftovers.first().map_or(max_now, |(t, ..)| t.min(max_now));
        self.engine.advance_to(clock);
        for (t, minor, _, _, ev) in leftovers {
            self.engine.schedule_keyed(t, minor, ev);
        }
        errors.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.command_errors
            .extend(errors.into_iter().map(|(t, _, e)| (t, e)));
    }
}

/// The per-shard epoch loop for one supervised stint. Returns how the
/// stint ended (every variant is agreed on by all workers at the same
/// epoch boundary) or the typed failure that aborted it.
#[allow(clippy::too_many_arguments)]
fn run_shard<S: NodeScheduler + Send, O: Observer + Send>(
    net: &mut Network<S, O>,
    sid: usize,
    start: f64,
    horizon: f64,
    lookahead: f64,
    stint_epochs: u64,
    epoch_base: u64,
    barrier: &PhaseBarrier,
    mailboxes: &[Mutex<Vec<Envelope>>],
    next_times: &Mutex<Vec<f64>>,
    halt_flag: &AtomicBool,
    progress: &[AtomicU64],
) -> Result<StintResult, ShardFailure> {
    let mut t_start = start;
    let mut epochs = 0u64;
    let mut send_seq = 0usize;
    let fail = |e: BarrierError, epoch: u64| match e {
        BarrierError::Timeout => ShardFailure::BarrierTimeout { shard: sid, epoch },
        BarrierError::Poisoned => ShardFailure::BarrierPoisoned { shard: sid, epoch },
    };
    loop {
        let global_epoch = epoch_base + epochs;
        progress[sid].store(global_epoch, Ordering::Relaxed);
        if let Some((ps, pe)) = net.panic_plan {
            if ps == sid && pe == global_epoch {
                net.panic_plan = None;
                // lint:allow(L002): the injected crash the containment
                // tests and the CI soak drive through the supervisor —
                // caught by the worker's catch_unwind, never propagated.
                panic!("injected shard panic (shard {sid}, epoch {global_epoch})");
            }
        }
        epochs += 1;
        let epoch_end = t_start + lookahead;
        net.engine.advance_to(t_start);
        // Drain this shard's events due inside the window (and horizon):
        // strictly before the epoch boundary, inclusively at the horizon
        // (matching the sequential loop's `pop_due` semantics there).
        // A ladder halt stops the drain immediately — like the
        // sequential loop's `while !halted` — and raises the shared halt
        // flag; results are discarded and replayed sequentially anyway,
        // the flag only ends the stint promptly on every shard.
        if SpanProfiler::ENABLED {
            net.profiler.span_enter(SpanKind::EpochCompute);
        }
        let mut handled = 0u64;
        while !net.halted {
            let due = if epoch_end <= horizon {
                net.engine.pop_strictly_before(epoch_end)
            } else {
                net.engine.pop_due(horizon)
            };
            let Some((t, ev)) = due else { break };
            net.handle(t, ev);
            handled += 1;
        }
        if net.halted {
            // lint:allow(L010): deliberate pre-barrier publication. Every
            // halt store is sequenced before this shard's first barrier,
            // and readers capture the flag between the barriers — where
            // no peer can be computing — so all shards decide the stint
            // outcome from the same stable value. Storing in the exchange
            // phase instead would reintroduce the read-after-barrier race
            // this protocol exists to prevent.
            halt_flag.store(true, Ordering::Relaxed);
        }
        if SpanProfiler::ENABLED {
            net.profiler.span_exit(SpanKind::EpochCompute);
        }
        if net.record_epochs {
            net.epoch_log.push(EpochSpan {
                shard: sid,
                t0: t_start,
                t1: epoch_end.min(horizon),
                events: handled,
            });
        }
        // Post everything produced for other shards. `send_seq` keeps the
        // producing order so identical `(t, minor)` envelopes from one
        // sender stay FIFO after the inbox sort.
        if SpanProfiler::ENABLED {
            net.profiler.span_enter(SpanKind::Exchange);
        }
        if let Some(ctx) = net.shard.as_mut() {
            for OutMsg { dest, t, minor, ev } in ctx.outbox.drain(..) {
                send_seq += 1;
                lock_clean(&mailboxes[dest]).push(Envelope {
                    t,
                    minor,
                    sender: sid,
                    seq: send_seq,
                    ev,
                });
            }
        }
        if SpanProfiler::ENABLED {
            net.profiler.span_exit(SpanKind::Exchange);
        }
        if SpanProfiler::ENABLED {
            net.profiler.span_enter(SpanKind::BarrierWait);
        }
        let first = barrier.wait();
        if SpanProfiler::ENABLED {
            net.profiler.span_exit(SpanKind::BarrierWait);
        }
        if let Err(e) = first {
            return Err(fail(e, global_epoch));
        }
        // All inboxes are complete now: take mine, order it canonically,
        // feed the engine.
        if SpanProfiler::ENABLED {
            net.profiler.span_enter(SpanKind::Exchange);
        }
        let mut inbox = std::mem::take(&mut *lock_clean(&mailboxes[sid]));
        inbox.sort_by(|a, b| {
            a.t.total_cmp(&b.t)
                .then(a.minor.cmp(&b.minor))
                .then(a.sender.cmp(&b.sender))
                .then(a.seq.cmp(&b.seq))
        });
        for env in inbox {
            net.engine.schedule_keyed(env.t, env.minor, env.ev);
        }
        if SpanProfiler::ENABLED {
            net.profiler.span_exit(SpanKind::Exchange);
        }
        lock_clean(next_times)[sid] = net.engine.peek_time().unwrap_or(f64::INFINITY);
        // Capture the halt flag between the barriers: every shard that
        // halted this epoch stored it before the first barrier, and no
        // shard can be computing the next epoch yet (that requires
        // passing the second barrier), so the value is stable and every
        // worker captures the same one. Reading it *after* the second
        // barrier instead would race a fast peer that continued into the
        // next epoch's compute and halted there — the late reader would
        // return `Halted` one epoch early while the peer waits at a
        // barrier nobody else will reach, wedging the stint into a
        // watchdog timeout.
        let halted_this_epoch = halt_flag.load(Ordering::Relaxed);
        if SpanProfiler::ENABLED {
            net.profiler.span_enter(SpanKind::BarrierWait);
        }
        let second = barrier.wait();
        if SpanProfiler::ENABLED {
            net.profiler.span_exit(SpanKind::BarrierWait);
        }
        if let Err(e) = second {
            return Err(fail(e, global_epoch));
        }
        // Every shard computes the same stint outcome from the same
        // published state; no third barrier is needed because slot `sid`
        // is only rewritten after the *next* exchange barrier.
        if halted_this_epoch {
            return Ok(StintResult {
                epochs,
                end: StintEnd::Halted,
            });
        }
        let global_next =
            lock_clean(next_times)
                .iter()
                .fold(f64::INFINITY, |m, &t| if t < m { t } else { m });
        if !global_next.is_finite() || global_next > horizon {
            return Ok(StintResult {
                epochs,
                end: StintEnd::Finished,
            });
        }
        if epochs >= stint_epochs {
            return Ok(StintResult {
                epochs,
                end: StintEnd::CheckpointDue,
            });
        }
        t_start = global_next;
    }
}
