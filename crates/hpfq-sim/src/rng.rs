//! A small, dependency-free PRNG for traffic generation and tests.
//!
//! Implements xoshiro256** (Blackman & Vigna) seeded through splitmix64,
//! which is the standard recipe for expanding a 64-bit seed into the
//! 256-bit state. Not cryptographic — it exists so simulations are
//! reproducible from a single `u64` seed without pulling in an external
//! crate.

/// xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Expands `seed` into the full state via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.gen_f64()
    }

    /// Uniform `u64` in `[lo, hi)` (half-open; `hi > lo`).
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        // Debiased multiply-shift (Lemire); the retry loop terminates with
        // overwhelming probability after one or two draws.
        let span = hi - lo;
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            if (m as u64) >= zone {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.gen_range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// The raw 256-bit generator state, for checkpointing. Restoring it
    /// with [`SmallRng::from_state`] resumes the stream exactly where it
    /// left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`SmallRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.gen_range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        // Every value of a small range is hit.
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_range_usize(0, 5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_800..3_200).contains(&hits), "hits {hits}");
    }
}
