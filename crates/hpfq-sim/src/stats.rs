//! Measurement infrastructure: per-packet service records, per-flow
//! aggregates, and the windowed exponential bandwidth average of paper
//! §5.2.

use std::collections::BTreeMap;

use hpfq_core::Packet;
use hpfq_obs::snap::{SnapError, Value};

/// One transmitted packet, as recorded by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceRecord {
    /// Packet id.
    pub id: u64,
    /// Flow the packet belongs to.
    pub flow: u32,
    /// Length in bytes.
    pub len_bytes: u32,
    /// Arrival time at the server.
    pub arrival: f64,
    /// Time transmission began.
    pub start: f64,
    /// Time transmission finished (departure time).
    pub end: f64,
}

impl ServiceRecord {
    /// Queueing delay: departure minus arrival (the paper's Fig. 4–7
    /// metric).
    pub fn delay(&self) -> f64 {
        self.end - self.arrival
    }

    /// Serializes as a fixed-arity list — records dominate the traced
    /// portion of a checkpoint, so the compact form matters.
    pub fn save(&self) -> Value {
        Value::List(vec![
            Value::U64(self.id),
            Value::U64(u64::from(self.flow)),
            Value::U64(u64::from(self.len_bytes)),
            Value::F64(self.arrival),
            Value::F64(self.start),
            Value::F64(self.end),
        ])
    }

    /// Restores a record saved by [`ServiceRecord::save`].
    pub fn load(v: &Value) -> Result<ServiceRecord, SnapError> {
        let items = v.items()?;
        if items.len() != 6 {
            return Err(SnapError {
                at: 0,
                what: format!("service record has {} fields, expected 6", items.len()),
            });
        }
        Ok(ServiceRecord {
            id: items[0].as_u64()?,
            flow: items[1].as_u32()?,
            len_bytes: items[2].as_u32()?,
            arrival: items[3].as_f64()?,
            start: items[4].as_f64()?,
            end: items[5].as_f64()?,
        })
    }
}

/// Aggregate statistics for one flow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Packets transmitted.
    pub packets: u64,
    /// Bytes transmitted.
    pub bytes: u64,
    /// Packets dropped at the buffer.
    pub drops: u64,
    /// Bytes dropped at the buffer.
    pub drop_bytes: u64,
    /// Packets offered by the source (accepted + dropped).
    pub offered_packets: u64,
    /// Bytes offered by the source (accepted + dropped).
    pub offered_bytes: u64,
    /// Packets accepted into the hierarchy (offered − all drops).
    pub accepted_packets: u64,
    /// Bytes accepted into the hierarchy.
    pub accepted_bytes: u64,
    /// Packets lost to fault injection or admission validation (distinct
    /// from buffer `drops`).
    pub fault_drops: u64,
    /// Bytes lost to fault injection or admission validation.
    pub fault_drop_bytes: u64,
    /// Packets purged from the queue when the flow was removed or
    /// quarantined (accepted but never served).
    pub purged_packets: u64,
    /// Bytes purged on removal/quarantine.
    pub purged_bytes: u64,
    /// Sum of per-packet delays (seconds).
    pub delay_sum: f64,
    /// Maximum per-packet delay.
    pub delay_max: f64,
    /// Departure time of the last packet.
    pub last_departure: f64,
}

impl FlowStats {
    /// Mean per-packet delay.
    pub fn mean_delay(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.delay_sum / self.packets as f64
        }
    }

    /// Fraction of offered packets that were dropped.
    pub fn loss_rate(&self) -> f64 {
        if self.offered_packets == 0 {
            0.0
        } else {
            self.drops as f64 / self.offered_packets as f64
        }
    }

    /// Serializes every counter as a fixed-arity list (field order matches
    /// the struct declaration).
    pub fn save(&self) -> Value {
        Value::List(vec![
            Value::U64(self.packets),
            Value::U64(self.bytes),
            Value::U64(self.drops),
            Value::U64(self.drop_bytes),
            Value::U64(self.offered_packets),
            Value::U64(self.offered_bytes),
            Value::U64(self.accepted_packets),
            Value::U64(self.accepted_bytes),
            Value::U64(self.fault_drops),
            Value::U64(self.fault_drop_bytes),
            Value::U64(self.purged_packets),
            Value::U64(self.purged_bytes),
            Value::F64(self.delay_sum),
            Value::F64(self.delay_max),
            Value::F64(self.last_departure),
        ])
    }

    /// Restores aggregates saved by [`FlowStats::save`].
    pub fn load(v: &Value) -> Result<FlowStats, SnapError> {
        let items = v.items()?;
        if items.len() != 15 {
            return Err(SnapError {
                at: 0,
                what: format!("flow stats record has {} fields, expected 15", items.len()),
            });
        }
        Ok(FlowStats {
            packets: items[0].as_u64()?,
            bytes: items[1].as_u64()?,
            drops: items[2].as_u64()?,
            drop_bytes: items[3].as_u64()?,
            offered_packets: items[4].as_u64()?,
            offered_bytes: items[5].as_u64()?,
            accepted_packets: items[6].as_u64()?,
            accepted_bytes: items[7].as_u64()?,
            fault_drops: items[8].as_u64()?,
            fault_drop_bytes: items[9].as_u64()?,
            purged_packets: items[10].as_u64()?,
            purged_bytes: items[11].as_u64()?,
            delay_sum: items[12].as_f64()?,
            delay_max: items[13].as_f64()?,
            last_departure: items[14].as_f64()?,
        })
    }
}

/// Collected simulation statistics.
///
/// Aggregates are always maintained; full per-packet [`ServiceRecord`]s are
/// kept only for flows registered with [`SimStats::trace_flow`] (traces for
/// a long run over every flow would dominate memory).
#[derive(Debug, Default)]
pub struct SimStats {
    flows: BTreeMap<u32, FlowStats>,
    traced: BTreeMap<u32, Vec<ServiceRecord>>,
    /// Total bytes transmitted on the link.
    pub total_bytes: u64,
    /// Total packets transmitted on the link.
    pub total_packets: u64,
    /// Completion time of the last transmission.
    pub last_departure: f64,
}

impl SimStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables per-packet trace capture for `flow`.
    pub fn trace_flow(&mut self, flow: u32) {
        self.traced.entry(flow).or_default();
    }

    /// Records a completed transmission.
    pub fn record_service(&mut self, rec: ServiceRecord) {
        let f = self.flows.entry(rec.flow).or_default();
        f.packets += 1;
        f.bytes += u64::from(rec.len_bytes);
        let d = rec.delay();
        f.delay_sum += d;
        if d > f.delay_max {
            f.delay_max = d;
        }
        f.last_departure = rec.end;
        self.total_bytes += u64::from(rec.len_bytes);
        self.total_packets += 1;
        self.last_departure = rec.end;
        if let Some(tr) = self.traced.get_mut(&rec.flow) {
            tr.push(rec);
        }
    }

    /// Records a packet offered by its source (before any buffer check).
    pub fn record_arrival(&mut self, pkt: &Packet) {
        let f = self.flows.entry(pkt.flow).or_default();
        f.offered_packets += 1;
        f.offered_bytes += u64::from(pkt.len_bytes);
    }

    /// Records a buffer drop of `pkt`, including its size.
    pub fn record_drop(&mut self, pkt: &Packet) {
        let f = self.flows.entry(pkt.flow).or_default();
        f.drops += 1;
        f.drop_bytes += u64::from(pkt.len_bytes);
    }

    /// Records a packet accepted into the hierarchy (survived fault
    /// injection, validation, and the buffer check).
    pub fn record_accept(&mut self, pkt: &Packet) {
        let f = self.flows.entry(pkt.flow).or_default();
        f.accepted_packets += 1;
        f.accepted_bytes += u64::from(pkt.len_bytes);
    }

    /// Records a packet lost to fault injection or admission validation.
    pub fn record_fault_drop(&mut self, pkt: &Packet) {
        let f = self.flows.entry(pkt.flow).or_default();
        f.fault_drops += 1;
        f.fault_drop_bytes += u64::from(pkt.len_bytes);
    }

    /// Records a packet purged from its queue by flow removal/quarantine.
    pub fn record_purge(&mut self, pkt: &Packet) {
        let f = self.flows.entry(pkt.flow).or_default();
        f.purged_packets += 1;
        f.purged_bytes += u64::from(pkt.len_bytes);
    }

    /// Verifies byte/packet conservation across the collector:
    ///
    /// * per flow, `offered == accepted + buffer drops + fault drops`
    ///   (packets and bytes), and
    /// * in aggregate, `accepted == served + purged + queued_bytes`
    ///   (bytes; `queued_bytes` is whatever the caller still holds in
    ///   queues, including an in-flight packet).
    ///
    /// Returns a description of the first imbalance found.
    pub fn accounting_balanced(&self, queued_bytes: u64) -> Result<(), String> {
        let mut accepted = 0u64;
        let mut served = 0u64;
        let mut purged = 0u64;
        for (flow, f) in &self.flows {
            if f.offered_packets != f.accepted_packets + f.drops + f.fault_drops {
                return Err(format!(
                    "flow {flow}: offered {} pkts != accepted {} + dropped {} + fault-dropped {}",
                    f.offered_packets, f.accepted_packets, f.drops, f.fault_drops
                ));
            }
            if f.offered_bytes != f.accepted_bytes + f.drop_bytes + f.fault_drop_bytes {
                return Err(format!(
                    "flow {flow}: offered {} B != accepted {} + dropped {} + fault-dropped {} B",
                    f.offered_bytes, f.accepted_bytes, f.drop_bytes, f.fault_drop_bytes
                ));
            }
            accepted += f.accepted_bytes;
            served += f.bytes;
            purged += f.purged_bytes;
        }
        if accepted != served + purged + queued_bytes {
            return Err(format!(
                "accepted {accepted} B != served {served} + purged {purged} + queued {queued_bytes} B"
            ));
        }
        Ok(())
    }

    /// Aggregates for `flow` (zeroes if it never sent).
    pub fn flow(&self, flow: u32) -> FlowStats {
        self.flows.get(&flow).cloned().unwrap_or_default()
    }

    /// The captured trace for a flow registered via
    /// [`SimStats::trace_flow`].
    pub fn trace(&self, flow: u32) -> &[ServiceRecord] {
        self.traced.get(&flow).map_or(&[], |v| v.as_slice())
    }

    /// All flows seen, sorted by id (BTreeMap iteration order).
    pub fn flows(&self) -> Vec<u32> {
        self.flows.keys().copied().collect()
    }

    /// Flows registered for per-packet trace capture, sorted by id.
    pub fn traced_flows(&self) -> Vec<u32> {
        self.traced.keys().copied().collect()
    }

    /// Removes and returns `flow`'s aggregate entry.
    ///
    /// The parallel split moves each flow's accumulator to the one shard
    /// that writes its service-side fields (the flow's **last** hop), so
    /// `delay_sum` keeps accumulating incrementally on its single writer.
    /// A checkpointed master with non-zero prefix stats then merges back
    /// bit-identically: every other shard contributes `+ 0.0` to the sum
    /// instead of forcing a re-associated `prefix + partial` addition.
    pub fn extract_flow(&mut self, flow: u32) -> Option<FlowStats> {
        self.flows.remove(&flow)
    }

    /// Installs `stats` as `flow`'s aggregate entry — the receiving end of
    /// [`SimStats::extract_flow`]. Any existing entry is replaced.
    pub fn seed_flow(&mut self, flow: u32, stats: FlowStats) {
        self.flows.insert(flow, stats);
    }

    /// Moves out the captured trace for `flow`, leaving the registration
    /// in place (an empty vector) so future records are still captured.
    pub fn extract_trace(&mut self, flow: u32) -> Vec<ServiceRecord> {
        self.traced
            .get_mut(&flow)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Seeds `flow`'s trace with `records` (the prefix from a checkpointed
    /// run segment); newly captured records append after them. The
    /// receiving end of [`SimStats::extract_trace`].
    pub fn seed_trace(&mut self, flow: u32, records: Vec<ServiceRecord>) {
        self.traced.insert(flow, records);
    }

    /// Folds `other` into `self` **exactly** (no approximation): counters
    /// sum, extrema take the maximum, and per-flow traces concatenate.
    ///
    /// This is the shard-merge of parallel execution, and it reproduces
    /// the sequential totals bit-for-bit because every field is either an
    /// order-free integer sum, or written by exactly one shard per flow:
    /// `delay_sum`/`delay_max`/`last_departure` and the trace records come
    /// only from `record_service`, which runs at a flow's **last** hop —
    /// a single link, hence a single shard.
    pub fn merge_from(&mut self, other: SimStats) {
        for (flow, f) in other.flows {
            let e = self.flows.entry(flow).or_default();
            e.packets += f.packets;
            e.bytes += f.bytes;
            e.drops += f.drops;
            e.drop_bytes += f.drop_bytes;
            e.offered_packets += f.offered_packets;
            e.offered_bytes += f.offered_bytes;
            e.accepted_packets += f.accepted_packets;
            e.accepted_bytes += f.accepted_bytes;
            e.fault_drops += f.fault_drops;
            e.fault_drop_bytes += f.fault_drop_bytes;
            e.purged_packets += f.purged_packets;
            e.purged_bytes += f.purged_bytes;
            e.delay_sum += f.delay_sum;
            if f.delay_max > e.delay_max {
                e.delay_max = f.delay_max;
            }
            if f.last_departure > e.last_departure {
                e.last_departure = f.last_departure;
            }
        }
        for (flow, mut tr) in other.traced {
            self.traced.entry(flow).or_default().append(&mut tr);
        }
        self.total_bytes += other.total_bytes;
        self.total_packets += other.total_packets;
        if other.last_departure > self.last_departure {
            self.last_departure = other.last_departure;
        }
    }

    /// Serializes the collector — aggregates, trace registrations, and
    /// captured trace records — for an epoch checkpoint.
    pub fn save_state(&self) -> Value {
        Value::map(vec![
            (
                "flows",
                Value::List(
                    self.flows
                        .iter()
                        .map(|(&flow, f)| Value::List(vec![Value::U64(u64::from(flow)), f.save()]))
                        .collect(),
                ),
            ),
            (
                "traced",
                Value::List(
                    self.traced
                        .iter()
                        .map(|(&flow, records)| {
                            Value::List(vec![
                                Value::U64(u64::from(flow)),
                                Value::List(records.iter().map(ServiceRecord::save).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total_bytes", Value::U64(self.total_bytes)),
            ("total_packets", Value::U64(self.total_packets)),
            ("last_departure", Value::F64(self.last_departure)),
        ])
    }

    /// Restores state saved by [`SimStats::save_state`], replacing the
    /// current contents wholesale.
    pub fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let mut flows = BTreeMap::new();
        for pair in state.get("flows")?.items()? {
            let fields = pair.items()?;
            if fields.len() != 2 {
                return Err(SnapError {
                    at: 0,
                    what: format!("flow entry has {} fields, expected 2", fields.len()),
                });
            }
            flows.insert(fields[0].as_u32()?, FlowStats::load(&fields[1])?);
        }
        let mut traced = BTreeMap::new();
        for pair in state.get("traced")?.items()? {
            let fields = pair.items()?;
            if fields.len() != 2 {
                return Err(SnapError {
                    at: 0,
                    what: format!("trace entry has {} fields, expected 2", fields.len()),
                });
            }
            let mut records = Vec::new();
            for rv in fields[1].items()? {
                records.push(ServiceRecord::load(rv)?);
            }
            traced.insert(fields[0].as_u32()?, records);
        }
        self.flows = flows;
        self.traced = traced;
        self.total_bytes = state.get("total_bytes")?.as_u64()?;
        self.total_packets = state.get("total_packets")?.as_u64()?;
        self.last_departure = state.get("last_departure")?.as_f64()?;
        Ok(())
    }
}

/// The paper's §5.2 bandwidth measurement: throughput is accumulated in
/// fixed windows (50 ms in the paper) and smoothed with an exponential
/// average across windows.
#[derive(Debug, Clone)]
pub struct BandwidthEstimator {
    window: f64,
    alpha: f64,
    origin: f64,
    /// Bytes accumulated in the currently open window.
    acc_bytes: f64,
    /// Index of the currently open window.
    cur_window: u64,
    ema_bps: f64,
    /// `(window end time, smoothed bits/s)` samples.
    samples: Vec<(f64, f64)>,
}

impl BandwidthEstimator {
    /// Creates an estimator with the given window length (the paper uses
    /// 50 ms) and smoothing factor `alpha` (weight of the newest window).
    pub fn new(origin: f64, window: f64, alpha: f64) -> Self {
        assert!(window > 0.0 && (0.0..=1.0).contains(&alpha));
        BandwidthEstimator {
            window,
            alpha,
            origin,
            acc_bytes: 0.0,
            cur_window: 0,
            ema_bps: 0.0,
            samples: Vec::new(),
        }
    }

    /// Accounts `bytes` delivered at time `t` (must be non-decreasing).
    pub fn add(&mut self, t: f64, bytes: u64) {
        self.roll_to(t);
        self.acc_bytes += bytes as f64;
    }

    /// Closes every window ending at or before `t`.
    fn roll_to(&mut self, t: f64) {
        // lint:allow(L005): floor().max(0.0) is a non-negative window
        // count, far below u64::MAX for any simulated horizon
        let target = ((t - self.origin) / self.window).floor().max(0.0) as u64;
        while self.cur_window < target {
            let inst = self.acc_bytes * 8.0 / self.window;
            self.ema_bps = self.alpha * inst + (1.0 - self.alpha) * self.ema_bps;
            self.cur_window += 1;
            self.samples.push((
                self.origin + self.cur_window as f64 * self.window,
                self.ema_bps,
            ));
            self.acc_bytes = 0.0;
        }
    }

    /// Flushes windows up to `t` and returns the sample series
    /// `(window end, smoothed bits/s)`.
    pub fn finish(mut self, t: f64) -> Vec<(f64, f64)> {
        self.roll_to(t);
        self.samples
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_and_traces() {
        let mut s = SimStats::new();
        s.trace_flow(7);
        s.record_service(ServiceRecord {
            id: 1,
            flow: 7,
            len_bytes: 100,
            arrival: 0.0,
            start: 0.5,
            end: 1.0,
        });
        s.record_service(ServiceRecord {
            id: 2,
            flow: 8,
            len_bytes: 200,
            arrival: 0.0,
            start: 1.0,
            end: 3.0,
        });
        let dropped = Packet::new(3, 8, 300, 3.5);
        s.record_arrival(&dropped);
        s.record_drop(&dropped);
        assert_eq!(s.flow(7).packets, 1);
        assert_eq!(s.flow(7).delay_max, 1.0);
        assert_eq!(s.flow(8).drops, 1);
        assert_eq!(s.flow(8).drop_bytes, 300);
        assert_eq!(s.flow(8).offered_bytes, 300);
        assert_eq!(s.flow(8).loss_rate(), 1.0);
        assert_eq!(s.flow(7).loss_rate(), 0.0);
        assert_eq!(s.flow(8).delay_max, 3.0);
        assert_eq!(s.trace(7).len(), 1);
        assert_eq!(s.trace(8).len(), 0); // not traced
        assert_eq!(s.total_bytes, 300);
        assert_eq!(s.flows(), vec![7, 8]);
    }

    #[test]
    fn accounting_balance_detects_leaks() {
        let mut s = SimStats::new();
        let p1 = Packet::new(1, 7, 100, 0.0);
        let p2 = Packet::new(2, 7, 200, 1.0);
        let p3 = Packet::new(3, 7, 300, 2.0);
        s.record_arrival(&p1);
        s.record_arrival(&p2);
        s.record_arrival(&p3);
        s.record_accept(&p1);
        s.record_accept(&p2);
        s.record_drop(&p3);
        s.record_service(ServiceRecord {
            id: 1,
            flow: 7,
            len_bytes: 100,
            arrival: 0.0,
            start: 0.0,
            end: 0.5,
        });
        // p2 accepted but unserved: balanced only if reported as queued.
        assert!(s.accounting_balanced(200).is_ok());
        assert!(s.accounting_balanced(0).is_err());
        // A purge moves p2 out of the queue but keeps the books straight.
        s.record_purge(&p2);
        assert!(s.accounting_balanced(0).is_ok());
        // An arrival that is neither accepted nor dropped is a leak.
        s.record_arrival(&Packet::new(4, 7, 400, 3.0));
        assert!(s.accounting_balanced(0).is_err());
    }

    #[test]
    fn bandwidth_windows_smooth() {
        // 1-second windows, alpha 0.5; 1000 bytes in each of the first two
        // windows, then nothing.
        let mut b = BandwidthEstimator::new(0.0, 1.0, 0.5);
        b.add(0.2, 500);
        b.add(0.7, 500);
        b.add(1.5, 1000);
        let samples = b.finish(4.0);
        // Window 1 inst = 8000 bps -> ema 4000; window 2 inst 8000 ->
        // ema 6000; windows 3,4 inst 0 -> 3000, 1500.
        assert_eq!(samples.len(), 4);
        assert!((samples[0].1 - 4000.0).abs() < 1e-9);
        assert!((samples[1].1 - 6000.0).abs() < 1e-9);
        assert!((samples[2].1 - 3000.0).abs() < 1e-9);
        assert!((samples[3].1 - 1500.0).abs() < 1e-9);
        assert!((samples[3].0 - 4.0).abs() < 1e-12);
    }
}
