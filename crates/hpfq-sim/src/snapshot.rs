//! Deterministic whole-network checkpoints.
//!
//! [`Network::snapshot`] captures *everything* the event loop's future
//! depends on — per-link hierarchies and transmission state, the event
//! queue with its content-derived tie-break keys, statistics, ledgers,
//! escalation state, source generators (RNG streams, plan cursors), and
//! the fault injector — as one [`Value`] tree. The tree serializes
//! byte-deterministically ([`Value::to_bytes`]), so two identical runs
//! checkpointed at the same instant produce identical bytes.
//!
//! The proof obligation the format is designed around:
//!
//! ```text
//! run(0..T)  ≡  run(0..t) → snapshot → restore → run(t..T)
//! ```
//!
//! on statistics, service records, ledgers, and the merged trace. The
//! crash-contained parallel runtime leans on this: a supervisor
//! checkpoints the merged master at conservative-epoch boundaries and
//! rolls every shard back to the last checkpoint when one panics.
//!
//! Snapshots are taken on *full* networks (never on one shard of a
//! parallel run — the supervisor checkpoints the merged master between
//! stints). Restoring accepts three situations:
//!
//! * the same network object later in its life (rollback) — churn the
//!   live tree accrued after the checkpoint is discarded;
//! * a freshly rebuilt network with the same topology (resume from a
//!   persisted snapshot) — churn the snapshot accrued after the build is
//!   re-created;
//! * the degenerate identity restore.

use hpfq_core::{HpfqError, NodeId, NodeScheduler, Packet};
use hpfq_obs::snap::{SnapError, Value};
use hpfq_obs::Observer;

use crate::network::{
    DetachReason, Hop, LinkLedger, NetEvent, Network, Route, SimCommand, SourceSlot,
};
use crate::source::load_source;

/// Format version stamped into every snapshot.
const SNAPSHOT_VERSION: u64 = 1;

fn err(what: String) -> SnapError {
    SnapError { at: 0, what }
}

fn save_opt_u64(v: Option<u64>) -> Value {
    match v {
        Some(n) => Value::U64(n),
        None => Value::Null,
    }
}

fn load_opt_u64(v: &Value) -> Result<Option<u64>, SnapError> {
    if v.is_null() {
        Ok(None)
    } else {
        Ok(Some(v.as_u64()?))
    }
}

fn fixed_list(v: &Value, n: usize, what: &str) -> Result<Vec<Value>, SnapError> {
    let items = v.items()?;
    if items.len() != n {
        return Err(err(format!(
            "{what} has {} fields, expected {n}",
            items.len()
        )));
    }
    Ok(items.to_vec())
}

fn tagged(v: &Value, what: &str) -> Result<(String, Vec<Value>), SnapError> {
    let items = v.items()?;
    let Some((tag, rest)) = items.split_first() else {
        return Err(err(format!("{what} is an empty list")));
    };
    Ok((tag.as_str()?.to_string(), rest.to_vec()))
}

// --- ledgers -------------------------------------------------------------

pub(crate) fn save_ledger(l: &LinkLedger) -> Value {
    Value::List(vec![
        Value::U64(l.bytes_in),
        Value::U64(l.bytes_out),
        Value::U64(l.bytes_purged),
        Value::U64(l.packets_in),
        Value::U64(l.packets_out),
    ])
}

pub(crate) fn load_ledger(v: &Value) -> Result<LinkLedger, SnapError> {
    let f = fixed_list(v, 5, "link ledger")?;
    Ok(LinkLedger {
        bytes_in: f[0].as_u64()?,
        bytes_out: f[1].as_u64()?,
        bytes_purged: f[2].as_u64()?,
        packets_in: f[3].as_u64()?,
        packets_out: f[4].as_u64()?,
    })
}

// --- routes --------------------------------------------------------------

fn save_hop(h: &Hop) -> Value {
    Value::List(vec![
        Value::U64(h.link as u64),
        Value::U64(h.leaf.index() as u64),
        save_opt_u64(h.buffer_bytes),
        Value::F64(h.prop_delay),
    ])
}

fn load_hop(v: &Value) -> Result<Hop, SnapError> {
    let f = fixed_list(v, 4, "route hop")?;
    Ok(Hop {
        link: f[0].as_usize()?,
        leaf: NodeId(f[1].as_usize()?),
        buffer_bytes: load_opt_u64(&f[2])?,
        prop_delay: f[3].as_f64()?,
    })
}

pub(crate) fn save_route(r: &Route) -> Value {
    Value::List(r.hops.iter().map(save_hop).collect())
}

pub(crate) fn load_route(v: &Value) -> Result<Route, SnapError> {
    let hops = v
        .items()?
        .iter()
        .map(load_hop)
        .collect::<Result<Vec<_>, _>>()?;
    if hops.is_empty() {
        return Err(err("route has no hops".into()));
    }
    // Bypasses `Route::new` — its panicking asserts are for hand-built
    // routes; a snapshot route already passed them when first built.
    Ok(Route { hops })
}

// --- detach reasons ------------------------------------------------------

fn save_reason(r: &DetachReason) -> Value {
    match r {
        DetachReason::Quarantine { strikes } => Value::List(vec![
            Value::Str("quarantine".into()),
            Value::U64(u64::from(*strikes)),
        ]),
        DetachReason::Churn => Value::List(vec![Value::Str("churn".into())]),
    }
}

fn load_reason(v: &Value) -> Result<DetachReason, SnapError> {
    let (tag, rest) = tagged(v, "detach reason")?;
    match tag.as_str() {
        "quarantine" if rest.len() == 1 => Ok(DetachReason::Quarantine {
            strikes: rest[0].as_u32()?,
        }),
        "churn" if rest.is_empty() => Ok(DetachReason::Churn),
        _ => Err(err(format!("unknown detach reason '{tag}'"))),
    }
}

// --- scheduler errors ----------------------------------------------------

/// The packet-validation reasons [`Packet::validate`] can emit. Snapshots
/// store the string; load maps it back to the `'static` original.
const PACKET_REASONS: [&str; 4] = [
    "zero length",
    "length exceeds MAX_PACKET_BYTES",
    "non-finite arrival time",
    "non-finite birth time",
];

pub(crate) fn save_error(e: &HpfqError) -> Value {
    let (tag, fields): (&str, Vec<Value>) = match e {
        HpfqError::InvalidShare(s) => ("invalid_share", vec![Value::F64(*s)]),
        HpfqError::ShareOverflow { node, sum } => (
            "share_overflow",
            vec![Value::U64(*node as u64), Value::F64(*sum)],
        ),
        HpfqError::UnknownNode(n) => ("unknown_node", vec![Value::U64(*n as u64)]),
        HpfqError::NotALeaf(n) => ("not_a_leaf", vec![Value::U64(*n as u64)]),
        HpfqError::NotInternal(n) => ("not_internal", vec![Value::U64(*n as u64)]),
        HpfqError::InvalidRate(r) => ("invalid_rate", vec![Value::F64(*r)]),
        HpfqError::InvalidPacket { id, flow, reason } => (
            "invalid_packet",
            vec![
                Value::U64(*id),
                Value::U64(u64::from(*flow)),
                Value::Str((*reason).to_string()),
            ],
        ),
        HpfqError::NodeDetached(n) => ("node_detached", vec![Value::U64(*n as u64)]),
        HpfqError::HasChildren(n) => ("has_children", vec![Value::U64(*n as u64)]),
    };
    let mut items = vec![Value::Str(tag.into())];
    items.extend(fields);
    Value::List(items)
}

pub(crate) fn load_error(v: &Value) -> Result<HpfqError, SnapError> {
    let (tag, rest) = tagged(v, "scheduler error")?;
    let one_usize = |rest: &[Value]| -> Result<usize, SnapError> {
        if rest.len() != 1 {
            return Err(err(format!(
                "error '{tag}' wants 1 field, got {}",
                rest.len()
            )));
        }
        rest[0].as_usize()
    };
    match tag.as_str() {
        "invalid_share" if rest.len() == 1 => Ok(HpfqError::InvalidShare(rest[0].as_f64()?)),
        "share_overflow" if rest.len() == 2 => Ok(HpfqError::ShareOverflow {
            node: rest[0].as_usize()?,
            sum: rest[1].as_f64()?,
        }),
        "unknown_node" => Ok(HpfqError::UnknownNode(one_usize(&rest)?)),
        "not_a_leaf" => Ok(HpfqError::NotALeaf(one_usize(&rest)?)),
        "not_internal" => Ok(HpfqError::NotInternal(one_usize(&rest)?)),
        "invalid_rate" if rest.len() == 1 => Ok(HpfqError::InvalidRate(rest[0].as_f64()?)),
        "invalid_packet" if rest.len() == 3 => {
            let reason_str = rest[2].as_str()?;
            let reason = PACKET_REASONS
                .iter()
                .find(|r| **r == reason_str)
                .copied()
                .ok_or_else(|| err(format!("unknown packet reason '{reason_str}'")))?;
            Ok(HpfqError::InvalidPacket {
                id: rest[0].as_u64()?,
                flow: rest[1].as_u32()?,
                reason,
            })
        }
        "node_detached" => Ok(HpfqError::NodeDetached(one_usize(&rest)?)),
        "has_children" => Ok(HpfqError::HasChildren(one_usize(&rest)?)),
        _ => Err(err(format!("unknown scheduler error '{tag}'"))),
    }
}

// --- commands ------------------------------------------------------------

fn save_command(cmd: &SimCommand) -> Result<Value, SnapError> {
    Ok(match cmd {
        SimCommand::SetLinkRate(bps) => {
            Value::List(vec![Value::Str("set_rate".into()), Value::F64(*bps)])
        }
        SimCommand::SetLinkRateOn { link, bps } => Value::List(vec![
            Value::Str("set_rate_on".into()),
            Value::U64(*link as u64),
            Value::F64(*bps),
        ]),
        SimCommand::AddFlow {
            parent,
            phi,
            flow,
            source,
            buffer_bytes,
            delivery_delay,
        } => Value::List(vec![
            Value::Str("add_flow".into()),
            Value::U64(parent.index() as u64),
            Value::F64(*phi),
            Value::U64(u64::from(*flow)),
            source.save_state()?,
            save_opt_u64(*buffer_bytes),
            Value::F64(*delivery_delay),
        ]),
        SimCommand::RemoveFlow(flow) => Value::List(vec![
            Value::Str("remove_flow".into()),
            Value::U64(u64::from(*flow)),
        ]),
    })
}

fn load_command(v: &Value) -> Result<SimCommand, SnapError> {
    let (tag, rest) = tagged(v, "command")?;
    match tag.as_str() {
        "set_rate" if rest.len() == 1 => Ok(SimCommand::SetLinkRate(rest[0].as_f64()?)),
        "set_rate_on" if rest.len() == 2 => Ok(SimCommand::SetLinkRateOn {
            link: rest[0].as_usize()?,
            bps: rest[1].as_f64()?,
        }),
        "add_flow" if rest.len() == 6 => Ok(SimCommand::AddFlow {
            parent: NodeId(rest[0].as_usize()?),
            phi: rest[1].as_f64()?,
            flow: rest[2].as_u32()?,
            source: load_source(&rest[3])?,
            buffer_bytes: load_opt_u64(&rest[4])?,
            delivery_delay: rest[5].as_f64()?,
        }),
        "remove_flow" if rest.len() == 1 => Ok(SimCommand::RemoveFlow(rest[0].as_u32()?)),
        _ => Err(err(format!("unknown command '{tag}'"))),
    }
}

// --- events --------------------------------------------------------------

pub(crate) fn save_event(ev: &NetEvent) -> Result<Value, SnapError> {
    Ok(match ev {
        NetEvent::Wake(i) => Value::List(vec![Value::Str("wake".into()), Value::U64(*i as u64)]),
        NetEvent::TxComplete { link, epoch } => Value::List(vec![
            Value::Str("tx".into()),
            Value::U64(*link as u64),
            Value::U64(*epoch),
        ]),
        NetEvent::Arrive { src, hop, pkt } => Value::List(vec![
            Value::Str("arrive".into()),
            Value::U64(*src as u64),
            Value::U64(*hop as u64),
            pkt.save(),
        ]),
        NetEvent::Deliver(i, pkt) => Value::List(vec![
            Value::Str("deliver".into()),
            Value::U64(*i as u64),
            pkt.save(),
        ]),
        NetEvent::Command(cmd) => Value::List(vec![Value::Str("cmd".into()), save_command(cmd)?]),
        NetEvent::Detach { src, hop, reason } => Value::List(vec![
            Value::Str("detach".into()),
            Value::U64(*src as u64),
            Value::U64(*hop as u64),
            save_reason(reason),
        ]),
    })
}

pub(crate) fn load_event(v: &Value) -> Result<NetEvent, SnapError> {
    let (tag, rest) = tagged(v, "event")?;
    match tag.as_str() {
        "wake" if rest.len() == 1 => Ok(NetEvent::Wake(rest[0].as_usize()?)),
        "tx" if rest.len() == 2 => Ok(NetEvent::TxComplete {
            link: rest[0].as_usize()?,
            epoch: rest[1].as_u64()?,
        }),
        "arrive" if rest.len() == 3 => Ok(NetEvent::Arrive {
            src: rest[0].as_usize()?,
            hop: rest[1].as_usize()?,
            pkt: Packet::load(&rest[2])?,
        }),
        "deliver" if rest.len() == 2 => Ok(NetEvent::Deliver(
            rest[0].as_usize()?,
            Packet::load(&rest[1])?,
        )),
        "cmd" if rest.len() == 1 => Ok(NetEvent::Command(load_command(&rest[0])?)),
        "detach" if rest.len() == 3 => Ok(NetEvent::Detach {
            src: rest[0].as_usize()?,
            hop: rest[1].as_usize()?,
            reason: load_reason(&rest[2])?,
        }),
        _ => Err(err(format!("unknown event '{tag}'"))),
    }
}

// --- the network ---------------------------------------------------------

impl<S: NodeScheduler, O: Observer> Network<S, O> {
    /// Captures the complete simulation state as a [`Value`] tree.
    ///
    /// Takes `&mut self` because enumerating the event queue drains and
    /// re-schedules it (the queue's contents are otherwise opaque); the
    /// re-insertion happens in drained order, so FIFO tie-breaking is
    /// preserved and the network's behaviour is unchanged — snapshotting
    /// is observationally a no-op.
    ///
    /// Errors if this network is currently one shard of a parallel run
    /// (shards hold only part of the state; checkpoint the merged master
    /// instead), or if an installed source or fault injector does not
    /// support checkpointing.
    pub fn snapshot(&mut self) -> Result<Value, SnapError> {
        if self.shard.is_some() {
            return Err(err(
                "cannot snapshot one shard of a parallel run; checkpoint the merged master".into(),
            ));
        }
        let now = self.engine.now();
        let mut links = Vec::with_capacity(self.links.len());
        for link in &self.links {
            links.push(match link {
                None => Value::Null,
                Some(l) => Value::map(vec![
                    ("server", l.server.save_state()),
                    ("obs", l.server.observer().mark()),
                    ("rate", Value::F64(l.rate)),
                    ("tx_start", Value::F64(l.tx_start)),
                    ("tx_epoch", Value::U64(l.tx_epoch)),
                    ("tx_remaining_bits", Value::F64(l.tx_remaining_bits)),
                    ("tx_updated", Value::F64(l.tx_updated)),
                    (
                        "train",
                        Value::List(
                            l.train
                                .iter()
                                .map(|(s, p)| Value::List(vec![Value::F64(*s), p.save()]))
                                .collect(),
                        ),
                    ),
                    ("ledger", save_ledger(&l.ledger)),
                ]),
            });
        }
        // Enumerate the queue: drain in firing order, serialize, put every
        // entry straight back. All pending times are >= now, so the
        // re-schedule neither clamps nor reorders. Every drained event is
        // re-scheduled even when serialization fails partway — the error
        // must not eat the queue.
        let drained = self.engine.drain_ordered();
        let mut events = Vec::with_capacity(drained.len());
        let mut save_err = None;
        for (t, minor, ev) in drained {
            if save_err.is_none() {
                match save_event(&ev) {
                    Ok(v) => events.push(Value::List(vec![Value::F64(t), Value::U64(minor), v])),
                    Err(e) => save_err = Some(e),
                }
            }
            self.engine.schedule_keyed(t, minor, ev);
        }
        if let Some(e) = save_err {
            return Err(e);
        }
        let sources = self
            .sources
            .iter()
            .map(|slot| {
                Ok(Value::map(vec![
                    (
                        "src",
                        match &slot.src {
                            Some(s) => s.save_state()?,
                            None => Value::Null,
                        },
                    ),
                    ("route", save_route(&slot.route)),
                    ("flow", Value::U64(u64::from(slot.flow))),
                    ("live", Value::Bool(slot.live)),
                    ("started", Value::Bool(slot.started)),
                ]))
            })
            .collect::<Result<Vec<_>, SnapError>>()?;
        let flow_owner = self
            .flow_owner
            .iter()
            .map(|(&flow, &idx)| {
                Value::List(vec![Value::U64(u64::from(flow)), Value::U64(idx as u64)])
            })
            .collect();
        let cmd_errors = self
            .command_errors
            .iter()
            .map(|(t, e)| Value::List(vec![Value::F64(*t), save_error(e)]))
            .collect();
        let injector = match &self.injector {
            Some(inj) => inj.save_state()?,
            None => Value::Null,
        };
        Ok(Value::map(vec![
            ("v", Value::U64(SNAPSHOT_VERSION)),
            ("now", Value::F64(now)),
            ("links", Value::List(links)),
            ("events", Value::List(events)),
            ("sources", Value::List(sources)),
            ("flow_owner", Value::List(flow_owner)),
            ("stats", self.stats.save_state()),
            (
                "policy",
                Value::List(vec![
                    Value::U64(u64::from(self.policy.quarantine_after)),
                    Value::U64(u64::from(self.policy.halt_after)),
                ]),
            ),
            ("escalation", self.escalation.save_state()),
            ("halted", Value::Bool(self.halted)),
            ("inflight", Value::I64(self.inflight_bytes)),
            ("cmd_errors", Value::List(cmd_errors)),
            ("injector", injector),
        ]))
    }

    /// Restores state captured by [`Network::snapshot`].
    ///
    /// The target must have the same link topology (same `add_link`
    /// sequence with identically configured hierarchies). Source slots and
    /// hierarchy leaves may differ by *churn*: a rollback discards slots
    /// and leaves the live network gained after the checkpoint, a resume
    /// re-creates ones the snapshot gained after the target was built. An
    /// installed fault injector must match the snapshot (state is loaded
    /// into it; an injector cannot be conjured from a snapshot alone).
    ///
    /// On error the network may be partially restored; callers treat that
    /// as fatal for the run (the crash-recovery supervisor escalates to a
    /// typed halt).
    pub fn restore(&mut self, snap: &Value) -> Result<(), SnapError> {
        if self.shard.is_some() {
            return Err(err("cannot restore into a shard of a parallel run".into()));
        }
        let version = snap.get("v")?.as_u64()?;
        if version != SNAPSHOT_VERSION {
            return Err(err(format!(
                "snapshot version {version} unsupported (expected {SNAPSHOT_VERSION})"
            )));
        }
        let now = snap.get("now")?.as_f64()?;
        let links_v = snap.get("links")?.items()?;
        if links_v.len() != self.links.len() {
            return Err(err(format!(
                "snapshot has {} links but the network has {}",
                links_v.len(),
                self.links.len()
            )));
        }
        for (i, lv) in links_v.iter().enumerate() {
            let Some(l) = self.links[i].as_mut() else {
                return Err(err(format!("network link {i} is a shard hole")));
            };
            if lv.is_null() {
                return Err(err(format!("snapshot link {i} is a shard hole")));
            }
            l.server.load_state(lv.get("server")?)?;
            l.server.observer_mut().rewind(lv.get("obs")?);
            l.rate = lv.get("rate")?.as_f64()?;
            l.tx_start = lv.get("tx_start")?.as_f64()?;
            l.tx_epoch = lv.get("tx_epoch")?.as_u64()?;
            l.tx_remaining_bits = lv.get("tx_remaining_bits")?.as_f64()?;
            l.tx_updated = lv.get("tx_updated")?.as_f64()?;
            l.train.clear();
            for entry in lv.get("train")?.items()? {
                let f = fixed_list(entry, 2, "train entry")?;
                l.train.push_back((f[0].as_f64()?, Packet::load(&f[1])?));
            }
            l.ledger = load_ledger(lv.get("ledger")?)?;
        }
        // Clock before queue: `schedule_keyed` clamps against `now`, so the
        // clock must be rolled back before snapshot events are re-inserted.
        let _ = self.engine.drain_ordered();
        self.engine.reset_to(now);
        for entry in snap.get("events")?.items()? {
            let f = fixed_list(entry, 3, "event entry")?;
            self.engine
                .schedule_keyed(f[0].as_f64()?, f[1].as_u64()?, load_event(&f[2])?);
        }
        // Source slots are append-only in both directions of time:
        // truncate rollback surplus, rebuild everything else wholesale
        // from the snapshot (generator state, cursors, RNG streams).
        let sources_v = snap.get("sources")?.items()?;
        self.sources.truncate(sources_v.len());
        for (i, sv) in sources_v.iter().enumerate() {
            let src = {
                let raw = sv.get("src")?;
                if raw.is_null() {
                    None
                } else {
                    Some(load_source(raw)?)
                }
            };
            let slot = SourceSlot {
                src,
                route: load_route(sv.get("route")?)?,
                flow: sv.get("flow")?.as_u32()?,
                live: sv.get("live")?.as_bool()?,
                started: sv.get("started")?.as_bool()?,
            };
            if i < self.sources.len() {
                self.sources[i] = slot;
            } else {
                self.sources.push(slot);
            }
        }
        self.flow_owner.clear();
        for pair in snap.get("flow_owner")?.items()? {
            let f = fixed_list(pair, 2, "flow-owner entry")?;
            self.flow_owner.insert(f[0].as_u32()?, f[1].as_usize()?);
        }
        self.stats.load_state(snap.get("stats")?)?;
        let policy = fixed_list(snap.get("policy")?, 2, "escalation policy")?;
        self.policy.quarantine_after = policy[0].as_u32()?;
        self.policy.halt_after = policy[1].as_u32()?;
        self.escalation.load_state(snap.get("escalation")?)?;
        self.halted = snap.get("halted")?.as_bool()?;
        self.inflight_bytes = snap.get("inflight")?.as_i64()?;
        self.command_errors.clear();
        for pair in snap.get("cmd_errors")?.items()? {
            let f = fixed_list(pair, 2, "command-error entry")?;
            self.command_errors
                .push((f[0].as_f64()?, load_error(&f[1])?));
        }
        let inj_state = snap.get("injector")?;
        match (&mut self.injector, inj_state.is_null()) {
            (None, true) => {}
            (Some(inj), false) => inj.load_state(inj_state)?,
            (None, false) => {
                return Err(err(
                    "snapshot carries fault-injector state but none is installed; \
                     install a matching injector before restoring"
                        .into(),
                ));
            }
            (Some(_), true) => {
                return Err(err(
                    "a fault injector is installed but the snapshot has none".into(),
                ));
            }
        }
        Ok(())
    }
}
