//! # hpfq-sim — discrete-event network simulator for H-PFQ experiments
//!
//! A discrete-event network simulator standing in for the modified MIT
//! NETSIM the paper used (§5). It drives H-PFQ [`hpfq_core::Hierarchy`]
//! instances as output-link schedulers — one per link of a multi-link
//! [`Network`], or the single-link [`Simulation`] front-end — on top of
//! the shared [`hpfq_events`] engine, and provides:
//!
//! * the paper's traffic sources — constant rate (PS-n), deterministic
//!   on/off (RT-1 and the §5.2 on/off sources), Poisson, multiplexed
//!   packet trains (CS-n) — plus trace replay and a greedy leaky-bucket
//!   source for delay-bound experiments ([`source`]);
//! * per-leaf drop-tail buffers and delivery notifications with a
//!   configurable one-way delay (the hook the TCP crate uses for ACK
//!   feedback);
//! * multi-link topologies ([`network`]): each link owns its own
//!   hierarchy, flows follow static per-hop [`Route`]s with propagation
//!   delays, and per-link conservation ledgers make multi-hop accounting
//!   checkable;
//! * measurement: per-packet service records, per-flow aggregates, and the
//!   exponentially-averaged windowed bandwidth estimator of §5.2
//!   ([`stats`]).
//!
//! Events at equal timestamps fire in scheduling order, so runs are fully
//! deterministic given source seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod parallel;
pub mod rng;
pub mod simulation;
pub mod snapshot;
pub mod source;
pub mod stats;

pub use network::{
    FaultInjector, Hop, LinkLedger, Network, NoFaults, PacketVerdict, Route, SimCommand, SourceId,
};
pub use parallel::{FallbackReason, ParallelReport, ShardFailure};
pub use rng::SmallRng;
pub use simulation::{Simulation, SourceConfig};
pub use source::{
    load_source, CbrSource, GreedyLbSource, PacketTrainSource, PeriodicOnOffSource, PoissonSource,
    ScheduledOnOffSource, Source, SourceOutput, TraceSource,
};
pub use stats::{BandwidthEstimator, FlowStats, ServiceRecord, SimStats};
