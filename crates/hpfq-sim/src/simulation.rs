//! The discrete-event engine: one output link driven by an H-PFQ
//! hierarchy, fed by [`Source`]s, measured by [`SimStats`].
//!
//! Event model (deterministic: ties fire in scheduling order):
//!
//! * `Wake(source)` — a source timer fires; emitted packets are enqueued at
//!   the source's leaf (subject to its drop-tail buffer) and the link
//!   starts transmitting if idle.
//! * `TxComplete` — the link finishes a packet: the hierarchy runs
//!   RESET-PATH / RESTART-NODE (pre-selecting the next head), the service
//!   is recorded, a `Deliver` is scheduled after the source's one-way
//!   delivery delay, and the next transmission starts immediately (work
//!   conservation).
//! * `Deliver(source, pkt)` — the packet reached its destination;
//!   closed-loop sources (TCP) use this for ACK clocking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hpfq_core::{vtime, Hierarchy, NodeId, NodeScheduler, Packet};
use hpfq_obs::{DropEvent, NoopObserver, Observer, PacketInfo};

use crate::source::{Source, SourceOutput};
use crate::stats::{ServiceRecord, SimStats};

/// Index of a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub usize);

/// Per-source attachment configuration.
#[derive(Debug, Clone, Copy)]
pub struct SourceConfig {
    /// Leaf of the hierarchy this source feeds.
    pub leaf: NodeId,
    /// Drop-tail buffer limit for that leaf in bytes (`None` = unbounded).
    pub buffer_bytes: Option<u64>,
    /// One-way delay from transmission completion to delivery notification
    /// (`on_delivered`); models the downstream path for ACK clocking.
    pub delivery_delay: f64,
}

impl SourceConfig {
    /// Open-loop attachment: unbounded buffer, no delivery notifications
    /// needed (delay 0; notifications are still generated but cheap).
    pub fn open_loop(leaf: NodeId) -> Self {
        SourceConfig {
            leaf,
            buffer_bytes: None,
            delivery_delay: 0.0,
        }
    }
}

#[derive(Debug)]
enum Event {
    Wake(usize),
    TxComplete,
    Deliver(usize, Packet),
}

/// Min-heap key: time, then sequence for FIFO tie-breaking.
#[derive(Debug, PartialEq)]
struct Key(f64, u64);

impl Eq for Key {}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0, self.1)
            .partial_cmp(&(other.0, other.1))
            // lint:allow(L002): schedule() only accepts finite times
            .expect("event times must not be NaN")
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A single-link simulation. Build the [`Hierarchy`] first, attach sources,
/// then [`Simulation::run`].
///
/// The hierarchy's [`Observer`] (second type parameter, default
/// [`NoopObserver`]) sees every scheduling event; the simulator adds the
/// events only it can know: exact transmission times and buffer drops.
pub struct Simulation<S: NodeScheduler, O: Observer = NoopObserver> {
    server: Hierarchy<S, O>,
    rate: f64,
    now: f64,
    queue: BinaryHeap<Reverse<(Key, usize)>>,
    /// Event arena. Fired slots are pushed onto `free` and reused, so
    /// memory is bounded by the maximum number of *outstanding* events,
    /// not the total ever scheduled.
    events: Vec<Option<Event>>,
    free: Vec<usize>,
    seq: u64,
    sources: Vec<(Box<dyn Source>, SourceConfig)>,
    /// Transmission start time of the in-flight packet.
    tx_start: f64,
    /// Statistics collector.
    pub stats: SimStats,
    /// Maps a flow id to the source that owns it (for delivery routing).
    flow_owner: std::collections::BTreeMap<u32, usize>,
}

impl<S: NodeScheduler, O: Observer> Simulation<S, O> {
    /// Wraps a fully built hierarchy into a simulation.
    pub fn new(server: Hierarchy<S, O>) -> Self {
        let rate = server.link_rate();
        Simulation {
            server,
            rate,
            now: 0.0,
            queue: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            seq: 0,
            sources: Vec::new(),
            tx_start: 0.0,
            stats: SimStats::new(),
            flow_owner: std::collections::BTreeMap::new(),
        }
    }

    /// Read access to the hierarchy (e.g. for queue inspection).
    pub fn server(&self) -> &Hierarchy<S, O> {
        &self.server
    }

    /// The hierarchy's observer (e.g. to read counters or recover a trace
    /// buffer after the run).
    pub fn observer(&self) -> &O {
        self.server.observer()
    }

    /// The hierarchy's observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        self.server.observer_mut()
    }

    /// Consumes the simulation, returning the observer.
    pub fn into_observer(self) -> O {
        self.server.into_observer()
    }

    /// Outstanding (scheduled, unfired) events — exposed for capacity
    /// diagnostics and the arena-reuse tests.
    pub fn outstanding_events(&self) -> usize {
        self.events.len() - self.free.len()
    }

    /// Size of the event arena (high-water mark of outstanding events).
    pub fn event_arena_len(&self) -> usize {
        self.events.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Attaches a source that feeds `cfg.leaf`. `flow` is the flow id the
    /// source stamps on its packets (used to route delivery notifications
    /// back to it).
    pub fn add_source(
        &mut self,
        flow: u32,
        source: impl Source + 'static,
        cfg: SourceConfig,
    ) -> SourceId {
        assert!(
            self.server.is_leaf(cfg.leaf),
            "source must be attached to a leaf"
        );
        let idx = self.sources.len();
        self.sources.push((Box::new(source), cfg));
        self.flow_owner.insert(flow, idx);
        SourceId(idx)
    }

    fn schedule(&mut self, t: f64, ev: Event) {
        debug_assert!(vtime::approx_ge(t, self.now), "scheduling into the past");
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.events[slot].is_none(), "free slot still occupied");
                self.events[slot] = Some(ev);
                slot
            }
            None => {
                self.events.push(Some(ev));
                self.events.len() - 1
            }
        };
        self.queue
            .push(Reverse((Key(t.max(self.now), self.seq), slot)));
    }

    fn apply_output(&mut self, src_idx: usize, out: SourceOutput) {
        for w in out.wakes {
            self.schedule(w, Event::Wake(src_idx));
        }
        for mut pkt in out.packets {
            let cfg = self.sources[src_idx].1;
            pkt.arrival = self.now;
            self.stats.record_arrival(&pkt);
            if let Some(limit) = cfg.buffer_bytes {
                if self.server.leaf_queue_bytes(cfg.leaf) + u64::from(pkt.len_bytes) > limit {
                    self.stats.record_drop(&pkt);
                    if O::ENABLED {
                        let ev = DropEvent {
                            time: self.now,
                            leaf: cfg.leaf.index(),
                            pkt: PacketInfo {
                                id: pkt.id,
                                flow: pkt.flow,
                                len_bytes: pkt.len_bytes,
                                arrival: pkt.arrival,
                            },
                            queue_bytes: self.server.leaf_queue_bytes(cfg.leaf),
                        };
                        self.server.observer_mut().on_drop(&ev);
                    }
                    continue;
                }
            }
            self.server.enqueue(cfg.leaf, pkt);
        }
        self.try_start();
    }

    fn try_start(&mut self) {
        if !self.server.is_transmitting() && self.server.has_pending() {
            let now = self.now;
            let pkt = self
                .server
                .start_transmission_at(now)
                // lint:allow(L002): has_pending() was checked just above
                .expect("has_pending guaranteed a packet");
            self.tx_start = self.now;
            self.schedule(self.now + pkt.tx_time(self.rate), Event::TxComplete);
        }
    }

    /// Runs the simulation until `horizon` seconds (events strictly after
    /// the horizon are left unprocessed) or until no events remain.
    pub fn run(&mut self, horizon: f64) {
        // Start every source.
        for i in 0..self.sources.len() {
            let out = self.sources[i].0.start();
            debug_assert!(out.packets.is_empty(), "start() must not emit packets");
            self.apply_output(i, out);
        }
        while let Some(&Reverse((Key(t, _), _))) = self.queue.peek() {
            if t > horizon {
                break;
            }
            // lint:allow(L002): peek() just returned this entry
            let Reverse((Key(t, _), slot)) = self.queue.pop().expect("peeked");
            self.now = t;
            // lint:allow(L002): each queue entry owns its slot until fired
            let ev = self.events[slot].take().expect("event fired once");
            self.free.push(slot);
            match ev {
                Event::Wake(i) => {
                    let out = self.sources[i].0.on_wake(t);
                    self.apply_output(i, out);
                }
                Event::TxComplete => {
                    let pkt = self.server.complete_transmission_at(t);
                    self.stats.record_service(ServiceRecord {
                        id: pkt.id,
                        flow: pkt.flow,
                        len_bytes: pkt.len_bytes,
                        arrival: pkt.arrival,
                        start: self.tx_start,
                        end: t,
                    });
                    if let Some(&owner) = self.flow_owner.get(&pkt.flow) {
                        let delay = self.sources[owner].1.delivery_delay;
                        self.schedule(t + delay, Event::Deliver(owner, pkt));
                    }
                    self.try_start();
                }
                Event::Deliver(i, pkt) => {
                    let out = self.sources[i].0.on_delivered(t, &pkt);
                    self.apply_output(i, out);
                }
            }
        }
        // Drop any unfired events past the horizon so a subsequent `run`
        // with a larger horizon continues cleanly.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CbrSource, GreedyLbSource};
    use hpfq_core::Wf2qPlus;

    fn server(rate: f64) -> Hierarchy<Wf2qPlus> {
        Hierarchy::new_with(rate, Wf2qPlus::new)
    }

    /// Two equal CBR flows at half the link rate each: no queueing beyond
    /// one packet, all traffic delivered.
    #[test]
    fn two_cbr_flows_fit() {
        let mut h = server(16_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 100.0),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 1000, 8000.0, 0.0, 100.0),
            SourceConfig::open_loop(b),
        );
        sim.run(10.0);
        let fa = sim.stats.flow(0);
        let fb = sim.stats.flow(1);
        assert!(fa.packets >= 9 && fb.packets >= 9, "{fa:?} {fb:?}");
        // Each packet takes 0.5 s on the wire; worst-case head-of-line wait
        // is one competing packet.
        assert!(fa.delay_max <= 1.0 + 1e-9, "{}", fa.delay_max);
        assert!(fb.delay_max <= 1.0 + 1e-9);
    }

    /// A greedy leaky-bucket flow against a backlogged competitor respects
    /// the WF²Q+ delay bound σ/r_i + L_max/r (Theorem 4(3)).
    #[test]
    fn delay_bound_holds_depth_one() {
        let rate = 80_000.0;
        let mut h = server(rate);
        let root = h.root();
        let a = h.add_leaf(root, 0.25).unwrap(); // r_a = 20 kbit/s
        let b = h.add_leaf(root, 0.75).unwrap();
        let mut sim = Simulation::new(h);
        // sigma = 5 packets of 1000 bytes, rho = r_a.
        sim.add_source(
            0,
            GreedyLbSource::new(0, 1000, 5000, 20_000.0, 0.0, 50.0),
            SourceConfig::open_loop(a),
        );
        // Competitor saturates its share.
        sim.add_source(
            1,
            CbrSource::new(1, 1000, 70_000.0, 0.0, 50.0),
            SourceConfig::open_loop(b),
        );
        sim.stats.trace_flow(0);
        sim.run(60.0);
        let sigma_bits = 5000.0 * 8.0;
        let bound = sigma_bits / 20_000.0 + 8000.0 / rate;
        for rec in sim.stats.trace(0) {
            assert!(
                rec.delay() <= bound + 1e-9,
                "packet {} delayed {} > bound {}",
                rec.id,
                rec.delay(),
                bound
            );
        }
        assert!(sim.stats.flow(0).packets > 100);
    }

    /// Drop-tail buffers drop exactly the overflow.
    #[test]
    fn buffer_drops() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        // Burst of 10 packets into a 3-packet buffer; service drains one
        // per second.
        sim.add_source(
            0,
            GreedyLbSource::new(0, 1000, 10_000, 1.0, 0.0, 0.5),
            SourceConfig {
                leaf: a,
                buffer_bytes: Some(3000),
                delivery_delay: 0.0,
            },
        );
        sim.run(100.0);
        let f = sim.stats.flow(0);
        assert_eq!(f.packets, 3);
        assert_eq!(f.drops, 7);
    }

    /// The event arena reuses fired slots: a long run with a bounded number
    /// of concurrently outstanding events must not grow memory linearly
    /// with the packet count.
    #[test]
    fn event_arena_stays_bounded() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 500, 6000.0, 0.0, 1e9),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 500, 6000.0, 0.0, 1e9),
            SourceConfig::open_loop(b),
        );
        sim.run(500.0);
        // ~1500 packets served; per live source there is at most one wake,
        // one in-flight TxComplete, and one pending Deliver at a time.
        assert!(sim.stats.total_packets > 900, "{}", sim.stats.total_packets);
        assert!(
            sim.event_arena_len() <= 16,
            "event arena grew to {} slots for {} packets",
            sim.event_arena_len(),
            sim.stats.total_packets
        );
        assert!(sim.outstanding_events() <= sim.event_arena_len());
    }

    /// Work conservation: link is never idle while traffic is queued —
    /// verified by total throughput equal to capacity over a saturated
    /// window.
    #[test]
    fn work_conserving_throughput() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        // Both flows offer 1.5x their share: link saturated.
        sim.add_source(
            0,
            CbrSource::new(0, 500, 6000.0, 0.0, 1000.0),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 500, 6000.0, 0.0, 1000.0),
            SourceConfig::open_loop(b),
        );
        sim.run(100.0);
        // 100 s at 8 kbit/s = 100_000 bytes, minus sub-packet slack.
        assert!(
            sim.stats.total_bytes >= 99_000,
            "{} bytes",
            sim.stats.total_bytes
        );
        // Fair split.
        let ra = sim.stats.flow(0).bytes as f64;
        let rb = sim.stats.flow(1).bytes as f64;
        assert!((ra / rb - 1.0).abs() < 0.02, "{ra} vs {rb}");
    }
}
