//! The single-link front-end: [`Simulation`] is a thin wrapper over a
//! one-link [`Network`], kept for the (large) body of depth-1 experiments
//! and as the stable API from earlier releases.
//!
//! The event machinery lives in [`crate::network`] on top of the shared
//! [`hpfq_events::Engine`]; this module only adds the single-link sugar:
//! [`SourceConfig`] instead of a one-hop [`Route`], no-argument
//! `link_rate`/`server`/`observer` accessors, and `Deref` to the
//! underlying network for everything else (`stats`, `run`,
//! `schedule_command`, conservation checks, …).
//!
//! Event model (deterministic: ties fire in scheduling order):
//!
//! * `Wake(source)` — a source timer fires; emitted packets are enqueued at
//!   the source's leaf (subject to its drop-tail buffer) and the link
//!   starts transmitting if idle.
//! * `TxComplete` — the link finishes a packet: the hierarchy runs
//!   RESET-PATH / RESTART-NODE (pre-selecting the next head), the service
//!   is recorded, a `Deliver` is scheduled after the source's one-way
//!   delivery delay, and the next transmission starts immediately (work
//!   conservation).
//! * `Deliver(source, pkt)` — the packet reached its destination;
//!   closed-loop sources (TCP) use this for ACK clocking.
//! * `Command(idx)` — a pre-scheduled [`SimCommand`] fires: the link rate
//!   changes (possibly to 0 — an outage), or a flow joins or leaves the
//!   hierarchy mid-run (churn).
//!
//! A one-link [`Network`] driven through this wrapper replays the legacy
//! single-link simulator byte-for-byte (the golden-trace test in
//! `tests/network_vs_simulation.rs` pins this down).

use std::ops::{Deref, DerefMut};

use hpfq_core::{Hierarchy, NodeId, NodeScheduler};
use hpfq_obs::{NoopObserver, Observer};

use crate::network::{Network, Route, SourceId};
use crate::source::Source;

/// Per-source attachment configuration (single-link form; the multi-hop
/// equivalent is a [`Route`]).
#[derive(Debug, Clone, Copy)]
pub struct SourceConfig {
    /// Leaf of the hierarchy this source feeds.
    pub leaf: NodeId,
    /// Drop-tail buffer limit for that leaf in bytes (`None` = unbounded).
    pub buffer_bytes: Option<u64>,
    /// One-way delay from transmission completion to delivery notification
    /// (`on_delivered`); models the downstream path for ACK clocking.
    pub delivery_delay: f64,
}

impl SourceConfig {
    /// Open-loop attachment: unbounded buffer, no delivery notifications
    /// needed (delay 0; notifications are still generated but cheap).
    pub fn open_loop(leaf: NodeId) -> Self {
        SourceConfig {
            leaf,
            buffer_bytes: None,
            delivery_delay: 0.0,
        }
    }
}

/// A single-link simulation: a [`Network`] with exactly one link. Build
/// the [`Hierarchy`] first, attach sources, then [`Simulation::run`].
///
/// The hierarchy's [`Observer`] (second type parameter, default
/// [`NoopObserver`]) sees every scheduling event; the simulator adds the
/// events only it can know: exact transmission times and buffer drops.
///
/// Everything beyond the single-link conveniences below — `run`,
/// `schedule_command`, `stats`, `strike`, `verify_conservation`,
/// `set_fault_injector`, … — derefs to [`Network`].
pub struct Simulation<S: NodeScheduler, O: Observer = NoopObserver> {
    net: Network<S, O>,
}

impl<S: NodeScheduler, O: Observer> Deref for Simulation<S, O> {
    type Target = Network<S, O>;

    fn deref(&self) -> &Network<S, O> {
        &self.net
    }
}

impl<S: NodeScheduler, O: Observer> DerefMut for Simulation<S, O> {
    fn deref_mut(&mut self) -> &mut Network<S, O> {
        &mut self.net
    }
}

impl<S: NodeScheduler, O: Observer> Simulation<S, O> {
    /// Wraps a fully built hierarchy into a one-link simulation.
    pub fn new(server: Hierarchy<S, O>) -> Self {
        let mut net = Network::new();
        net.add_link(server);
        Simulation { net }
    }

    /// The underlying multi-link network (this wrapper's link is index 0).
    pub fn network(&self) -> &Network<S, O> {
        &self.net
    }

    /// The underlying multi-link network, mutably.
    pub fn network_mut(&mut self) -> &mut Network<S, O> {
        &mut self.net
    }

    /// Consumes the wrapper, returning the underlying network.
    pub fn into_network(self) -> Network<S, O> {
        self.net
    }

    /// The link's current service rate in bits/s (0 during an outage).
    pub fn link_rate(&self) -> f64 {
        self.net.link_rate(0)
    }

    /// Read access to the hierarchy (e.g. for queue inspection).
    pub fn server(&self) -> &Hierarchy<S, O> {
        self.net.link_server(0)
    }

    /// The hierarchy's observer (e.g. to read counters or recover a trace
    /// buffer after the run).
    pub fn observer(&self) -> &O {
        self.net.observer_of(0)
    }

    /// The hierarchy's observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        self.net.observer_of_mut(0)
    }

    /// Consumes the simulation, returning the observer.
    pub fn into_observer(self) -> O {
        self.net
            .into_observers()
            .pop()
            // Teardown, unreachable from the engine entry points:
            // `Simulation::new` constructs exactly one link.
            .expect("a Simulation always owns exactly one link")
    }

    /// Attaches a source that feeds `cfg.leaf`. `flow` is the flow id the
    /// source stamps on its packets (used to route delivery notifications
    /// back to it).
    pub fn add_source(
        &mut self,
        flow: u32,
        source: impl Source + 'static,
        cfg: SourceConfig,
    ) -> SourceId {
        self.net.add_route(
            flow,
            source,
            Route::single(cfg.leaf, cfg.buffer_bytes, cfg.delivery_delay),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{FaultInjector, PacketVerdict, SimCommand};
    use crate::source::{CbrSource, GreedyLbSource};
    use hpfq_core::{Packet, Wf2qPlus};
    use hpfq_obs::EscalationPolicy;

    fn server(rate: f64) -> Hierarchy<Wf2qPlus> {
        Hierarchy::builder(rate, Wf2qPlus::new).build()
    }

    /// Two equal CBR flows at half the link rate each: no queueing beyond
    /// one packet, all traffic delivered.
    #[test]
    fn two_cbr_flows_fit() {
        let mut h = server(16_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 100.0),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 1000, 8000.0, 0.0, 100.0),
            SourceConfig::open_loop(b),
        );
        sim.run(10.0);
        let fa = sim.stats.flow(0);
        let fb = sim.stats.flow(1);
        assert!(fa.packets >= 9 && fb.packets >= 9, "{fa:?} {fb:?}");
        // Each packet takes 0.5 s on the wire; worst-case head-of-line wait
        // is one competing packet.
        assert!(fa.delay_max <= 1.0 + 1e-9, "{}", fa.delay_max);
        assert!(fb.delay_max <= 1.0 + 1e-9);
        sim.verify_conservation().unwrap();
    }

    /// A greedy leaky-bucket flow against a backlogged competitor respects
    /// the WF²Q+ delay bound σ/r_i + L_max/r (Theorem 4(3)).
    #[test]
    fn delay_bound_holds_depth_one() {
        let rate = 80_000.0;
        let mut h = server(rate);
        let root = h.root();
        let a = h.add_leaf(root, 0.25).unwrap(); // r_a = 20 kbit/s
        let b = h.add_leaf(root, 0.75).unwrap();
        let mut sim = Simulation::new(h);
        // sigma = 5 packets of 1000 bytes, rho = r_a.
        sim.add_source(
            0,
            GreedyLbSource::new(0, 1000, 5000, 20_000.0, 0.0, 50.0),
            SourceConfig::open_loop(a),
        );
        // Competitor saturates its share.
        sim.add_source(
            1,
            CbrSource::new(1, 1000, 70_000.0, 0.0, 50.0),
            SourceConfig::open_loop(b),
        );
        sim.stats.trace_flow(0);
        sim.run(60.0);
        let sigma_bits = 5000.0 * 8.0;
        let bound = sigma_bits / 20_000.0 + 8000.0 / rate;
        for rec in sim.stats.trace(0) {
            assert!(
                rec.delay() <= bound + 1e-9,
                "packet {} delayed {} > bound {}",
                rec.id,
                rec.delay(),
                bound
            );
        }
        assert!(sim.stats.flow(0).packets > 100);
        sim.verify_conservation().unwrap();
    }

    /// Drop-tail buffers drop exactly the overflow.
    #[test]
    fn buffer_drops() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        // Burst of 10 packets into a 3-packet buffer; service drains one
        // per second.
        sim.add_source(
            0,
            GreedyLbSource::new(0, 1000, 10_000, 1.0, 0.0, 0.5),
            SourceConfig {
                leaf: a,
                buffer_bytes: Some(3000),
                delivery_delay: 0.0,
            },
        );
        sim.run(100.0);
        let f = sim.stats.flow(0);
        assert_eq!(f.packets, 3);
        assert_eq!(f.drops, 7);
        sim.verify_conservation().unwrap();
    }

    /// The event arena reuses fired slots: a long run with a bounded number
    /// of concurrently outstanding events must not grow memory linearly
    /// with the packet count.
    #[test]
    fn event_arena_stays_bounded() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 500, 6000.0, 0.0, 1e9),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 500, 6000.0, 0.0, 1e9),
            SourceConfig::open_loop(b),
        );
        sim.run(500.0);
        // ~1500 packets served; per live source there is at most one wake,
        // one in-flight TxComplete, and one pending Deliver at a time.
        assert!(sim.stats.total_packets > 900, "{}", sim.stats.total_packets);
        assert!(
            sim.event_arena_len() <= 16,
            "event arena grew to {} slots for {} packets",
            sim.event_arena_len(),
            sim.stats.total_packets
        );
        assert!(sim.outstanding_events() <= sim.event_arena_len());
        sim.verify_conservation().unwrap();
    }

    /// Work conservation: link is never idle while traffic is queued —
    /// verified by total throughput equal to capacity over a saturated
    /// window.
    #[test]
    fn work_conserving_throughput() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        // Both flows offer 1.5x their share: link saturated.
        sim.add_source(
            0,
            CbrSource::new(0, 500, 6000.0, 0.0, 1000.0),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 500, 6000.0, 0.0, 1000.0),
            SourceConfig::open_loop(b),
        );
        sim.run(100.0);
        // 100 s at 8 kbit/s = 100_000 bytes, minus sub-packet slack.
        assert!(
            sim.stats.total_bytes >= 99_000,
            "{} bytes",
            sim.stats.total_bytes
        );
        // Fair split.
        let ra = sim.stats.flow(0).bytes as f64;
        let rb = sim.stats.flow(1).bytes as f64;
        assert!((ra / rb - 1.0).abs() < 0.02, "{ra} vs {rb}");
        sim.verify_conservation().unwrap();
    }

    /// A link outage suspends the in-flight packet and resumes it with its
    /// already-sent bits credited; every offered packet is still served.
    #[test]
    fn outage_suspends_and_resumes_inflight() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        // 1000-byte packets at exactly link rate: one per second, t=0..9.
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 10.0),
            SourceConfig::open_loop(a),
        );
        // Outage from 2.5 s to 4.5 s: the packet in service (started at
        // 2.0) is half-sent; it must finish 0.5 s after recovery.
        sim.schedule_command(2.5, SimCommand::SetLinkRate(0.0));
        sim.schedule_command(4.5, SimCommand::SetLinkRate(8000.0));
        sim.run(30.0);
        assert_eq!(sim.stats.flow(0).packets, 10);
        // 10 s of work + 2 s outage.
        assert!(
            (sim.stats.last_departure - 12.0).abs() < 1e-9,
            "{}",
            sim.stats.last_departure
        );
        assert!(sim.command_errors.is_empty(), "{:?}", sim.command_errors);
        sim.verify_conservation().unwrap();
    }

    /// A mid-transmission rate change rescales the in-flight packet's
    /// completion instead of letting the stale completion fire.
    #[test]
    fn rate_change_mid_packet_rescales_completion() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        // One isolated packet at t=0 (1 s at 8 kbit/s).
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 0.5),
            SourceConfig::open_loop(a),
        );
        // At 0.5 s (half sent) the link halves: remaining 4000 bits at
        // 4 kbit/s take 1 s more -> completes at 1.5 s.
        sim.schedule_command(0.5, SimCommand::SetLinkRate(4_000.0));
        sim.run(10.0);
        assert_eq!(sim.stats.flow(0).packets, 1);
        assert!(
            (sim.stats.last_departure - 1.5).abs() < 1e-9,
            "{}",
            sim.stats.last_departure
        );
        sim.verify_conservation().unwrap();
    }

    /// Flow churn via commands: a flow joins mid-run, competes, and leaves
    /// with its backlog purged and accounted.
    #[test]
    fn churn_commands_add_and_remove_flows() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        // Flow 0 saturates the link alone.
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 30.0),
            SourceConfig::open_loop(a),
        );
        // Flow 1 joins at t=5 offering its full share, leaves at t=15
        // while backlogged (it offered 8 kbit/s but was served 4 kbit/s).
        sim.schedule_command(
            5.0,
            SimCommand::AddFlow {
                parent: root,
                phi: 0.5,
                flow: 1,
                source: Box::new(CbrSource::new(1, 1000, 8000.0, 5.0, 15.0)),
                buffer_bytes: None,
                delivery_delay: 0.0,
            },
        );
        sim.schedule_command(15.0, SimCommand::RemoveFlow(1));
        sim.run(40.0);
        assert!(sim.command_errors.is_empty(), "{:?}", sim.command_errors);
        let f1 = sim.stats.flow(1);
        assert!(f1.packets > 0, "joined flow was never served");
        assert!(
            f1.purged_packets > 0,
            "backlogged leaver should have purged packets: {f1:?}"
        );
        // Flow 0 is whole: everything it offered was eventually served.
        let f0 = sim.stats.flow(0);
        assert_eq!(f0.offered_packets, f0.packets);
        sim.verify_conservation().unwrap();
    }

    /// An injector that corrupts every packet of one flow in flight.
    struct CorruptFlow(u32);

    impl FaultInjector for CorruptFlow {
        fn on_packet(&mut self, _now: f64, pkt: &mut Packet) -> PacketVerdict {
            if pkt.flow == self.0 {
                pkt.len_bytes = 0;
                PacketVerdict::Corrupted
            } else {
                PacketVerdict::Pass
            }
        }
    }

    /// Corrupted packets strike their flow; at the third strike the flow is
    /// quarantined while the healthy flow keeps its service. Nothing
    /// panics and conservation holds throughout.
    #[test]
    fn corrupting_flow_is_quarantined_after_three_strikes() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 6000.0, 0.0, 20.0),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 1000, 6000.0, 0.0, 20.0),
            SourceConfig::open_loop(b),
        );
        sim.set_fault_injector(CorruptFlow(1));
        sim.set_escalation_policy(EscalationPolicy::standard());
        sim.run(30.0);
        assert!(sim.escalation().is_quarantined(1));
        assert!(!sim.is_halted());
        let f1 = sim.stats.flow(1);
        assert_eq!(f1.packets, 0, "no corrupted packet may be served");
        assert_eq!(f1.fault_drops, 3, "struck out after three invalid packets");
        let f0 = sim.stats.flow(0);
        assert_eq!(f0.offered_packets, f0.packets);
        sim.verify_conservation().unwrap();
    }

    /// Under the strict policy a single invalid packet halts the run —
    /// cleanly, with accounting still balanced.
    #[test]
    fn strict_policy_halts_on_first_invalid_packet() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 20.0),
            SourceConfig::open_loop(a),
        );
        sim.set_fault_injector(CorruptFlow(0));
        sim.set_escalation_policy(EscalationPolicy::strict());
        sim.run(30.0);
        assert!(sim.is_halted());
        assert_eq!(sim.stats.flow(0).fault_drops, 1);
        sim.verify_conservation().unwrap();
    }

    /// An injector dropping every other packet of every flow.
    struct DropAlternate(u64);

    impl FaultInjector for DropAlternate {
        fn on_packet(&mut self, _now: f64, _pkt: &mut Packet) -> PacketVerdict {
            self.0 += 1;
            if self.0.is_multiple_of(2) {
                PacketVerdict::Drop
            } else {
                PacketVerdict::Pass
            }
        }
    }

    /// Injected drops are accounted separately from buffer drops and keep
    /// the books balanced.
    #[test]
    fn injected_drops_are_accounted() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 10.0),
            SourceConfig::open_loop(a),
        );
        sim.set_fault_injector(DropAlternate(0));
        sim.run(30.0);
        let f = sim.stats.flow(0);
        assert_eq!(f.offered_packets, 10);
        assert_eq!(f.fault_drops, 5);
        assert_eq!(f.packets, 5);
        assert_eq!(f.drops, 0);
        sim.verify_conservation().unwrap();
    }
}
