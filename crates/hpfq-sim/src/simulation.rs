//! The discrete-event engine: one output link driven by an H-PFQ
//! hierarchy, fed by [`Source`]s, measured by [`SimStats`].
//!
//! Event model (deterministic: ties fire in scheduling order):
//!
//! * `Wake(source)` — a source timer fires; emitted packets are enqueued at
//!   the source's leaf (subject to its drop-tail buffer) and the link
//!   starts transmitting if idle.
//! * `TxComplete` — the link finishes a packet: the hierarchy runs
//!   RESET-PATH / RESTART-NODE (pre-selecting the next head), the service
//!   is recorded, a `Deliver` is scheduled after the source's one-way
//!   delivery delay, and the next transmission starts immediately (work
//!   conservation).
//! * `Deliver(source, pkt)` — the packet reached its destination;
//!   closed-loop sources (TCP) use this for ACK clocking.
//! * `Command(idx)` — a pre-scheduled [`SimCommand`] fires: the link rate
//!   changes (possibly to 0 — an outage), or a flow joins or leaves the
//!   hierarchy mid-run (churn).
//!
//! # Faults and degradation
//!
//! A [`FaultInjector`] installed with [`Simulation::set_fault_injector`]
//! sees every packet at admission (it may drop or corrupt it) and every
//! source timer (it may jitter it). Corrupted and otherwise malformed
//! packets are caught by [`Packet::validate`] at admission and become
//! *strikes* against their flow under the simulation's
//! [`EscalationPolicy`]: warn (drop the packet and continue), quarantine
//! (remove the flow's leaf, purge its queue, redistribute its share), or
//! halt (stop the run cleanly). Nothing in this path panics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hpfq_core::{vtime, Hierarchy, HpfqError, NodeId, NodeScheduler, Packet};
use hpfq_obs::{
    DropEvent, EscalationLevel, EscalationPolicy, EscalationState, FaultEvent, FaultKind,
    NoopObserver, Observer, PacketInfo, QuarantineEvent,
};

use crate::source::{Source, SourceOutput};
use crate::stats::{ServiceRecord, SimStats};

/// Index of a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub usize);

/// Per-source attachment configuration.
#[derive(Debug, Clone, Copy)]
pub struct SourceConfig {
    /// Leaf of the hierarchy this source feeds.
    pub leaf: NodeId,
    /// Drop-tail buffer limit for that leaf in bytes (`None` = unbounded).
    pub buffer_bytes: Option<u64>,
    /// One-way delay from transmission completion to delivery notification
    /// (`on_delivered`); models the downstream path for ACK clocking.
    pub delivery_delay: f64,
}

impl SourceConfig {
    /// Open-loop attachment: unbounded buffer, no delivery notifications
    /// needed (delay 0; notifications are still generated but cheap).
    pub fn open_loop(leaf: NodeId) -> Self {
        SourceConfig {
            leaf,
            buffer_bytes: None,
            delivery_delay: 0.0,
        }
    }
}

/// A control-plane action scheduled against the simulation clock with
/// [`Simulation::schedule_command`]. Commands model operator actions and
/// environmental faults; they are part of the event schedule, so runs stay
/// deterministic.
pub enum SimCommand {
    /// Change the link rate to `bps` (bits/s). `0.0` models an outage: the
    /// in-flight packet is suspended and resumes — with its already-sent
    /// bits credited — when a later `SetLinkRate` restores service.
    SetLinkRate(f64),
    /// Attach a new leaf under `parent` with share `phi` and start `source`
    /// feeding it (flow churn: join).
    AddFlow {
        /// Parent node for the new leaf.
        parent: NodeId,
        /// Guaranteed share of the new leaf.
        phi: f64,
        /// Flow id the source stamps on its packets.
        flow: u32,
        /// The traffic source; its `start()` runs at the command's time.
        source: Box<dyn Source>,
        /// Drop-tail buffer for the new leaf (`None` = unbounded).
        buffer_bytes: Option<u64>,
        /// One-way delivery delay for the new source.
        delivery_delay: f64,
    },
    /// Detach `flow`'s leaf (flow churn: leave). Queued packets behind the
    /// in-service head are purged and accounted; the head, if one is being
    /// offered, finishes service first and the share is freed then.
    RemoveFlow(u32),
}

impl std::fmt::Debug for SimCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimCommand::SetLinkRate(r) => write!(f, "SetLinkRate({r})"),
            SimCommand::AddFlow {
                parent, phi, flow, ..
            } => write!(f, "AddFlow{{parent:{parent:?},phi:{phi},flow:{flow}}}"),
            SimCommand::RemoveFlow(flow) => write!(f, "RemoveFlow({flow})"),
        }
    }
}

/// What a [`FaultInjector`] decided about one packet at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketVerdict {
    /// Deliver the packet to the scheduler unchanged.
    Pass,
    /// Silently lose the packet (modeling loss upstream of the server).
    Drop,
    /// The injector mutated the packet's fields in place; the admission
    /// path revalidates it (a corrupted-invalid packet then strikes its
    /// flow under the escalation policy).
    Corrupted,
}

/// A deterministic fault source consulted on the simulator's hot paths.
///
/// Implementations must be pure functions of their own seeded state so the
/// same injector over the same workload reproduces the same faults; for
/// scheduler-differential experiments the per-flow decision streams should
/// depend only on each flow's own packet/wake order (which open-loop
/// sources make scheduler-independent).
pub trait FaultInjector {
    /// Inspect — and possibly mutate — a packet at admission.
    fn on_packet(&mut self, _now: f64, _pkt: &mut Packet) -> PacketVerdict {
        PacketVerdict::Pass
    }

    /// Perturb a wake time requested by `flow`'s source. Returning `wake`
    /// unchanged means no jitter; returned times earlier than `now` are
    /// clamped to `now` by the scheduler.
    fn jitter(&mut self, _now: f64, _flow: u32, wake: f64) -> f64 {
        wake
    }
}

/// The no-fault injector (used when none is installed).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

#[derive(Debug)]
enum Event {
    Wake(usize),
    /// Link transmission completion, tagged with the transmission epoch at
    /// scheduling time. Link-rate changes bump the epoch and reschedule;
    /// a fired event whose epoch is stale is ignored.
    TxComplete(u64),
    Deliver(usize, Packet),
    Command(SimCommand),
}

/// Min-heap key: time, then sequence for FIFO tie-breaking.
#[derive(Debug, PartialEq)]
struct Key(f64, u64);

impl Eq for Key {}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // total_cmp never panics; schedule() only accepts finite times, so
        // the NaN ordering arm is unreachable anyway.
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One attached source and its runtime state.
struct SourceSlot {
    src: Box<dyn Source>,
    cfg: SourceConfig,
    /// Flow id registered for the source at attach time.
    flow: u32,
    /// `false` once the flow has been removed (churn) or quarantined:
    /// its timers and deliveries are discarded from then on.
    live: bool,
    /// Whether `start()` has run (sources start exactly once even across
    /// segmented [`Simulation::run`] calls).
    started: bool,
}

/// A single-link simulation. Build the [`Hierarchy`] first, attach sources,
/// then [`Simulation::run`].
///
/// The hierarchy's [`Observer`] (second type parameter, default
/// [`NoopObserver`]) sees every scheduling event; the simulator adds the
/// events only it can know: exact transmission times and buffer drops.
pub struct Simulation<S: NodeScheduler, O: Observer = NoopObserver> {
    server: Hierarchy<S, O>,
    rate: f64,
    now: f64,
    queue: BinaryHeap<Reverse<(Key, usize)>>,
    /// Event arena. Fired slots are pushed onto `free` and reused, so
    /// memory is bounded by the maximum number of *outstanding* events,
    /// not the total ever scheduled.
    events: Vec<Option<Event>>,
    free: Vec<usize>,
    seq: u64,
    sources: Vec<SourceSlot>,
    /// Transmission start time of the in-flight packet.
    tx_start: f64,
    /// Transmission epoch: bumped whenever the pending `TxComplete` is
    /// invalidated by a link-rate change.
    tx_epoch: u64,
    /// Bits of the in-flight packet not yet on the wire, as of
    /// `tx_updated`.
    tx_remaining_bits: f64,
    /// Time `tx_remaining_bits` was last brought up to date.
    tx_updated: f64,
    /// Statistics collector.
    pub stats: SimStats,
    /// Maps a flow id to the source that owns it (for delivery routing).
    flow_owner: std::collections::BTreeMap<u32, usize>,
    injector: Option<Box<dyn FaultInjector>>,
    policy: EscalationPolicy,
    escalation: EscalationState,
    halted: bool,
    /// Commands that could not be applied (e.g. adding a flow whose share
    /// would overflow its parent): `(time, error)` pairs. The run
    /// continues — a rejected command is degraded service, not a crash.
    pub command_errors: Vec<(f64, HpfqError)>,
}

impl<S: NodeScheduler, O: Observer> Simulation<S, O> {
    /// Wraps a fully built hierarchy into a simulation.
    pub fn new(server: Hierarchy<S, O>) -> Self {
        let rate = server.link_rate();
        Simulation {
            server,
            rate,
            now: 0.0,
            queue: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            seq: 0,
            sources: Vec::new(),
            tx_start: 0.0,
            tx_epoch: 0,
            tx_remaining_bits: 0.0,
            tx_updated: 0.0,
            stats: SimStats::new(),
            flow_owner: std::collections::BTreeMap::new(),
            injector: None,
            policy: EscalationPolicy::warn_only(),
            escalation: EscalationState::new(),
            halted: false,
            command_errors: Vec::new(),
        }
    }

    /// Installs a fault injector consulted at packet admission and timer
    /// scheduling. Replaces any previous injector.
    pub fn set_fault_injector(&mut self, inj: impl FaultInjector + 'static) {
        self.injector = Some(Box::new(inj));
    }

    /// Sets the degradation ladder for misbehaving flows. The default is
    /// [`EscalationPolicy::warn_only`]: invalid packets are dropped and
    /// recorded but flows are never quarantined.
    pub fn set_escalation_policy(&mut self, policy: EscalationPolicy) {
        self.policy = policy;
    }

    /// The escalation ladder's current state (strikes, quarantine roster).
    pub fn escalation(&self) -> &EscalationState {
        &self.escalation
    }

    /// Whether the escalation ladder halted the run ([`Simulation::run`]
    /// returns early once this is set).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The link's current service rate in bits/s (0 during an outage).
    pub fn link_rate(&self) -> f64 {
        self.rate
    }

    /// Read access to the hierarchy (e.g. for queue inspection).
    pub fn server(&self) -> &Hierarchy<S, O> {
        &self.server
    }

    /// The hierarchy's observer (e.g. to read counters or recover a trace
    /// buffer after the run).
    pub fn observer(&self) -> &O {
        self.server.observer()
    }

    /// The hierarchy's observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        self.server.observer_mut()
    }

    /// Consumes the simulation, returning the observer.
    pub fn into_observer(self) -> O {
        self.server.into_observer()
    }

    /// Outstanding (scheduled, unfired) events — exposed for capacity
    /// diagnostics and the arena-reuse tests.
    pub fn outstanding_events(&self) -> usize {
        self.events.len() - self.free.len()
    }

    /// Size of the event arena (high-water mark of outstanding events).
    pub fn event_arena_len(&self) -> usize {
        self.events.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Attaches a source that feeds `cfg.leaf`. `flow` is the flow id the
    /// source stamps on its packets (used to route delivery notifications
    /// back to it).
    pub fn add_source(
        &mut self,
        flow: u32,
        source: impl Source + 'static,
        cfg: SourceConfig,
    ) -> SourceId {
        assert!(
            self.server.is_leaf(cfg.leaf),
            "source must be attached to a leaf"
        );
        let idx = self.sources.len();
        self.sources.push(SourceSlot {
            src: Box::new(source),
            cfg,
            flow,
            live: true,
            started: false,
        });
        self.flow_owner.insert(flow, idx);
        SourceId(idx)
    }

    /// Schedules a control-plane [`SimCommand`] to fire at time `t` (times
    /// in the past fire immediately once the run reaches them).
    pub fn schedule_command(&mut self, t: f64, cmd: SimCommand) {
        self.schedule(t, Event::Command(cmd));
    }

    fn schedule(&mut self, t: f64, ev: Event) {
        debug_assert!(vtime::approx_ge(t, self.now), "scheduling into the past");
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.events[slot].is_none(), "free slot still occupied");
                self.events[slot] = Some(ev);
                slot
            }
            None => {
                self.events.push(Some(ev));
                self.events.len() - 1
            }
        };
        self.queue
            .push(Reverse((Key(t.max(self.now), self.seq), slot)));
    }

    fn emit_fault(&mut self, kind: FaultKind, node: usize, flow: u32, value: f64) {
        if O::ENABLED {
            let ev = FaultEvent {
                time: self.now,
                kind,
                node,
                flow,
                value,
            };
            self.server.observer_mut().on_fault(&ev);
        }
    }

    fn apply_output(&mut self, src_idx: usize, out: SourceOutput) {
        let flow = self.sources[src_idx].flow;
        for w in out.wakes {
            let mut wake = w;
            if let Some(inj) = self.injector.as_mut() {
                wake = inj.jitter(self.now, flow, w);
                if wake != w {
                    self.emit_fault(FaultKind::ClockJitter, 0, flow, wake - w);
                }
            }
            self.schedule(wake.max(self.now), Event::Wake(src_idx));
        }
        for mut pkt in out.packets {
            let cfg = self.sources[src_idx].cfg;
            pkt.arrival = self.now;
            let verdict = self
                .injector
                .as_mut()
                .map_or(PacketVerdict::Pass, |inj| inj.on_packet(self.now, &mut pkt));
            // "Offered" is what reaches the server's input port — recorded
            // after corruption so the byte ledger matches what was seen.
            self.stats.record_arrival(&pkt);
            match verdict {
                PacketVerdict::Pass => {}
                PacketVerdict::Drop => {
                    self.stats.record_fault_drop(&pkt);
                    self.emit_fault(
                        FaultKind::PacketDrop,
                        cfg.leaf.index(),
                        pkt.flow,
                        f64::from(pkt.len_bytes),
                    );
                    continue;
                }
                PacketVerdict::Corrupted => {
                    self.emit_fault(
                        FaultKind::PacketCorrupt,
                        cfg.leaf.index(),
                        pkt.flow,
                        f64::from(pkt.len_bytes),
                    );
                }
            }
            // Degradation layer: malformed packets never reach the
            // scheduler maths — they are dropped here and strike the flow.
            if pkt.validate().is_err() {
                self.stats.record_fault_drop(&pkt);
                self.emit_fault(
                    FaultKind::InvalidPacket,
                    cfg.leaf.index(),
                    pkt.flow,
                    f64::from(pkt.len_bytes),
                );
                self.strike(pkt.flow);
                if self.halted {
                    return;
                }
                continue;
            }
            if let Some(limit) = cfg.buffer_bytes {
                if self.server.leaf_queue_bytes(cfg.leaf) + u64::from(pkt.len_bytes) > limit {
                    self.stats.record_drop(&pkt);
                    if O::ENABLED {
                        let ev = DropEvent {
                            time: self.now,
                            leaf: cfg.leaf.index(),
                            pkt: PacketInfo {
                                id: pkt.id,
                                flow: pkt.flow,
                                len_bytes: pkt.len_bytes,
                                arrival: pkt.arrival,
                            },
                            queue_bytes: self.server.leaf_queue_bytes(cfg.leaf),
                        };
                        self.server.observer_mut().on_drop(&ev);
                    }
                    continue;
                }
            }
            match self.server.try_enqueue(cfg.leaf, pkt) {
                Ok(()) => self.stats.record_accept(&pkt),
                // The leaf vanished between emission and admission (e.g.
                // quarantined while this packet was being generated):
                // account the packet as fault-dropped and move on.
                Err(_) => {
                    self.stats.record_fault_drop(&pkt);
                    self.emit_fault(
                        FaultKind::PacketDrop,
                        cfg.leaf.index(),
                        pkt.flow,
                        f64::from(pkt.len_bytes),
                    );
                }
            }
        }
        self.try_start();
    }

    fn try_start(&mut self) {
        if self.rate > 0.0
            && !self.halted
            && !self.server.is_transmitting()
            && self.server.has_pending()
        {
            let now = self.now;
            // has_pending() was checked just above, so this is always
            // Some; degrade to a no-op rather than asserting.
            let Some(pkt) = self.server.start_transmission_at(now) else {
                return;
            };
            self.tx_start = self.now;
            self.tx_remaining_bits = pkt.bits();
            self.tx_updated = self.now;
            self.schedule(
                self.now + pkt.tx_time(self.rate),
                Event::TxComplete(self.tx_epoch),
            );
        }
    }

    /// Changes the link's service rate at the current instant. A rate of 0
    /// suspends service (outage); the in-flight packet, if any, keeps the
    /// bits it already transmitted and its completion is rescheduled when
    /// a later call restores a positive rate.
    fn set_link_rate(&mut self, new_rate: f64) {
        if !(new_rate.is_finite() && new_rate >= 0.0) {
            self.command_errors
                .push((self.now, HpfqError::InvalidRate(new_rate)));
            return;
        }
        if self.server.is_transmitting() {
            // Credit bits sent under the old rate, then reschedule the
            // remainder under the new one.
            let sent = (self.now - self.tx_updated) * self.rate;
            self.tx_remaining_bits = (self.tx_remaining_bits - sent).max(0.0);
            self.tx_updated = self.now;
            self.tx_epoch += 1;
            if new_rate > 0.0 {
                self.schedule(
                    self.now + self.tx_remaining_bits / new_rate,
                    Event::TxComplete(self.tx_epoch),
                );
            }
        }
        self.rate = new_rate;
        // Resync the hierarchy's reference clock: the GPS-exact policies
        // measure elapsed busy time in nominal-rate link seconds, so a
        // degraded link must slow (or, in an outage, freeze) that clock.
        let factor = new_rate / self.server.link_rate();
        if let Err(e) = self.server.set_link_rate_factor(self.now, factor) {
            self.command_errors.push((self.now, e));
        }
        if !self.server.is_transmitting() {
            self.try_start();
        }
    }

    /// Records one incident against `flow` and applies the escalation
    /// ladder's response: warn (no-op beyond the strike count), quarantine
    /// (the flow's leaf is removed and its queue purged), or halt (the run
    /// stops at the current event). Returns the level applied.
    ///
    /// Invalid packets strike automatically at admission; harnesses call
    /// this directly to escalate externally detected misbehaviour (e.g. an
    /// invariant-check violation attributed to a flow).
    pub fn strike(&mut self, flow: u32) -> EscalationLevel {
        let level = self.escalation.strike(&self.policy, flow);
        match level {
            EscalationLevel::Warn => {}
            EscalationLevel::Quarantine => self.quarantine(flow),
            EscalationLevel::Halt => {
                // Halt still isolates the offending flow so a post-mortem
                // inspection sees a consistent tree.
                self.quarantine(flow);
                self.halted = true;
            }
        }
        level
    }

    /// Removes `flow`'s leaf from the hierarchy, purging and accounting
    /// its queued packets, and stops its source.
    fn quarantine(&mut self, flow: u32) {
        let Some(&idx) = self.flow_owner.get(&flow) else {
            return;
        };
        if !self.sources[idx].live {
            return;
        }
        let leaf = self.sources[idx].cfg.leaf;
        match self.server.remove_leaf(leaf) {
            Ok(purged) => {
                self.sources[idx].live = false;
                let mut purged_packets = 0u64;
                let mut purged_bytes = 0u64;
                for p in &purged {
                    self.stats.record_purge(p);
                    purged_packets += 1;
                    purged_bytes += u64::from(p.len_bytes);
                }
                if O::ENABLED {
                    let ev = QuarantineEvent {
                        time: self.now,
                        leaf: leaf.index(),
                        flow,
                        strikes: self.escalation.strikes(flow),
                        purged_packets,
                        purged_bytes,
                    };
                    self.server.observer_mut().on_quarantine(&ev);
                }
            }
            Err(e) => self.command_errors.push((self.now, e)),
        }
    }

    fn apply_command(&mut self, cmd: SimCommand) {
        match cmd {
            SimCommand::SetLinkRate(bps) => {
                let kind = if bps == 0.0 {
                    FaultKind::LinkDown
                } else if self.rate == 0.0 {
                    FaultKind::LinkUp
                } else {
                    FaultKind::LinkRate
                };
                self.emit_fault(kind, 0, 0, bps);
                self.set_link_rate(bps);
            }
            SimCommand::AddFlow {
                parent,
                phi,
                flow,
                source,
                buffer_bytes,
                delivery_delay,
            } => match self.server.add_leaf(parent, phi) {
                Ok(leaf) => {
                    let idx = self.sources.len();
                    self.sources.push(SourceSlot {
                        src: source,
                        cfg: SourceConfig {
                            leaf,
                            buffer_bytes,
                            delivery_delay,
                        },
                        flow,
                        live: true,
                        started: true,
                    });
                    self.flow_owner.insert(flow, idx);
                    self.emit_fault(FaultKind::FlowAdd, leaf.index(), flow, phi);
                    let out = self.sources[idx].src.start();
                    debug_assert!(out.packets.is_empty(), "start() must not emit packets");
                    self.apply_output(idx, out);
                }
                Err(e) => self.command_errors.push((self.now, e)),
            },
            SimCommand::RemoveFlow(flow) => {
                let Some(&idx) = self.flow_owner.get(&flow) else {
                    self.command_errors
                        .push((self.now, HpfqError::UnknownNode(usize::MAX)));
                    return;
                };
                if !self.sources[idx].live {
                    return;
                }
                let leaf = self.sources[idx].cfg.leaf;
                let phi = self.server.phi(leaf);
                match self.server.remove_leaf(leaf) {
                    Ok(purged) => {
                        self.sources[idx].live = false;
                        for p in &purged {
                            self.stats.record_purge(p);
                        }
                        self.emit_fault(FaultKind::FlowRemove, leaf.index(), flow, phi);
                    }
                    Err(e) => self.command_errors.push((self.now, e)),
                }
            }
        }
    }

    /// Runs the simulation until `horizon` seconds (events strictly after
    /// the horizon are left unprocessed), until no events remain, or until
    /// the escalation ladder halts the run. May be called repeatedly with
    /// growing horizons to run in segments; sources are started once.
    pub fn run(&mut self, horizon: f64) {
        // Start any sources not yet started (first call, or sources
        // attached between run segments).
        for i in 0..self.sources.len() {
            if !self.sources[i].started {
                self.sources[i].started = true;
                let out = self.sources[i].src.start();
                debug_assert!(out.packets.is_empty(), "start() must not emit packets");
                self.apply_output(i, out);
            }
        }
        while !self.halted {
            let Some(&Reverse((Key(t, _), _))) = self.queue.peek() else {
                break;
            };
            if t > horizon {
                break;
            }
            let Some(Reverse((Key(t, _), slot))) = self.queue.pop() else {
                break;
            };
            self.now = t;
            // Each queue entry owns its arena slot until fired; a vacated
            // slot (impossible today, tolerated for robustness) is skipped.
            let Some(ev) = self.events[slot].take() else {
                continue;
            };
            self.free.push(slot);
            match ev {
                Event::Wake(i) => {
                    if !self.sources[i].live {
                        continue;
                    }
                    let out = self.sources[i].src.on_wake(t);
                    self.apply_output(i, out);
                }
                Event::TxComplete(epoch) => {
                    if epoch != self.tx_epoch {
                        // Superseded by a link-rate change; the rescheduled
                        // completion carries the current epoch.
                        continue;
                    }
                    let pkt = self.server.complete_transmission_at(t);
                    self.stats.record_service(ServiceRecord {
                        id: pkt.id,
                        flow: pkt.flow,
                        len_bytes: pkt.len_bytes,
                        arrival: pkt.arrival,
                        start: self.tx_start,
                        end: t,
                    });
                    if let Some(&owner) = self.flow_owner.get(&pkt.flow) {
                        if self.sources[owner].live {
                            let delay = self.sources[owner].cfg.delivery_delay;
                            self.schedule(t + delay, Event::Deliver(owner, pkt));
                        }
                    }
                    self.try_start();
                }
                Event::Deliver(i, pkt) => {
                    if !self.sources[i].live {
                        continue;
                    }
                    let out = self.sources[i].src.on_delivered(t, &pkt);
                    self.apply_output(i, out);
                }
                Event::Command(cmd) => self.apply_command(cmd),
            }
        }
        // Unfired events past the horizon stay queued so a subsequent
        // `run` with a larger horizon continues cleanly.
    }

    /// Bytes currently queued in the hierarchy (including any in-flight
    /// packet, which stays in its leaf queue until completion).
    pub fn queued_bytes(&self) -> u64 {
        self.server
            .leaves()
            .iter()
            .map(|&l| self.server.leaf_queue_bytes(l))
            .sum()
    }

    /// End-to-end byte conservation check: every offered byte is accounted
    /// for as served, buffer-dropped, fault-dropped, purged, or still
    /// queued. Returns a description of the imbalance, if any.
    pub fn verify_conservation(&self) -> Result<(), String> {
        self.stats.accounting_balanced(self.queued_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CbrSource, GreedyLbSource};
    use hpfq_core::Wf2qPlus;

    fn server(rate: f64) -> Hierarchy<Wf2qPlus> {
        Hierarchy::new_with(rate, Wf2qPlus::new)
    }

    /// Two equal CBR flows at half the link rate each: no queueing beyond
    /// one packet, all traffic delivered.
    #[test]
    fn two_cbr_flows_fit() {
        let mut h = server(16_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 100.0),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 1000, 8000.0, 0.0, 100.0),
            SourceConfig::open_loop(b),
        );
        sim.run(10.0);
        let fa = sim.stats.flow(0);
        let fb = sim.stats.flow(1);
        assert!(fa.packets >= 9 && fb.packets >= 9, "{fa:?} {fb:?}");
        // Each packet takes 0.5 s on the wire; worst-case head-of-line wait
        // is one competing packet.
        assert!(fa.delay_max <= 1.0 + 1e-9, "{}", fa.delay_max);
        assert!(fb.delay_max <= 1.0 + 1e-9);
        sim.verify_conservation().unwrap();
    }

    /// A greedy leaky-bucket flow against a backlogged competitor respects
    /// the WF²Q+ delay bound σ/r_i + L_max/r (Theorem 4(3)).
    #[test]
    fn delay_bound_holds_depth_one() {
        let rate = 80_000.0;
        let mut h = server(rate);
        let root = h.root();
        let a = h.add_leaf(root, 0.25).unwrap(); // r_a = 20 kbit/s
        let b = h.add_leaf(root, 0.75).unwrap();
        let mut sim = Simulation::new(h);
        // sigma = 5 packets of 1000 bytes, rho = r_a.
        sim.add_source(
            0,
            GreedyLbSource::new(0, 1000, 5000, 20_000.0, 0.0, 50.0),
            SourceConfig::open_loop(a),
        );
        // Competitor saturates its share.
        sim.add_source(
            1,
            CbrSource::new(1, 1000, 70_000.0, 0.0, 50.0),
            SourceConfig::open_loop(b),
        );
        sim.stats.trace_flow(0);
        sim.run(60.0);
        let sigma_bits = 5000.0 * 8.0;
        let bound = sigma_bits / 20_000.0 + 8000.0 / rate;
        for rec in sim.stats.trace(0) {
            assert!(
                rec.delay() <= bound + 1e-9,
                "packet {} delayed {} > bound {}",
                rec.id,
                rec.delay(),
                bound
            );
        }
        assert!(sim.stats.flow(0).packets > 100);
        sim.verify_conservation().unwrap();
    }

    /// Drop-tail buffers drop exactly the overflow.
    #[test]
    fn buffer_drops() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        // Burst of 10 packets into a 3-packet buffer; service drains one
        // per second.
        sim.add_source(
            0,
            GreedyLbSource::new(0, 1000, 10_000, 1.0, 0.0, 0.5),
            SourceConfig {
                leaf: a,
                buffer_bytes: Some(3000),
                delivery_delay: 0.0,
            },
        );
        sim.run(100.0);
        let f = sim.stats.flow(0);
        assert_eq!(f.packets, 3);
        assert_eq!(f.drops, 7);
        sim.verify_conservation().unwrap();
    }

    /// The event arena reuses fired slots: a long run with a bounded number
    /// of concurrently outstanding events must not grow memory linearly
    /// with the packet count.
    #[test]
    fn event_arena_stays_bounded() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 500, 6000.0, 0.0, 1e9),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 500, 6000.0, 0.0, 1e9),
            SourceConfig::open_loop(b),
        );
        sim.run(500.0);
        // ~1500 packets served; per live source there is at most one wake,
        // one in-flight TxComplete, and one pending Deliver at a time.
        assert!(sim.stats.total_packets > 900, "{}", sim.stats.total_packets);
        assert!(
            sim.event_arena_len() <= 16,
            "event arena grew to {} slots for {} packets",
            sim.event_arena_len(),
            sim.stats.total_packets
        );
        assert!(sim.outstanding_events() <= sim.event_arena_len());
        sim.verify_conservation().unwrap();
    }

    /// Work conservation: link is never idle while traffic is queued —
    /// verified by total throughput equal to capacity over a saturated
    /// window.
    #[test]
    fn work_conserving_throughput() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        // Both flows offer 1.5x their share: link saturated.
        sim.add_source(
            0,
            CbrSource::new(0, 500, 6000.0, 0.0, 1000.0),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 500, 6000.0, 0.0, 1000.0),
            SourceConfig::open_loop(b),
        );
        sim.run(100.0);
        // 100 s at 8 kbit/s = 100_000 bytes, minus sub-packet slack.
        assert!(
            sim.stats.total_bytes >= 99_000,
            "{} bytes",
            sim.stats.total_bytes
        );
        // Fair split.
        let ra = sim.stats.flow(0).bytes as f64;
        let rb = sim.stats.flow(1).bytes as f64;
        assert!((ra / rb - 1.0).abs() < 0.02, "{ra} vs {rb}");
        sim.verify_conservation().unwrap();
    }

    /// A link outage suspends the in-flight packet and resumes it with its
    /// already-sent bits credited; every offered packet is still served.
    #[test]
    fn outage_suspends_and_resumes_inflight() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        // 1000-byte packets at exactly link rate: one per second, t=0..9.
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 10.0),
            SourceConfig::open_loop(a),
        );
        // Outage from 2.5 s to 4.5 s: the packet in service (started at
        // 2.0) is half-sent; it must finish 0.5 s after recovery.
        sim.schedule_command(2.5, SimCommand::SetLinkRate(0.0));
        sim.schedule_command(4.5, SimCommand::SetLinkRate(8000.0));
        sim.run(30.0);
        assert_eq!(sim.stats.flow(0).packets, 10);
        // 10 s of work + 2 s outage.
        assert!(
            (sim.stats.last_departure - 12.0).abs() < 1e-9,
            "{}",
            sim.stats.last_departure
        );
        assert!(sim.command_errors.is_empty(), "{:?}", sim.command_errors);
        sim.verify_conservation().unwrap();
    }

    /// A mid-transmission rate change rescales the in-flight packet's
    /// completion instead of letting the stale completion fire.
    #[test]
    fn rate_change_mid_packet_rescales_completion() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        // One isolated packet at t=0 (1 s at 8 kbit/s).
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 0.5),
            SourceConfig::open_loop(a),
        );
        // At 0.5 s (half sent) the link halves: remaining 4000 bits at
        // 4 kbit/s take 1 s more -> completes at 1.5 s.
        sim.schedule_command(0.5, SimCommand::SetLinkRate(4_000.0));
        sim.run(10.0);
        assert_eq!(sim.stats.flow(0).packets, 1);
        assert!(
            (sim.stats.last_departure - 1.5).abs() < 1e-9,
            "{}",
            sim.stats.last_departure
        );
        sim.verify_conservation().unwrap();
    }

    /// Flow churn via commands: a flow joins mid-run, competes, and leaves
    /// with its backlog purged and accounted.
    #[test]
    fn churn_commands_add_and_remove_flows() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        // Flow 0 saturates the link alone.
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 30.0),
            SourceConfig::open_loop(a),
        );
        // Flow 1 joins at t=5 offering its full share, leaves at t=15
        // while backlogged (it offered 8 kbit/s but was served 4 kbit/s).
        sim.schedule_command(
            5.0,
            SimCommand::AddFlow {
                parent: root,
                phi: 0.5,
                flow: 1,
                source: Box::new(CbrSource::new(1, 1000, 8000.0, 5.0, 15.0)),
                buffer_bytes: None,
                delivery_delay: 0.0,
            },
        );
        sim.schedule_command(15.0, SimCommand::RemoveFlow(1));
        sim.run(40.0);
        assert!(sim.command_errors.is_empty(), "{:?}", sim.command_errors);
        let f1 = sim.stats.flow(1);
        assert!(f1.packets > 0, "joined flow was never served");
        assert!(
            f1.purged_packets > 0,
            "backlogged leaver should have purged packets: {f1:?}"
        );
        // Flow 0 is whole: everything it offered was eventually served.
        let f0 = sim.stats.flow(0);
        assert_eq!(f0.offered_packets, f0.packets);
        sim.verify_conservation().unwrap();
    }

    /// An injector that corrupts every packet of one flow in flight.
    struct CorruptFlow(u32);

    impl FaultInjector for CorruptFlow {
        fn on_packet(&mut self, _now: f64, pkt: &mut Packet) -> PacketVerdict {
            if pkt.flow == self.0 {
                pkt.len_bytes = 0;
                PacketVerdict::Corrupted
            } else {
                PacketVerdict::Pass
            }
        }
    }

    /// Corrupted packets strike their flow; at the third strike the flow is
    /// quarantined while the healthy flow keeps its service. Nothing
    /// panics and conservation holds throughout.
    #[test]
    fn corrupting_flow_is_quarantined_after_three_strikes() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 0.5).unwrap();
        let b = h.add_leaf(root, 0.5).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 6000.0, 0.0, 20.0),
            SourceConfig::open_loop(a),
        );
        sim.add_source(
            1,
            CbrSource::new(1, 1000, 6000.0, 0.0, 20.0),
            SourceConfig::open_loop(b),
        );
        sim.set_fault_injector(CorruptFlow(1));
        sim.set_escalation_policy(EscalationPolicy::standard());
        sim.run(30.0);
        assert!(sim.escalation().is_quarantined(1));
        assert!(!sim.is_halted());
        let f1 = sim.stats.flow(1);
        assert_eq!(f1.packets, 0, "no corrupted packet may be served");
        assert_eq!(f1.fault_drops, 3, "struck out after three invalid packets");
        let f0 = sim.stats.flow(0);
        assert_eq!(f0.offered_packets, f0.packets);
        sim.verify_conservation().unwrap();
    }

    /// Under the strict policy a single invalid packet halts the run —
    /// cleanly, with accounting still balanced.
    #[test]
    fn strict_policy_halts_on_first_invalid_packet() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 20.0),
            SourceConfig::open_loop(a),
        );
        sim.set_fault_injector(CorruptFlow(0));
        sim.set_escalation_policy(EscalationPolicy::strict());
        sim.run(30.0);
        assert!(sim.is_halted());
        assert_eq!(sim.stats.flow(0).fault_drops, 1);
        sim.verify_conservation().unwrap();
    }

    /// An injector dropping every other packet of every flow.
    struct DropAlternate(u64);

    impl FaultInjector for DropAlternate {
        fn on_packet(&mut self, _now: f64, _pkt: &mut Packet) -> PacketVerdict {
            self.0 += 1;
            if self.0.is_multiple_of(2) {
                PacketVerdict::Drop
            } else {
                PacketVerdict::Pass
            }
        }
    }

    /// Injected drops are accounted separately from buffer drops and keep
    /// the books balanced.
    #[test]
    fn injected_drops_are_accounted() {
        let mut h = server(8_000.0);
        let root = h.root();
        let a = h.add_leaf(root, 1.0).unwrap();
        let mut sim = Simulation::new(h);
        sim.add_source(
            0,
            CbrSource::new(0, 1000, 8000.0, 0.0, 10.0),
            SourceConfig::open_loop(a),
        );
        sim.set_fault_injector(DropAlternate(0));
        sim.run(30.0);
        let f = sim.stats.flow(0);
        assert_eq!(f.offered_packets, 10);
        assert_eq!(f.fault_drops, 5);
        assert_eq!(f.packets, 5);
        assert_eq!(f.drops, 0);
        sim.verify_conservation().unwrap();
    }
}
