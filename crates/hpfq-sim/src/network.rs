//! Multi-link network simulation on the shared [`hpfq_events`] engine.
//!
//! A [`Network`] owns any number of output links, each scheduled by its own
//! H-PFQ [`Hierarchy`], plus a set of flows with **static routes**: an
//! ordered list of `(link, leaf)` hops. A packet is enqueued at its first
//! hop, transmitted by that link's hierarchy, propagates for the hop's
//! delay, is re-enqueued at the next hop, and so on; after the last hop it
//! is delivered back to its source (ACK clocking for closed-loop sources).
//!
//! The event loop is [`hpfq_events::Engine`] — the same deterministic
//! `(time, seq)` FIFO-tie-breaking core used by the fluid simulator and the
//! chaos harness — so a one-link network replays the legacy single-link
//! [`crate::Simulation`] byte-for-byte (that wrapper now *is* a one-link
//! network).
//!
//! Every hierarchy is stamped with its link id, so one shared observer
//! (e.g. a [`hpfq_obs::JsonlObserver`] over a [`hpfq_obs::SharedBuf`])
//! yields a single merged trace from which `hpfq-analysis` recovers
//! per-hop and end-to-end delays.
//!
//! # Faults and degradation
//!
//! A [`FaultInjector`] installed with [`Network::set_fault_injector`] sees
//! every packet at network ingress (it may drop or corrupt it) and every
//! source timer (it may jitter it). Malformed packets are caught by
//! [`Packet::validate`] at admission and become *strikes* against their
//! flow under the network's [`EscalationPolicy`]: warn, quarantine (the
//! flow's leaves are removed at every hop), or halt. Nothing in this path
//! panics.

use std::collections::{BTreeMap, VecDeque};

use hpfq_core::{Hierarchy, HpfqError, NodeId, NodeScheduler, Packet};
use hpfq_events::Engine;
use hpfq_obs::snap::{SnapError, Value};
use hpfq_obs::{
    DropEvent, EpochSpan, EscalationLevel, EscalationPolicy, EscalationState, FaultEvent,
    FaultKind, NoopObserver, Observer, PacketInfo, QuarantineEvent, SpanKind, SpanProfiler,
    SpanSnapshot,
};

use crate::source::{Source, SourceOutput};
use crate::stats::{ServiceRecord, SimStats};

/// Index of a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub usize);

/// One hop of a [`Route`]: which link serves the packet, at which leaf of
/// that link's hierarchy, under what buffer, and how long the packet
/// propagates after transmission (to the next hop, or — on the last hop —
/// to the destination that acknowledges delivery).
#[derive(Debug, Clone, Copy)]
pub struct Hop {
    /// Link (index from [`Network::add_link`]) that serves this hop.
    pub link: usize,
    /// Leaf of that link's hierarchy the flow is queued at.
    pub leaf: NodeId,
    /// Drop-tail buffer limit for that leaf in bytes (`None` = unbounded).
    pub buffer_bytes: Option<u64>,
    /// Propagation delay after transmission on this hop.
    pub prop_delay: f64,
}

/// A flow's static path through the network, first hop first. Routes must
/// not visit the same link twice.
#[derive(Debug, Clone)]
pub struct Route {
    /// The hops, in forwarding order. Never empty.
    pub hops: Vec<Hop>,
}

impl Route {
    /// A multi-hop route. Panics if `hops` is empty or revisits a link.
    pub fn new(hops: Vec<Hop>) -> Self {
        assert!(!hops.is_empty(), "a route needs at least one hop");
        for (i, h) in hops.iter().enumerate() {
            assert!(
                hops[..i].iter().all(|p| p.link != h.link),
                "route visits link {} twice",
                h.link
            );
        }
        Route { hops }
    }

    /// The single-hop route of a one-link simulation: serve at `leaf` on
    /// link 0, deliver after `delivery_delay`.
    pub fn single(leaf: NodeId, buffer_bytes: Option<u64>, delivery_delay: f64) -> Self {
        Route {
            hops: vec![Hop {
                link: 0,
                leaf,
                buffer_bytes,
                prop_delay: delivery_delay,
            }],
        }
    }
}

/// A control-plane action scheduled against the simulation clock with
/// [`Network::schedule_command`]. Commands model operator actions and
/// environmental faults; they are part of the event schedule, so runs stay
/// deterministic.
pub enum SimCommand {
    /// Change link 0's rate to `bps` (bits/s) — the single-link form kept
    /// for [`crate::Simulation`] compatibility. `0.0` models an outage:
    /// the in-flight packet is suspended and resumes — with its
    /// already-sent bits credited — when a later command restores service.
    SetLinkRate(f64),
    /// Change the rate of a specific link (multi-link networks).
    SetLinkRateOn {
        /// Link to change.
        link: usize,
        /// New rate in bits/s (0 = outage).
        bps: f64,
    },
    /// Attach a new leaf under `parent` on **link 0** with share `phi` and
    /// start `source` feeding it (flow churn: join).
    AddFlow {
        /// Parent node for the new leaf (on link 0's hierarchy).
        parent: NodeId,
        /// Guaranteed share of the new leaf.
        phi: f64,
        /// Flow id the source stamps on its packets.
        flow: u32,
        /// The traffic source; its `start()` runs at the command's time.
        source: Box<dyn Source>,
        /// Drop-tail buffer for the new leaf (`None` = unbounded).
        buffer_bytes: Option<u64>,
        /// One-way delivery delay for the new source.
        delivery_delay: f64,
    },
    /// Detach `flow`'s leaves (flow churn: leave) at every hop of its
    /// route. Queued packets behind an in-service head are purged and
    /// accounted; an offered head finishes service first and the share is
    /// freed then.
    RemoveFlow(u32),
}

impl std::fmt::Debug for SimCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimCommand::SetLinkRate(r) => write!(f, "SetLinkRate({r})"),
            SimCommand::SetLinkRateOn { link, bps } => {
                write!(f, "SetLinkRateOn{{link:{link},bps:{bps}}}")
            }
            SimCommand::AddFlow {
                parent, phi, flow, ..
            } => write!(f, "AddFlow{{parent:{parent:?},phi:{phi},flow:{flow}}}"),
            SimCommand::RemoveFlow(flow) => write!(f, "RemoveFlow({flow})"),
        }
    }
}

/// What a [`FaultInjector`] decided about one packet at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketVerdict {
    /// Deliver the packet to the scheduler unchanged.
    Pass,
    /// Silently lose the packet (modeling loss upstream of the server).
    Drop,
    /// The injector mutated the packet's fields in place; the admission
    /// path revalidates it (a corrupted-invalid packet then strikes its
    /// flow under the escalation policy).
    Corrupted,
}

/// A deterministic fault source consulted on the simulator's hot paths.
///
/// Implementations must be pure functions of their own seeded state so the
/// same injector over the same workload reproduces the same faults; for
/// scheduler-differential experiments the per-flow decision streams should
/// depend only on each flow's own packet/wake order (which open-loop
/// sources make scheduler-independent).
///
/// `Send` is a supertrait so a `Network` holding an injector can cross
/// the parallel runtime's thread-scope type check.
pub trait FaultInjector: Send {
    /// Inspect — and possibly mutate — a packet at admission.
    fn on_packet(&mut self, _now: f64, _pkt: &mut Packet) -> PacketVerdict {
        PacketVerdict::Pass
    }

    /// Perturb a wake time requested by `flow`'s source. Returning `wake`
    /// unchanged means no jitter; returned times earlier than `now` are
    /// clamped to `now` by the scheduler.
    fn jitter(&mut self, _now: f64, _flow: u32, wake: f64) -> f64 {
        wake
    }

    /// Serializes the injector's internal state for an epoch checkpoint.
    /// The default refuses: [`Network::snapshot`] then reports that the
    /// installed injector cannot be checkpointed.
    fn save_state(&self) -> Result<Value, SnapError> {
        Err(SnapError {
            at: 0,
            what: "fault injector does not support checkpointing".into(),
        })
    }

    /// Restores state captured by [`FaultInjector::save_state`] into an
    /// injector of the same concrete type and configuration.
    fn load_state(&mut self, _state: &Value) -> Result<(), SnapError> {
        Err(SnapError {
            at: 0,
            what: "fault injector does not support checkpointing".into(),
        })
    }

    /// Splits off a child injector owning the per-flow decision streams of
    /// `flows`, for one shard of a parallel run. Implementations whose
    /// fault streams depend only on each flow's own packet/wake order can
    /// fork exactly: the child advances precisely the streams its shard's
    /// flows would have advanced sequentially. Returning `None` (the
    /// default) declares the injector unsplittable, and parallel runs fall
    /// back to sequential with
    /// [`crate::FallbackReason::InjectorUnsplittable`].
    fn fork_shard(&mut self, _flows: &[u32]) -> Option<Box<dyn FaultInjector>> {
        None
    }

    /// Folds a shard child's final state (its [`FaultInjector::save_state`]
    /// value) back into the parent after a parallel run, re-synchronizing
    /// the streams the child advanced.
    fn absorb_shard(&mut self, _state: &Value) -> Result<(), SnapError> {
        Ok(())
    }
}

/// The no-fault injector (used when none is installed).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn save_state(&self) -> Result<Value, SnapError> {
        Ok(Value::map(vec![("kind", Value::Str("none".into()))]))
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        match state.get("kind")?.as_str()? {
            "none" => Ok(()),
            other => Err(SnapError {
                at: 0,
                what: format!("expected no-fault injector state, found '{other}'"),
            }),
        }
    }

    fn fork_shard(&mut self, _flows: &[u32]) -> Option<Box<dyn FaultInjector>> {
        Some(Box::new(NoFaults))
    }
}

/// Why a leaf is being detached by a [`NetEvent::Detach`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DetachReason {
    /// Escalation-ladder quarantine; carries the strike count at
    /// quarantine time (captured then so delayed downstream detaches
    /// report the same count in both sequential and parallel runs).
    Quarantine { strikes: u32 },
    /// Flow churn ([`SimCommand::RemoveFlow`]).
    Churn,
}

#[derive(Debug)]
pub(crate) enum NetEvent {
    Wake(usize),
    /// A link finished a packet, tagged with that link's transmission
    /// epoch at scheduling time. Link-rate changes bump the epoch and
    /// reschedule; a fired event whose epoch is stale is ignored.
    TxComplete {
        link: usize,
        epoch: u64,
    },
    /// A packet propagated between hops: admit it at `hop` of `src`'s
    /// route.
    Arrive {
        src: usize,
        hop: usize,
        pkt: Packet,
    },
    Deliver(usize, Packet),
    Command(SimCommand),
    /// Tear down hop `hop` of `src`'s route (quarantine or churn). The
    /// first hop detaches synchronously; downstream hops receive this
    /// event after the route's cumulative propagation delay — teardown is
    /// a control-plane signal that travels the same path as the data, so
    /// its per-hop delay is at least the conservative lookahead of any
    /// shard boundary it crosses.
    Detach {
        src: usize,
        hop: usize,
        reason: DetachReason,
    },
}

/// Content-derived tie-break key for [`NetEvent`]s: a class tag in the
/// top byte, an identifying payload below it. Two runs that pop the same
/// events at the same times order equal-time events identically **without
/// consulting scheduling order across streams**, which is what lets a
/// sharded parallel run reproduce the sequential event order exactly
/// (per-shard FIFO sequence numbers cannot match the global ones).
///
/// Payloads are unique per class at any instant (packet ids are globally
/// unique; source/link indices identify their timers), so residual
/// same-key ties are between events of identical content, where FIFO
/// order is content-determined too.
pub(crate) fn minor_of(ev: &NetEvent) -> u64 {
    const CONTENT: u64 = (1 << 56) - 1;
    let (class, content) = match ev {
        NetEvent::Command(cmd) => {
            let c = match cmd {
                SimCommand::SetLinkRate(_) => 0,
                SimCommand::SetLinkRateOn { link, .. } => *link as u64,
                SimCommand::AddFlow { flow, .. } => u64::from(*flow),
                SimCommand::RemoveFlow(flow) => u64::from(*flow),
            };
            (0u64, c)
        }
        NetEvent::Wake(i) => (1, *i as u64),
        NetEvent::TxComplete { link, .. } => (2, *link as u64),
        NetEvent::Arrive { pkt, .. } => (3, pkt.id),
        NetEvent::Deliver(_, pkt) => (4, pkt.id),
        NetEvent::Detach { src, hop, .. } => (5, ((*src as u64) << 16) | (*hop as u64 & 0xFFFF)),
    };
    (class << 56) | (content & CONTENT)
}

/// Per-link byte/packet conservation ledger, for multi-hop accounting
/// checks: at every link, `bytes_in == bytes_out + purged + queued`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkLedger {
    /// Bytes accepted into this link's hierarchy.
    pub bytes_in: u64,
    /// Bytes the link finished transmitting.
    pub bytes_out: u64,
    /// Bytes purged from this link's leaves (churn/quarantine) or dropped
    /// at a later-hop buffer of this link.
    pub bytes_purged: u64,
    /// Packets accepted into this link's hierarchy.
    pub packets_in: u64,
    /// Packets the link finished transmitting.
    pub packets_out: u64,
}

/// One output link: its hierarchy plus the in-flight transmission state.
pub(crate) struct Link<S: NodeScheduler, O: Observer> {
    pub(crate) server: Hierarchy<S, O>,
    /// Current service rate in bits/s (0 during an outage).
    pub(crate) rate: f64,
    /// Transmission start time of the in-flight packet.
    pub(crate) tx_start: f64,
    /// Transmission epoch: bumped whenever the pending `TxComplete` is
    /// invalidated by a link-rate change.
    pub(crate) tx_epoch: u64,
    /// Bits of the in-flight packet not yet on the wire, as of
    /// `tx_updated`.
    pub(crate) tx_remaining_bits: f64,
    /// Time `tx_remaining_bits` was last brought up to date.
    pub(crate) tx_updated: f64,
    /// Batched-dispatch train: transmissions already planned against the
    /// hierarchy (selected, virtual clock advanced) but not yet completed
    /// on the wire, as `(planned start, packet)` in service order. Always
    /// empty when the network's dispatch batch is 1 — the pristine
    /// one-packet path never touches it. Train packets have left their
    /// leaf queues, so byte accounting counts them as queued-on-link
    /// until their `TxComplete` fires.
    pub(crate) train: VecDeque<(f64, Packet)>,
    pub(crate) ledger: LinkLedger,
}

/// One attached source and its runtime state.
pub(crate) struct SourceSlot {
    /// The generator itself. `None` on shards that replicate this slot's
    /// routing metadata but do not own the source (parallel mode): the
    /// slot's `Wake`/`Deliver` events only ever fire on the owning shard.
    pub(crate) src: Option<Box<dyn Source>>,
    pub(crate) route: Route,
    /// Flow id registered for the source at attach time.
    pub(crate) flow: u32,
    /// `false` once the flow has been removed (churn) or quarantined:
    /// its timers and deliveries are discarded from then on. Only the
    /// owning shard's copy is authoritative; every path that reads it
    /// runs there.
    pub(crate) live: bool,
    /// Whether `start()` has run (sources start exactly once even across
    /// segmented [`Network::run`] calls).
    pub(crate) started: bool,
}

/// A cross-shard event captured at its source shard, delivered to `dest`'s
/// engine at the next epoch barrier.
pub(crate) struct OutMsg {
    pub(crate) dest: usize,
    pub(crate) t: f64,
    pub(crate) minor: u64,
    pub(crate) ev: NetEvent,
}

/// Present only while a [`Network`] is acting as one shard of a parallel
/// run: identifies the shard and buffers outbound cross-shard events.
pub(crate) struct ShardCtx {
    pub(crate) id: usize,
    /// `link_shard[link]` = shard that owns `link`. Shared read-only.
    pub(crate) link_shard: std::sync::Arc<Vec<usize>>,
    pub(crate) outbox: Vec<OutMsg>,
}

/// A multi-link discrete-event simulation. Build each link's [`Hierarchy`]
/// first, [`Network::add_link`] them, attach routed sources, then
/// [`Network::run`].
///
/// Each hierarchy's [`Observer`] (second type parameter, default
/// [`NoopObserver`]) sees every scheduling event on its link; the network
/// adds the events only it can know: exact transmission times, buffer
/// drops, faults, and quarantines.
pub struct Network<S: NodeScheduler, O: Observer = NoopObserver> {
    /// `None` holes appear only in shard instances (parallel mode), for
    /// links owned by other shards; a sequential network's links are all
    /// `Some`.
    pub(crate) links: Vec<Option<Link<S, O>>>,
    pub(crate) engine: Engine<NetEvent>,
    pub(crate) sources: Vec<SourceSlot>,
    /// Statistics collector (network-wide; service records are written at
    /// a flow's **last** hop).
    pub stats: SimStats,
    /// Maps a flow id to the source that owns it (for delivery routing).
    pub(crate) flow_owner: BTreeMap<u32, usize>,
    pub(crate) injector: Option<Box<dyn FaultInjector>>,
    pub(crate) policy: EscalationPolicy,
    pub(crate) escalation: EscalationState,
    pub(crate) halted: bool,
    /// Bytes currently propagating between hops (transmitted at hop *i*,
    /// not yet admitted at hop *i+1*). Signed because a shard may admit
    /// bytes another shard transmitted: its local delta can be negative;
    /// the merged network-wide value never is.
    pub(crate) inflight_bytes: i64,
    /// Commands that could not be applied (e.g. adding a flow whose share
    /// would overflow its parent): `(time, error)` pairs. The run
    /// continues — a rejected command is degraded service, not a crash.
    pub command_errors: Vec<(f64, HpfqError)>,
    /// Set only while this network is one shard of a parallel run.
    pub(crate) shard: Option<ShardCtx>,
    /// Wall-clock span profiler over engine phases. With the `profile`
    /// cargo feature off this is a ZST whose probes compile away.
    pub(crate) profiler: SpanProfiler,
    /// When `true`, parallel runs log one [`EpochSpan`] per shard epoch.
    pub(crate) record_epochs: bool,
    /// Epoch windows recorded by parallel runs (shard order after merge).
    pub(crate) epoch_log: Vec<EpochSpan>,
    /// Per-shard span snapshots collected by the last parallel merge
    /// (empty for sequential runs, and when `profile` is off).
    pub(crate) shard_spans: Vec<SpanSnapshot>,
    /// Conservative epochs per supervised stint of a parallel run: shards
    /// merge back into the master and the epoch checkpoint is refreshed
    /// every this-many epochs. `0` means one unbounded stint (a single
    /// checkpoint at the start of the run).
    pub(crate) stint_epochs: u64,
    /// Barrier watchdog for parallel runs: a worker stuck at the two-phase
    /// exchange longer than this poisons the barrier, converting a wedged
    /// run into a typed [`crate::ShardFailure::BarrierTimeout`].
    pub(crate) watchdog: std::time::Duration,
    /// Test hook: `(shard, global epoch)` at which that shard's worker
    /// panics — armed only on the first attempt of the covering stint, so
    /// a checkpointed run recovers on retry.
    pub(crate) panic_plan: Option<(usize, u64)>,
    /// The last epoch checkpoint a parallel run held when it returned —
    /// on a halt or exhausted retry budget, the state to resume from.
    /// Diagnostic only: not itself part of snapshots.
    pub(crate) last_checkpoint: Option<Value>,
    /// Packets dispatched per virtual-clock update (see
    /// [`Network::set_dispatch_batch`]). 1 = classic per-packet mode.
    pub(crate) dispatch_batch: usize,
}

impl<S: NodeScheduler, O: Observer> Default for Network<S, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: NodeScheduler, O: Observer> Network<S, O> {
    /// An empty network: add links, then routed sources.
    pub fn new() -> Self {
        Network {
            links: Vec::new(),
            engine: Engine::new(),
            sources: Vec::new(),
            stats: SimStats::new(),
            flow_owner: BTreeMap::new(),
            injector: None,
            policy: EscalationPolicy::warn_only(),
            escalation: EscalationState::new(),
            halted: false,
            inflight_bytes: 0,
            command_errors: Vec::new(),
            shard: None,
            profiler: SpanProfiler::new(),
            record_epochs: false,
            epoch_log: Vec::new(),
            shard_spans: Vec::new(),
            stint_epochs: 64,
            watchdog: std::time::Duration::from_secs(10),
            panic_plan: None,
            last_checkpoint: None,
            dispatch_batch: 1,
        }
    }

    /// Sets the dispatch batch size `k`: each time a link goes (or stays)
    /// busy, up to `k` transmissions are planned against its hierarchy in
    /// one pass — one virtual-clock update per batch instead of per packet
    /// — and then complete on the wire back-to-back as a *train*.
    ///
    /// `k = 1` (the default) is the classic mode and is byte-identical to
    /// the historical per-packet event loop. `k > 1` trades scheduling
    /// exactness for amortized cost: packets arriving while a train is
    /// planned cannot preempt it, so any session can be served up to
    /// `k - 1` packets late — an `O(k * Lmax)` service deviation
    /// (`hpfq-analysis` checks the bound). Under mid-train link-rate
    /// changes the recorded per-packet start times keep their planned
    /// values; only the train front's completion is rescheduled exactly.
    ///
    /// Also forwards `k` to every link hierarchy so the PIFO driver
    /// batches its virtual-clock updates to match.
    pub fn set_dispatch_batch(&mut self, k: usize) {
        let k = k.max(1);
        self.dispatch_batch = k;
        for link in self.links.iter_mut().flatten() {
            link.server.set_dispatch_batch(k);
        }
    }

    /// `link`, which must be owned by this network (or this shard of it).
    /// Event routing guarantees handlers only touch owned links; a miss
    /// here is a routing bug, not a runtime condition to degrade through.
    #[track_caller]
    pub(crate) fn link(&self, link: usize) -> &Link<S, O> {
        self.links[link]
            .as_ref()
            // lint:allow(L002): shard routing invariant — an event for a
            // non-owned link can only reach here through a bug in
            // `event_shard`, which the determinism tests would surface;
            // there is no sensible degraded behaviour for a misrouted
            // borrow.
            .expect("link owned by another shard")
    }

    /// Mutable [`Network::link`].
    #[track_caller]
    pub(crate) fn link_mut(&mut self, link: usize) -> &mut Link<S, O> {
        self.links[link]
            .as_mut()
            // lint:allow(L002): see `link` — shard routing invariant.
            .expect("link owned by another shard")
    }

    /// Adds an output link scheduled by the fully built `server` hierarchy
    /// and returns its link index. The hierarchy's emitted events are
    /// re-stamped with that index, so a shared observer can tell links
    /// apart in a merged trace.
    pub fn add_link(&mut self, mut server: Hierarchy<S, O>) -> usize {
        let idx = self.links.len();
        server.set_link_id(idx);
        server.set_dispatch_batch(self.dispatch_batch);
        let rate = server.link_rate();
        self.links.push(Some(Link {
            server,
            rate,
            tx_start: 0.0,
            tx_epoch: 0,
            tx_remaining_bits: 0.0,
            tx_updated: 0.0,
            train: VecDeque::new(),
            ledger: LinkLedger::default(),
        }));
        idx
    }

    /// Installs a fault injector consulted at packet admission and timer
    /// scheduling. Replaces any previous injector.
    pub fn set_fault_injector(&mut self, inj: impl FaultInjector + 'static) {
        self.injector = Some(Box::new(inj));
    }

    /// Sets the degradation ladder for misbehaving flows. The default is
    /// [`EscalationPolicy::warn_only`]: invalid packets are dropped and
    /// recorded but flows are never quarantined.
    pub fn set_escalation_policy(&mut self, policy: EscalationPolicy) {
        self.policy = policy;
    }

    /// The escalation ladder's current state (strikes, quarantine roster).
    pub fn escalation(&self) -> &EscalationState {
        &self.escalation
    }

    /// Whether the escalation ladder halted the run ([`Network::run`]
    /// returns early once this is set).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// `link`'s current service rate in bits/s (0 during an outage).
    pub fn link_rate(&self, link: usize) -> f64 {
        self.link(link).rate
    }

    /// Read access to `link`'s hierarchy (e.g. for queue inspection).
    pub fn link_server(&self, link: usize) -> &Hierarchy<S, O> {
        &self.link(link).server
    }

    /// `link`'s conservation ledger.
    pub fn link_ledger(&self, link: usize) -> LinkLedger {
        self.link(link).ledger
    }

    /// `link`'s observer.
    pub fn observer_of(&self, link: usize) -> &O {
        self.link(link).server.observer()
    }

    /// `link`'s observer, mutably (e.g. to flush or read counters).
    pub fn observer_of_mut(&mut self, link: usize) -> &mut O {
        self.link_mut(link).server.observer_mut()
    }

    /// Consumes the network, returning every link's observer in link
    /// order.
    pub fn into_observers(self) -> Vec<O> {
        self.links
            .into_iter()
            .flatten()
            .map(|l| l.server.into_observer())
            .collect()
    }

    /// Outstanding (scheduled, unfired) events — forwarded from the
    /// engine, for capacity diagnostics and the arena-reuse tests.
    pub fn outstanding_events(&self) -> usize {
        self.engine.outstanding()
    }

    /// Size of the event arena (high-water mark of outstanding events),
    /// forwarded from the engine.
    pub fn event_arena_len(&self) -> usize {
        self.engine.arena_len()
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.engine.now()
    }

    /// Attaches a source whose packets follow `route`. `flow` is the flow
    /// id the source stamps on its packets (used to route delivery
    /// notifications back to it).
    pub fn add_route(
        &mut self,
        flow: u32,
        source: impl Source + 'static,
        route: Route,
    ) -> SourceId {
        for hop in &route.hops {
            assert!(hop.link < self.links.len(), "route references unknown link");
            assert!(
                self.link(hop.link).server.is_leaf(hop.leaf),
                "route must attach to a leaf"
            );
        }
        let idx = self.sources.len();
        self.sources.push(SourceSlot {
            src: Some(Box::new(source)),
            route,
            flow,
            live: true,
            started: false,
        });
        self.flow_owner.insert(flow, idx);
        SourceId(idx)
    }

    /// Schedules a control-plane [`SimCommand`] to fire at time `t` (times
    /// in the past fire immediately once the run reaches them).
    pub fn schedule_command(&mut self, t: f64, cmd: SimCommand) {
        self.send(t, NetEvent::Command(cmd));
    }

    /// Shard that should process `ev`. Every event is routed to the shard
    /// owning the link (or the source's first-hop link) it mutates, so
    /// handlers never touch state owned by another shard.
    pub(crate) fn event_shard(&self, link_shard: &[usize], ev: &NetEvent) -> usize {
        let of_src = |s: usize| link_shard[self.sources[s].route.hops[0].link];
        match ev {
            NetEvent::Wake(i) => of_src(*i),
            NetEvent::Deliver(i, _) => of_src(*i),
            NetEvent::TxComplete { link, .. } => link_shard[*link],
            NetEvent::Arrive { src, hop, .. } | NetEvent::Detach { src, hop, .. } => {
                link_shard[self.sources[*src].route.hops[*hop].link]
            }
            NetEvent::Command(cmd) => match cmd {
                SimCommand::SetLinkRate(_) | SimCommand::AddFlow { .. } => link_shard[0],
                SimCommand::SetLinkRateOn { link, .. } => {
                    // An out-of-range link is reported as a command error
                    // by whichever shard receives it; route to shard 0.
                    link_shard.get(*link).copied().unwrap_or(link_shard[0])
                }
                SimCommand::RemoveFlow(flow) => self
                    .flow_owner
                    .get(flow)
                    .map(|&i| of_src(i))
                    .unwrap_or(link_shard[0]),
            },
        }
    }

    /// Schedules `ev` at `t` with its content-derived minor key — locally,
    /// or into the cross-shard outbox when this network is a shard and the
    /// event belongs to another shard.
    pub(crate) fn send(&mut self, t: f64, ev: NetEvent) {
        let minor = minor_of(&ev);
        let cross = match &self.shard {
            Some(ctx) => {
                let dest = self.event_shard(&ctx.link_shard, &ev);
                (dest != ctx.id).then_some(dest)
            }
            None => None,
        };
        match (cross, self.shard.as_mut()) {
            (Some(dest), Some(ctx)) => ctx.outbox.push(OutMsg { dest, t, minor, ev }),
            _ => self.engine.schedule_keyed(t, minor, ev),
        }
    }

    fn emit_fault(&mut self, link: usize, kind: FaultKind, node: usize, flow: u32, value: f64) {
        if O::ENABLED {
            let ev = FaultEvent {
                time: self.engine.now(),
                link,
                kind,
                node,
                flow,
                value,
            };
            self.link_mut(link).server.observer_mut().on_fault(&ev);
        }
    }

    fn apply_output(&mut self, src_idx: usize, out: SourceOutput) {
        let now = self.engine.now();
        let flow = self.sources[src_idx].flow;
        let ingress = self.sources[src_idx].route.hops[0];
        for w in out.wakes {
            let mut wake = w;
            if let Some(inj) = self.injector.as_mut() {
                wake = inj.jitter(now, flow, w);
                if wake != w {
                    self.emit_fault(ingress.link, FaultKind::ClockJitter, 0, flow, wake - w);
                }
            }
            self.send(wake.max(now), NetEvent::Wake(src_idx));
        }
        for mut pkt in out.packets {
            pkt.arrival = now;
            let verdict = self
                .injector
                .as_mut()
                .map_or(PacketVerdict::Pass, |inj| inj.on_packet(now, &mut pkt));
            // "Offered" is what reaches the network's ingress port —
            // recorded after corruption so the byte ledger matches what
            // was seen.
            self.stats.record_arrival(&pkt);
            match verdict {
                PacketVerdict::Pass => {}
                PacketVerdict::Drop => {
                    self.stats.record_fault_drop(&pkt);
                    self.emit_fault(
                        ingress.link,
                        FaultKind::PacketDrop,
                        ingress.leaf.index(),
                        pkt.flow,
                        f64::from(pkt.len_bytes),
                    );
                    continue;
                }
                PacketVerdict::Corrupted => {
                    self.emit_fault(
                        ingress.link,
                        FaultKind::PacketCorrupt,
                        ingress.leaf.index(),
                        pkt.flow,
                        f64::from(pkt.len_bytes),
                    );
                }
            }
            // Degradation layer: malformed packets never reach the
            // scheduler maths — they are dropped here and strike the flow.
            if pkt.validate().is_err() {
                self.stats.record_fault_drop(&pkt);
                self.emit_fault(
                    ingress.link,
                    FaultKind::InvalidPacket,
                    ingress.leaf.index(),
                    pkt.flow,
                    f64::from(pkt.len_bytes),
                );
                self.strike(pkt.flow);
                if self.halted {
                    return;
                }
                continue;
            }
            if let Some(limit) = ingress.buffer_bytes {
                let queued = self
                    .link(ingress.link)
                    .server
                    .leaf_queue_bytes(ingress.leaf);
                if queued + u64::from(pkt.len_bytes) > limit {
                    self.stats.record_drop(&pkt);
                    if O::ENABLED {
                        let ev = DropEvent {
                            time: now,
                            link: ingress.link,
                            leaf: ingress.leaf.index(),
                            pkt: PacketInfo {
                                id: pkt.id,
                                flow: pkt.flow,
                                len_bytes: pkt.len_bytes,
                                arrival: pkt.arrival,
                            },
                            queue_bytes: queued,
                        };
                        self.link_mut(ingress.link)
                            .server
                            .observer_mut()
                            .on_drop(&ev);
                    }
                    continue;
                }
            }
            if SpanProfiler::ENABLED {
                self.profiler.span_enter(SpanKind::Enqueue);
            }
            let admitted = self
                .link_mut(ingress.link)
                .server
                .try_enqueue(ingress.leaf, pkt);
            if SpanProfiler::ENABLED {
                self.profiler.span_exit(SpanKind::Enqueue);
            }
            match admitted {
                Ok(()) => {
                    self.stats.record_accept(&pkt);
                    let l = &mut self.link_mut(ingress.link).ledger;
                    l.bytes_in += u64::from(pkt.len_bytes);
                    l.packets_in += 1;
                }
                // The leaf vanished between emission and admission (e.g.
                // quarantined while this packet was being generated):
                // account the packet as fault-dropped and move on.
                Err(_) => {
                    self.stats.record_fault_drop(&pkt);
                    self.emit_fault(
                        ingress.link,
                        FaultKind::PacketDrop,
                        ingress.leaf.index(),
                        pkt.flow,
                        f64::from(pkt.len_bytes),
                    );
                }
            }
        }
        if SpanProfiler::ENABLED {
            self.profiler.span_enter(SpanKind::Dispatch);
        }
        self.try_start(ingress.link);
        if SpanProfiler::ENABLED {
            self.profiler.span_exit(SpanKind::Dispatch);
        }
    }

    fn try_start(&mut self, link: usize) {
        let halted = self.halted;
        let now = self.engine.now();
        let k = self.dispatch_batch;
        let l = self.link_mut(link);
        if l.rate <= 0.0 || halted || l.server.is_transmitting() || !l.train.is_empty() {
            return;
        }
        if k <= 1 {
            if l.server.has_pending() {
                // has_pending() was checked just above, so this is always
                // Some; degrade to a no-op rather than asserting.
                let Some(pkt) = l.server.start_transmission_at(now) else {
                    return;
                };
                l.tx_start = now;
                l.tx_remaining_bits = pkt.bits();
                l.tx_updated = now;
                let epoch = l.tx_epoch;
                let done = now + pkt.tx_time(l.rate);
                self.send(done, NetEvent::TxComplete { link, epoch });
            }
            return;
        }
        // Batched mode: plan up to k back-to-back transmissions against the
        // hierarchy in one pass (each start/complete pair runs at its
        // projected wire time under the current rate), then ride them out
        // as a train — one pending TxComplete for the front at a time.
        let rate = l.rate;
        let mut start = now;
        for _ in 0..k {
            if !l.server.has_pending() {
                break;
            }
            let Some(pkt) = l.server.start_transmission_at(start) else {
                break;
            };
            let end = start + pkt.tx_time(rate);
            let sent = l.server.complete_transmission_at(end);
            debug_assert_eq!(sent.id, pkt.id);
            l.train.push_back((start, sent));
            start = end;
        }
        self.arm_train_front(link, now);
    }

    /// Schedules the pending `TxComplete` for the train's front packet and
    /// points the in-flight bookkeeping (`tx_start`/`tx_remaining_bits`/
    /// `tx_updated`) at it. No-op when the train is empty; during an
    /// outage the bookkeeping is set but the completion waits for
    /// `set_link_rate` to restore a positive rate.
    fn arm_train_front(&mut self, link: usize, now: f64) {
        let l = self.link_mut(link);
        let Some(&(start, ref pkt)) = l.train.front() else {
            return;
        };
        l.tx_start = start;
        l.tx_remaining_bits = pkt.bits();
        l.tx_updated = now;
        if l.rate > 0.0 {
            let epoch = l.tx_epoch;
            let done = now + l.tx_remaining_bits / l.rate;
            self.send(done, NetEvent::TxComplete { link, epoch });
        }
    }

    /// Changes one link's service rate at the current instant. A rate of 0
    /// suspends service (outage); the in-flight packet, if any, keeps the
    /// bits it already transmitted and its completion is rescheduled when
    /// a later call restores a positive rate.
    fn set_link_rate(&mut self, link: usize, new_rate: f64) {
        let now = self.engine.now();
        if !(new_rate.is_finite() && new_rate >= 0.0) {
            self.command_errors
                .push((now, HpfqError::InvalidRate(new_rate)));
            return;
        }
        let l = self.link_mut(link);
        if l.server.is_transmitting() || !l.train.is_empty() {
            // Credit bits sent under the old rate, then reschedule the
            // remainder under the new one. In batched mode this applies to
            // the train's front packet; queued train members keep their
            // full length and are timed at the prevailing rate when they
            // reach the front.
            let sent = (now - l.tx_updated) * l.rate;
            l.tx_remaining_bits = (l.tx_remaining_bits - sent).max(0.0);
            l.tx_updated = now;
            l.tx_epoch += 1;
            if new_rate > 0.0 {
                let done = now + l.tx_remaining_bits / new_rate;
                let epoch = l.tx_epoch;
                self.send(done, NetEvent::TxComplete { link, epoch });
            }
        }
        let l = self.link_mut(link);
        l.rate = new_rate;
        // Resync the hierarchy's reference clock: the GPS-exact policies
        // measure elapsed busy time in nominal-rate link seconds, so a
        // degraded link must slow (or, in an outage, freeze) that clock.
        let factor = new_rate / l.server.link_rate();
        if let Err(e) = l.server.set_link_rate_factor(now, factor) {
            self.command_errors.push((now, e));
        }
        if !self.link(link).server.is_transmitting() && self.link(link).train.is_empty() {
            self.try_start(link);
        }
    }

    /// Records one incident against `flow` and applies the escalation
    /// ladder's response: warn (no-op beyond the strike count), quarantine
    /// (the flow's leaves are removed at every hop and their queues
    /// purged), or halt (the run stops at the current event). Returns the
    /// level applied.
    ///
    /// Invalid packets strike automatically at admission; harnesses call
    /// this directly to escalate externally detected misbehaviour (e.g. an
    /// invariant-check violation attributed to a flow).
    pub fn strike(&mut self, flow: u32) -> EscalationLevel {
        let level = self.escalation.strike(&self.policy, flow);
        match level {
            EscalationLevel::Warn => {}
            EscalationLevel::Quarantine => self.quarantine(flow),
            EscalationLevel::Halt => {
                // Halt still isolates the offending flow so a post-mortem
                // inspection sees a consistent tree.
                self.quarantine(flow);
                self.halted = true;
            }
        }
        level
    }

    /// Stops `flow`'s source and tears its route down: the first hop's
    /// leaf is removed immediately, downstream hops when the teardown
    /// signal propagates to them (see [`NetEvent::Detach`]). Single-hop
    /// routes therefore behave exactly as the historical instantaneous
    /// quarantine did.
    fn quarantine(&mut self, flow: u32) {
        let Some(&idx) = self.flow_owner.get(&flow) else {
            return;
        };
        if !self.sources[idx].live {
            return;
        }
        self.sources[idx].live = false;
        let strikes = self.escalation.strikes(flow);
        self.detach_route(idx, DetachReason::Quarantine { strikes });
    }

    /// Detaches hop 0 of `src`'s route now and schedules [`NetEvent::
    /// Detach`] for each downstream hop at the route's cumulative
    /// propagation delay. The delay keeps teardown causal with the data
    /// path — and, in parallel runs, at or above the conservative
    /// lookahead of any shard boundary the signal crosses.
    fn detach_route(&mut self, src: usize, reason: DetachReason) {
        let now = self.engine.now();
        self.detach_hop(src, 0, reason);
        let n_hops = self.sources[src].route.hops.len();
        let mut delay = 0.0;
        for hop in 1..n_hops {
            delay += self.sources[src].route.hops[hop - 1].prop_delay;
            self.send(now + delay, NetEvent::Detach { src, hop, reason });
        }
    }

    /// Removes the leaf at hop `hop_idx` of `src`'s route, purging and
    /// accounting its queued packets.
    fn detach_hop(&mut self, src: usize, hop_idx: usize, reason: DetachReason) {
        let now = self.engine.now();
        let flow = self.sources[src].flow;
        let hop = self.sources[src].route.hops[hop_idx];
        // Captured before removal: churn reports the share being freed.
        let phi = self.link(hop.link).server.phi(hop.leaf);
        match self.link_mut(hop.link).server.remove_leaf(hop.leaf) {
            Ok(purged) => {
                let mut purged_packets = 0u64;
                let mut purged_bytes = 0u64;
                for p in &purged {
                    self.stats.record_purge(p);
                    purged_packets += 1;
                    purged_bytes += u64::from(p.len_bytes);
                }
                self.link_mut(hop.link).ledger.bytes_purged += purged_bytes;
                match reason {
                    DetachReason::Quarantine { strikes } => {
                        if O::ENABLED {
                            let ev = QuarantineEvent {
                                time: now,
                                link: hop.link,
                                leaf: hop.leaf.index(),
                                flow,
                                strikes,
                                purged_packets,
                                purged_bytes,
                            };
                            self.link_mut(hop.link)
                                .server
                                .observer_mut()
                                .on_quarantine(&ev);
                        }
                    }
                    DetachReason::Churn => {
                        self.emit_fault(
                            hop.link,
                            FaultKind::FlowRemove,
                            hop.leaf.index(),
                            flow,
                            phi,
                        );
                    }
                }
            }
            Err(e) => self.command_errors.push((now, e)),
        }
    }

    fn apply_command(&mut self, cmd: SimCommand) {
        let now = self.engine.now();
        match cmd {
            SimCommand::SetLinkRate(bps) => self.rate_command(0, bps),
            SimCommand::SetLinkRateOn { link, bps } => {
                if link >= self.links.len() {
                    self.command_errors
                        .push((now, HpfqError::UnknownNode(link)));
                    return;
                }
                self.rate_command(link, bps);
            }
            SimCommand::AddFlow {
                parent,
                phi,
                flow,
                source,
                buffer_bytes,
                delivery_delay,
            } => match self.link_mut(0).server.add_leaf(parent, phi) {
                Ok(leaf) => {
                    let idx = self.sources.len();
                    self.sources.push(SourceSlot {
                        src: Some(source),
                        route: Route::single(leaf, buffer_bytes, delivery_delay),
                        flow,
                        live: true,
                        started: true,
                    });
                    self.flow_owner.insert(flow, idx);
                    self.emit_fault(0, FaultKind::FlowAdd, leaf.index(), flow, phi);
                    let out = match self.sources[idx].src.as_mut() {
                        Some(src) => src.start(),
                        None => SourceOutput::none(),
                    };
                    debug_assert!(out.packets.is_empty(), "start() must not emit packets");
                    self.apply_output(idx, out);
                }
                Err(e) => self.command_errors.push((now, e)),
            },
            SimCommand::RemoveFlow(flow) => {
                let Some(&idx) = self.flow_owner.get(&flow) else {
                    self.command_errors
                        .push((now, HpfqError::UnknownNode(usize::MAX)));
                    return;
                };
                if !self.sources[idx].live {
                    return;
                }
                self.sources[idx].live = false;
                self.detach_route(idx, DetachReason::Churn);
            }
        }
    }

    fn rate_command(&mut self, link: usize, bps: f64) {
        let kind = if bps == 0.0 {
            FaultKind::LinkDown
        } else if self.link(link).rate == 0.0 {
            FaultKind::LinkUp
        } else {
            FaultKind::LinkRate
        };
        self.emit_fault(link, kind, 0, 0, bps);
        self.set_link_rate(link, bps);
    }

    /// Admits `pkt` at hop `hop` of `src`'s route (a propagated packet
    /// from the previous hop). Drops at a downstream buffer are accounted
    /// as purges: the packet was already accepted into the network at
    /// ingress.
    fn arrive(&mut self, src: usize, hop_idx: usize, mut pkt: Packet) {
        self.inflight_bytes -= i64::from(pkt.len_bytes);
        let now = self.engine.now();
        let hop = self.sources[src].route.hops[hop_idx];
        // A removed/quarantined flow's leaf disappears from this hop when
        // the Detach event lands here; until then bytes already on the
        // wire are admitted normally (they will be purged with the leaf).
        // Keying the decision on local leaf state — never on the owner
        // shard's `live` flag — is what keeps sequential and parallel
        // runs identical.
        pkt.arrival = now;
        if let Some(limit) = hop.buffer_bytes {
            let queued = self.link(hop.link).server.leaf_queue_bytes(hop.leaf);
            if queued + u64::from(pkt.len_bytes) > limit {
                self.stats.record_purge(&pkt);
                if O::ENABLED {
                    let ev = DropEvent {
                        time: now,
                        link: hop.link,
                        leaf: hop.leaf.index(),
                        pkt: PacketInfo {
                            id: pkt.id,
                            flow: pkt.flow,
                            len_bytes: pkt.len_bytes,
                            arrival: pkt.arrival,
                        },
                        queue_bytes: queued,
                    };
                    self.link_mut(hop.link).server.observer_mut().on_drop(&ev);
                }
                return;
            }
        }
        if SpanProfiler::ENABLED {
            self.profiler.span_enter(SpanKind::Enqueue);
        }
        let admitted = self.link_mut(hop.link).server.try_enqueue(hop.leaf, pkt);
        if SpanProfiler::ENABLED {
            self.profiler.span_exit(SpanKind::Enqueue);
        }
        match admitted {
            Ok(()) => {
                let l = &mut self.link_mut(hop.link).ledger;
                l.bytes_in += u64::from(pkt.len_bytes);
                l.packets_in += 1;
            }
            Err(_) => {
                self.stats.record_purge(&pkt);
                self.emit_fault(
                    hop.link,
                    FaultKind::PacketDrop,
                    hop.leaf.index(),
                    pkt.flow,
                    f64::from(pkt.len_bytes),
                );
            }
        }
        if SpanProfiler::ENABLED {
            self.profiler.span_enter(SpanKind::Dispatch);
        }
        self.try_start(hop.link);
        if SpanProfiler::ENABLED {
            self.profiler.span_exit(SpanKind::Dispatch);
        }
    }

    fn tx_complete(&mut self, link: usize, epoch: u64) {
        if epoch != self.link(link).tx_epoch {
            // Superseded by a link-rate change; the rescheduled
            // completion carries the current epoch.
            return;
        }
        let t = self.engine.now();
        if SpanProfiler::ENABLED {
            self.profiler.span_enter(SpanKind::Vclock);
        }
        // Batched mode: the hierarchy already completed this packet at plan
        // time; pop it off the train. Classic mode completes it now.
        let (pkt, started) = match self.link_mut(link).train.pop_front() {
            Some((start, pkt)) => (pkt, start),
            None => {
                let pkt = self.link_mut(link).server.complete_transmission_at(t);
                let started = self.link(link).tx_start;
                (pkt, started)
            }
        };
        if SpanProfiler::ENABLED {
            self.profiler.span_exit(SpanKind::Vclock);
        }
        {
            let l = &mut self.link_mut(link).ledger;
            l.bytes_out += u64::from(pkt.len_bytes);
            l.packets_out += 1;
        }
        if let Some(&owner) = self.flow_owner.get(&pkt.flow) {
            let route = &self.sources[owner].route;
            // Routes never repeat a link, so the position identifies the
            // hop just served.
            let hop_idx = route.hops.iter().position(|h| h.link == link);
            match hop_idx {
                Some(i) if i + 1 < route.hops.len() => {
                    // Propagate to the next hop (even if the source has
                    // since been removed: bytes on the wire stay on the
                    // wire; the next hop purges them once its leaf is
                    // detached).
                    self.inflight_bytes += i64::from(pkt.len_bytes);
                    let delay = route.hops[i].prop_delay;
                    self.send(
                        t + delay,
                        NetEvent::Arrive {
                            src: owner,
                            hop: i + 1,
                            pkt,
                        },
                    );
                }
                _ => {
                    // Final hop: the packet leaves the network. Delivery
                    // is always scheduled — the owner-side handler drops
                    // it if the flow has since been removed, so the
                    // decision is made where the `live` flag is
                    // authoritative (its owning shard, in parallel runs).
                    self.stats.record_service(ServiceRecord {
                        id: pkt.id,
                        flow: pkt.flow,
                        len_bytes: pkt.len_bytes,
                        arrival: pkt.arrival,
                        start: started,
                        end: t,
                    });
                    let delay = route.hops.last().map(|h| h.prop_delay).unwrap_or(0.0);
                    self.send(t + delay, NetEvent::Deliver(owner, pkt));
                }
            }
        } else {
            // No owner (should not happen): count the service at this
            // link as final.
            self.stats.record_service(ServiceRecord {
                id: pkt.id,
                flow: pkt.flow,
                len_bytes: pkt.len_bytes,
                arrival: pkt.arrival,
                start: started,
                end: t,
            });
        }
        if SpanProfiler::ENABLED {
            self.profiler.span_enter(SpanKind::Dispatch);
        }
        // Batched mode: the next train member (if any) goes on the wire
        // back-to-back; try_start is then a no-op until the train drains.
        self.arm_train_front(link, t);
        self.try_start(link);
        if SpanProfiler::ENABLED {
            self.profiler.span_exit(SpanKind::Dispatch);
        }
    }

    /// Runs the simulation until `horizon` seconds (events strictly after
    /// the horizon are left unprocessed), until no events remain, or until
    /// the escalation ladder halts the run. May be called repeatedly with
    /// growing horizons to run in segments; sources are started once.
    pub fn run(&mut self, horizon: f64) {
        self.start_pending_sources();
        while !self.halted {
            if SpanProfiler::ENABLED {
                self.profiler.span_enter(SpanKind::EventPop);
            }
            let popped = self.engine.pop_due(horizon);
            if SpanProfiler::ENABLED {
                self.profiler.span_exit(SpanKind::EventPop);
            }
            let Some((t, ev)) = popped else {
                break;
            };
            if SpanProfiler::ENABLED {
                self.profiler.span_enter(SpanKind::EventHandle);
            }
            self.handle(t, ev);
            if SpanProfiler::ENABLED {
                self.profiler.span_exit(SpanKind::EventHandle);
            }
        }
        // Unfired events past the horizon stay queued so a subsequent
        // `run` with a larger horizon continues cleanly.
    }

    /// Starts any sources not yet started (first call, or sources attached
    /// between run segments).
    pub(crate) fn start_pending_sources(&mut self) {
        for i in 0..self.sources.len() {
            if !self.sources[i].started {
                self.sources[i].started = true;
                let out = match self.sources[i].src.as_mut() {
                    Some(src) => src.start(),
                    None => continue,
                };
                debug_assert!(out.packets.is_empty(), "start() must not emit packets");
                self.apply_output(i, out);
            }
        }
    }

    /// Dispatches one popped event. Shared by the sequential loop and the
    /// parallel epoch driver so both modes run identical handler code.
    pub(crate) fn handle(&mut self, t: f64, ev: NetEvent) {
        match ev {
            NetEvent::Wake(i) => {
                if !self.sources[i].live {
                    return;
                }
                let out = match self.sources[i].src.as_mut() {
                    Some(src) => src.on_wake(t),
                    None => return,
                };
                self.apply_output(i, out);
            }
            NetEvent::TxComplete { link, epoch } => self.tx_complete(link, epoch),
            NetEvent::Arrive { src, hop, pkt } => self.arrive(src, hop, pkt),
            NetEvent::Deliver(i, pkt) => {
                if !self.sources[i].live {
                    return;
                }
                let out = match self.sources[i].src.as_mut() {
                    Some(src) => src.on_delivered(t, &pkt),
                    None => return,
                };
                self.apply_output(i, out);
            }
            NetEvent::Command(cmd) => self.apply_command(cmd),
            NetEvent::Detach { src, hop, reason } => self.detach_hop(src, hop, reason),
        }
    }

    /// Bytes currently queued at `link`: leaf queues (including any
    /// in-flight packet, which stays in its leaf queue until completion)
    /// plus any planned train packets (batched mode), which have left
    /// their leaves but not yet completed on the wire.
    pub fn queued_bytes_on(&self, link: usize) -> u64 {
        let l = self.link(link);
        let leaves: u64 = l
            .server
            .leaves_iter()
            .map(|leaf| l.server.leaf_queue_bytes(leaf))
            .sum();
        let train: u64 = l
            .train
            .iter()
            .map(|(_, p)| u64::from(p.len_bytes))
            .sum();
        leaves + train
    }

    /// Bytes currently queued across every link.
    pub fn queued_bytes(&self) -> u64 {
        self.links
            .iter()
            .flatten()
            .map(|l| {
                let leaves: u64 = l
                    .server
                    .leaves_iter()
                    .map(|leaf| l.server.leaf_queue_bytes(leaf))
                    .sum();
                let train: u64 = l
                    .train
                    .iter()
                    .map(|(_, p)| u64::from(p.len_bytes))
                    .sum();
                leaves + train
            })
            .sum()
    }

    /// End-to-end byte conservation check: every offered byte is accounted
    /// for as served, buffer-dropped, fault-dropped, purged, still queued,
    /// or propagating between hops. Returns a description of the
    /// imbalance, if any.
    pub fn verify_conservation(&self) -> Result<(), String> {
        let inflight = u64::try_from(self.inflight_bytes).map_err(|_| {
            format!(
                "in-flight byte count is negative ({}): arrivals outran transmissions",
                self.inflight_bytes
            )
        })?;
        self.stats
            .accounting_balanced(self.queued_bytes() + inflight)?;
        // Per-link ledgers must balance independently (multi-hop: every
        // hop conserves bytes on its own).
        for (i, link) in self.links.iter().enumerate() {
            let Some(link) = link else { continue };
            let LinkLedger {
                bytes_in,
                bytes_out,
                bytes_purged,
                ..
            } = link.ledger;
            let queued = self.queued_bytes_on(i);
            if bytes_in != bytes_out + bytes_purged + queued {
                return Err(format!(
                    "link {i}: in {bytes_in} B != out {bytes_out} + purged {bytes_purged} \
                     + queued {queued} B"
                ));
            }
        }
        Ok(())
    }

    /// Aggregated wall-clock span timings recorded so far: the sequential
    /// engine's own samples plus, after [`crate::run_parallel`], every
    /// worker shard's (absorbed at merge). Empty unless the crate was
    /// built with the `profile` feature.
    pub fn span_snapshot(&self) -> SpanSnapshot {
        self.profiler.snapshot()
    }

    /// Per-shard span snapshots from the last parallel run, in shard
    /// order. Empty for sequential runs and when `profile` is off.
    pub fn shard_span_snapshots(&self) -> &[SpanSnapshot] {
        &self.shard_spans
    }

    /// Enables (or disables) per-epoch logging for parallel runs: each
    /// shard records one [`EpochSpan`] per conservative epoch window.
    /// Unlike span timing this is a runtime switch — epochs are stamped
    /// with *simulation* time, so recording them is deterministic and
    /// needs no feature gate.
    pub fn set_record_epochs(&mut self, on: bool) {
        self.record_epochs = on;
    }

    /// Epoch windows logged by parallel runs (shard-major order after the
    /// merge). Empty unless [`Network::set_record_epochs`] was called.
    pub fn epoch_log(&self) -> &[EpochSpan] {
        &self.epoch_log
    }

    /// Renders [`Network::span_snapshot`] as a fixed-width text table.
    pub fn span_report(&self) -> String {
        self.profiler.snapshot().report_text("network")
    }

    /// Sets how many conservative epochs a parallel run executes per
    /// supervised stint: at each stint boundary the shards merge back into
    /// the master and the epoch checkpoint is refreshed, bounding how much
    /// work a crash rollback can lose. Default 64; `0` means a single
    /// unbounded stint (one checkpoint at the start of the run).
    pub fn set_stint_epochs(&mut self, epochs: u64) {
        self.stint_epochs = epochs;
    }

    /// Sets the watchdog timeout for the parallel runtime's two-barrier
    /// exchange (default 10 s). A worker waiting longer than this — its
    /// peer died or wedged — poisons the barrier; the stint fails with a
    /// typed [`crate::ShardFailure`] instead of hanging, and the
    /// supervisor rolls back to the last checkpoint.
    pub fn set_watchdog(&mut self, timeout: std::time::Duration) {
        self.watchdog = timeout;
    }

    /// Arms a one-shot injected panic: the worker for `shard` panics when
    /// the global epoch counter reaches `epoch` — on the **first** attempt
    /// of the stint containing that epoch only, so a checkpointed run
    /// recovers on retry. The crash-recovery tests and the CI soak use
    /// this to prove panic containment end to end.
    pub fn inject_shard_panic(&mut self, shard: usize, epoch: u64) {
        self.panic_plan = Some((shard, epoch));
    }

    /// The last epoch checkpoint the most recent parallel run held when it
    /// returned: after a clean run, the final stint-boundary refresh; after
    /// a halt replay or an exhausted retry budget, the exact state the run
    /// was rolled back to. `None` until a checkpointed parallel run has
    /// completed. Harnesses attach its serialized bytes to a
    /// [`hpfq_obs::FlightRecorder`] so post-mortem dumps carry the state to
    /// resume from.
    pub fn last_checkpoint(&self) -> Option<&Value> {
        self.last_checkpoint.as_ref()
    }
}
