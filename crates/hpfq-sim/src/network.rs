//! Multi-link network simulation on the shared [`hpfq_events`] engine.
//!
//! A [`Network`] owns any number of output links, each scheduled by its own
//! H-PFQ [`Hierarchy`], plus a set of flows with **static routes**: an
//! ordered list of `(link, leaf)` hops. A packet is enqueued at its first
//! hop, transmitted by that link's hierarchy, propagates for the hop's
//! delay, is re-enqueued at the next hop, and so on; after the last hop it
//! is delivered back to its source (ACK clocking for closed-loop sources).
//!
//! The event loop is [`hpfq_events::Engine`] — the same deterministic
//! `(time, seq)` FIFO-tie-breaking core used by the fluid simulator and the
//! chaos harness — so a one-link network replays the legacy single-link
//! [`crate::Simulation`] byte-for-byte (that wrapper now *is* a one-link
//! network).
//!
//! Every hierarchy is stamped with its link id, so one shared observer
//! (e.g. a [`hpfq_obs::JsonlObserver`] over a [`hpfq_obs::SharedBuf`])
//! yields a single merged trace from which `hpfq-analysis` recovers
//! per-hop and end-to-end delays.
//!
//! # Faults and degradation
//!
//! A [`FaultInjector`] installed with [`Network::set_fault_injector`] sees
//! every packet at network ingress (it may drop or corrupt it) and every
//! source timer (it may jitter it). Malformed packets are caught by
//! [`Packet::validate`] at admission and become *strikes* against their
//! flow under the network's [`EscalationPolicy`]: warn, quarantine (the
//! flow's leaves are removed at every hop), or halt. Nothing in this path
//! panics.

use std::collections::BTreeMap;

use hpfq_core::{Hierarchy, HpfqError, NodeId, NodeScheduler, Packet};
use hpfq_events::Engine;
use hpfq_obs::{
    DropEvent, EscalationLevel, EscalationPolicy, EscalationState, FaultEvent, FaultKind,
    NoopObserver, Observer, PacketInfo, QuarantineEvent,
};

use crate::source::{Source, SourceOutput};
use crate::stats::{ServiceRecord, SimStats};

/// Index of a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub usize);

/// One hop of a [`Route`]: which link serves the packet, at which leaf of
/// that link's hierarchy, under what buffer, and how long the packet
/// propagates after transmission (to the next hop, or — on the last hop —
/// to the destination that acknowledges delivery).
#[derive(Debug, Clone, Copy)]
pub struct Hop {
    /// Link (index from [`Network::add_link`]) that serves this hop.
    pub link: usize,
    /// Leaf of that link's hierarchy the flow is queued at.
    pub leaf: NodeId,
    /// Drop-tail buffer limit for that leaf in bytes (`None` = unbounded).
    pub buffer_bytes: Option<u64>,
    /// Propagation delay after transmission on this hop.
    pub prop_delay: f64,
}

/// A flow's static path through the network, first hop first. Routes must
/// not visit the same link twice.
#[derive(Debug, Clone)]
pub struct Route {
    /// The hops, in forwarding order. Never empty.
    pub hops: Vec<Hop>,
}

impl Route {
    /// A multi-hop route. Panics if `hops` is empty or revisits a link.
    pub fn new(hops: Vec<Hop>) -> Self {
        assert!(!hops.is_empty(), "a route needs at least one hop");
        for (i, h) in hops.iter().enumerate() {
            assert!(
                hops[..i].iter().all(|p| p.link != h.link),
                "route visits link {} twice",
                h.link
            );
        }
        Route { hops }
    }

    /// The single-hop route of a one-link simulation: serve at `leaf` on
    /// link 0, deliver after `delivery_delay`.
    pub fn single(leaf: NodeId, buffer_bytes: Option<u64>, delivery_delay: f64) -> Self {
        Route {
            hops: vec![Hop {
                link: 0,
                leaf,
                buffer_bytes,
                prop_delay: delivery_delay,
            }],
        }
    }
}

/// A control-plane action scheduled against the simulation clock with
/// [`Network::schedule_command`]. Commands model operator actions and
/// environmental faults; they are part of the event schedule, so runs stay
/// deterministic.
pub enum SimCommand {
    /// Change link 0's rate to `bps` (bits/s) — the single-link form kept
    /// for [`crate::Simulation`] compatibility. `0.0` models an outage:
    /// the in-flight packet is suspended and resumes — with its
    /// already-sent bits credited — when a later command restores service.
    SetLinkRate(f64),
    /// Change the rate of a specific link (multi-link networks).
    SetLinkRateOn {
        /// Link to change.
        link: usize,
        /// New rate in bits/s (0 = outage).
        bps: f64,
    },
    /// Attach a new leaf under `parent` on **link 0** with share `phi` and
    /// start `source` feeding it (flow churn: join).
    AddFlow {
        /// Parent node for the new leaf (on link 0's hierarchy).
        parent: NodeId,
        /// Guaranteed share of the new leaf.
        phi: f64,
        /// Flow id the source stamps on its packets.
        flow: u32,
        /// The traffic source; its `start()` runs at the command's time.
        source: Box<dyn Source>,
        /// Drop-tail buffer for the new leaf (`None` = unbounded).
        buffer_bytes: Option<u64>,
        /// One-way delivery delay for the new source.
        delivery_delay: f64,
    },
    /// Detach `flow`'s leaves (flow churn: leave) at every hop of its
    /// route. Queued packets behind an in-service head are purged and
    /// accounted; an offered head finishes service first and the share is
    /// freed then.
    RemoveFlow(u32),
}

impl std::fmt::Debug for SimCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimCommand::SetLinkRate(r) => write!(f, "SetLinkRate({r})"),
            SimCommand::SetLinkRateOn { link, bps } => {
                write!(f, "SetLinkRateOn{{link:{link},bps:{bps}}}")
            }
            SimCommand::AddFlow {
                parent, phi, flow, ..
            } => write!(f, "AddFlow{{parent:{parent:?},phi:{phi},flow:{flow}}}"),
            SimCommand::RemoveFlow(flow) => write!(f, "RemoveFlow({flow})"),
        }
    }
}

/// What a [`FaultInjector`] decided about one packet at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketVerdict {
    /// Deliver the packet to the scheduler unchanged.
    Pass,
    /// Silently lose the packet (modeling loss upstream of the server).
    Drop,
    /// The injector mutated the packet's fields in place; the admission
    /// path revalidates it (a corrupted-invalid packet then strikes its
    /// flow under the escalation policy).
    Corrupted,
}

/// A deterministic fault source consulted on the simulator's hot paths.
///
/// Implementations must be pure functions of their own seeded state so the
/// same injector over the same workload reproduces the same faults; for
/// scheduler-differential experiments the per-flow decision streams should
/// depend only on each flow's own packet/wake order (which open-loop
/// sources make scheduler-independent).
pub trait FaultInjector {
    /// Inspect — and possibly mutate — a packet at admission.
    fn on_packet(&mut self, _now: f64, _pkt: &mut Packet) -> PacketVerdict {
        PacketVerdict::Pass
    }

    /// Perturb a wake time requested by `flow`'s source. Returning `wake`
    /// unchanged means no jitter; returned times earlier than `now` are
    /// clamped to `now` by the scheduler.
    fn jitter(&mut self, _now: f64, _flow: u32, wake: f64) -> f64 {
        wake
    }
}

/// The no-fault injector (used when none is installed).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

#[derive(Debug)]
enum NetEvent {
    Wake(usize),
    /// A link finished a packet, tagged with that link's transmission
    /// epoch at scheduling time. Link-rate changes bump the epoch and
    /// reschedule; a fired event whose epoch is stale is ignored.
    TxComplete {
        link: usize,
        epoch: u64,
    },
    /// A packet propagated between hops: admit it at `hop` of `src`'s
    /// route.
    Arrive {
        src: usize,
        hop: usize,
        pkt: Packet,
    },
    Deliver(usize, Packet),
    Command(SimCommand),
}

/// Per-link byte/packet conservation ledger, for multi-hop accounting
/// checks: at every link, `bytes_in == bytes_out + purged + queued`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkLedger {
    /// Bytes accepted into this link's hierarchy.
    pub bytes_in: u64,
    /// Bytes the link finished transmitting.
    pub bytes_out: u64,
    /// Bytes purged from this link's leaves (churn/quarantine) or dropped
    /// at a later-hop buffer of this link.
    pub bytes_purged: u64,
    /// Packets accepted into this link's hierarchy.
    pub packets_in: u64,
    /// Packets the link finished transmitting.
    pub packets_out: u64,
}

/// One output link: its hierarchy plus the in-flight transmission state.
struct Link<S: NodeScheduler, O: Observer> {
    server: Hierarchy<S, O>,
    /// Current service rate in bits/s (0 during an outage).
    rate: f64,
    /// Transmission start time of the in-flight packet.
    tx_start: f64,
    /// Transmission epoch: bumped whenever the pending `TxComplete` is
    /// invalidated by a link-rate change.
    tx_epoch: u64,
    /// Bits of the in-flight packet not yet on the wire, as of
    /// `tx_updated`.
    tx_remaining_bits: f64,
    /// Time `tx_remaining_bits` was last brought up to date.
    tx_updated: f64,
    ledger: LinkLedger,
}

/// One attached source and its runtime state.
struct SourceSlot {
    src: Box<dyn Source>,
    route: Route,
    /// Flow id registered for the source at attach time.
    flow: u32,
    /// `false` once the flow has been removed (churn) or quarantined:
    /// its timers, deliveries, and in-flight hops are discarded from then
    /// on.
    live: bool,
    /// Whether `start()` has run (sources start exactly once even across
    /// segmented [`Network::run`] calls).
    started: bool,
}

/// A multi-link discrete-event simulation. Build each link's [`Hierarchy`]
/// first, [`Network::add_link`] them, attach routed sources, then
/// [`Network::run`].
///
/// Each hierarchy's [`Observer`] (second type parameter, default
/// [`NoopObserver`]) sees every scheduling event on its link; the network
/// adds the events only it can know: exact transmission times, buffer
/// drops, faults, and quarantines.
pub struct Network<S: NodeScheduler, O: Observer = NoopObserver> {
    links: Vec<Link<S, O>>,
    engine: Engine<NetEvent>,
    sources: Vec<SourceSlot>,
    /// Statistics collector (network-wide; service records are written at
    /// a flow's **last** hop).
    pub stats: SimStats,
    /// Maps a flow id to the source that owns it (for delivery routing).
    flow_owner: BTreeMap<u32, usize>,
    injector: Option<Box<dyn FaultInjector>>,
    policy: EscalationPolicy,
    escalation: EscalationState,
    halted: bool,
    /// Bytes currently propagating between hops (transmitted at hop *i*,
    /// not yet admitted at hop *i+1*).
    inflight_bytes: u64,
    /// Commands that could not be applied (e.g. adding a flow whose share
    /// would overflow its parent): `(time, error)` pairs. The run
    /// continues — a rejected command is degraded service, not a crash.
    pub command_errors: Vec<(f64, HpfqError)>,
}

impl<S: NodeScheduler, O: Observer> Default for Network<S, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: NodeScheduler, O: Observer> Network<S, O> {
    /// An empty network: add links, then routed sources.
    pub fn new() -> Self {
        Network {
            links: Vec::new(),
            engine: Engine::new(),
            sources: Vec::new(),
            stats: SimStats::new(),
            flow_owner: BTreeMap::new(),
            injector: None,
            policy: EscalationPolicy::warn_only(),
            escalation: EscalationState::new(),
            halted: false,
            inflight_bytes: 0,
            command_errors: Vec::new(),
        }
    }

    /// Adds an output link scheduled by the fully built `server` hierarchy
    /// and returns its link index. The hierarchy's emitted events are
    /// re-stamped with that index, so a shared observer can tell links
    /// apart in a merged trace.
    pub fn add_link(&mut self, mut server: Hierarchy<S, O>) -> usize {
        let idx = self.links.len();
        server.set_link_id(idx);
        let rate = server.link_rate();
        self.links.push(Link {
            server,
            rate,
            tx_start: 0.0,
            tx_epoch: 0,
            tx_remaining_bits: 0.0,
            tx_updated: 0.0,
            ledger: LinkLedger::default(),
        });
        idx
    }

    /// Installs a fault injector consulted at packet admission and timer
    /// scheduling. Replaces any previous injector.
    pub fn set_fault_injector(&mut self, inj: impl FaultInjector + 'static) {
        self.injector = Some(Box::new(inj));
    }

    /// Sets the degradation ladder for misbehaving flows. The default is
    /// [`EscalationPolicy::warn_only`]: invalid packets are dropped and
    /// recorded but flows are never quarantined.
    pub fn set_escalation_policy(&mut self, policy: EscalationPolicy) {
        self.policy = policy;
    }

    /// The escalation ladder's current state (strikes, quarantine roster).
    pub fn escalation(&self) -> &EscalationState {
        &self.escalation
    }

    /// Whether the escalation ladder halted the run ([`Network::run`]
    /// returns early once this is set).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// `link`'s current service rate in bits/s (0 during an outage).
    pub fn link_rate(&self, link: usize) -> f64 {
        self.links[link].rate
    }

    /// Read access to `link`'s hierarchy (e.g. for queue inspection).
    pub fn link_server(&self, link: usize) -> &Hierarchy<S, O> {
        &self.links[link].server
    }

    /// `link`'s conservation ledger.
    pub fn link_ledger(&self, link: usize) -> LinkLedger {
        self.links[link].ledger
    }

    /// `link`'s observer.
    pub fn observer_of(&self, link: usize) -> &O {
        self.links[link].server.observer()
    }

    /// `link`'s observer, mutably (e.g. to flush or read counters).
    pub fn observer_of_mut(&mut self, link: usize) -> &mut O {
        self.links[link].server.observer_mut()
    }

    /// Consumes the network, returning every link's observer in link
    /// order.
    pub fn into_observers(self) -> Vec<O> {
        self.links
            .into_iter()
            .map(|l| l.server.into_observer())
            .collect()
    }

    /// Outstanding (scheduled, unfired) events — forwarded from the
    /// engine, for capacity diagnostics and the arena-reuse tests.
    pub fn outstanding_events(&self) -> usize {
        self.engine.outstanding()
    }

    /// Size of the event arena (high-water mark of outstanding events),
    /// forwarded from the engine.
    pub fn event_arena_len(&self) -> usize {
        self.engine.arena_len()
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.engine.now()
    }

    /// Attaches a source whose packets follow `route`. `flow` is the flow
    /// id the source stamps on its packets (used to route delivery
    /// notifications back to it).
    pub fn add_route(
        &mut self,
        flow: u32,
        source: impl Source + 'static,
        route: Route,
    ) -> SourceId {
        for hop in &route.hops {
            assert!(hop.link < self.links.len(), "route references unknown link");
            assert!(
                self.links[hop.link].server.is_leaf(hop.leaf),
                "route must attach to a leaf"
            );
        }
        let idx = self.sources.len();
        self.sources.push(SourceSlot {
            src: Box::new(source),
            route,
            flow,
            live: true,
            started: false,
        });
        self.flow_owner.insert(flow, idx);
        SourceId(idx)
    }

    /// Schedules a control-plane [`SimCommand`] to fire at time `t` (times
    /// in the past fire immediately once the run reaches them).
    pub fn schedule_command(&mut self, t: f64, cmd: SimCommand) {
        self.engine.schedule(t, NetEvent::Command(cmd));
    }

    fn emit_fault(&mut self, link: usize, kind: FaultKind, node: usize, flow: u32, value: f64) {
        if O::ENABLED {
            let ev = FaultEvent {
                time: self.engine.now(),
                link,
                kind,
                node,
                flow,
                value,
            };
            self.links[link].server.observer_mut().on_fault(&ev);
        }
    }

    fn apply_output(&mut self, src_idx: usize, out: SourceOutput) {
        let now = self.engine.now();
        let flow = self.sources[src_idx].flow;
        let ingress = self.sources[src_idx].route.hops[0];
        for w in out.wakes {
            let mut wake = w;
            if let Some(inj) = self.injector.as_mut() {
                wake = inj.jitter(now, flow, w);
                if wake != w {
                    self.emit_fault(ingress.link, FaultKind::ClockJitter, 0, flow, wake - w);
                }
            }
            self.engine.schedule(wake.max(now), NetEvent::Wake(src_idx));
        }
        for mut pkt in out.packets {
            pkt.arrival = now;
            let verdict = self
                .injector
                .as_mut()
                .map_or(PacketVerdict::Pass, |inj| inj.on_packet(now, &mut pkt));
            // "Offered" is what reaches the network's ingress port —
            // recorded after corruption so the byte ledger matches what
            // was seen.
            self.stats.record_arrival(&pkt);
            match verdict {
                PacketVerdict::Pass => {}
                PacketVerdict::Drop => {
                    self.stats.record_fault_drop(&pkt);
                    self.emit_fault(
                        ingress.link,
                        FaultKind::PacketDrop,
                        ingress.leaf.index(),
                        pkt.flow,
                        f64::from(pkt.len_bytes),
                    );
                    continue;
                }
                PacketVerdict::Corrupted => {
                    self.emit_fault(
                        ingress.link,
                        FaultKind::PacketCorrupt,
                        ingress.leaf.index(),
                        pkt.flow,
                        f64::from(pkt.len_bytes),
                    );
                }
            }
            // Degradation layer: malformed packets never reach the
            // scheduler maths — they are dropped here and strike the flow.
            if pkt.validate().is_err() {
                self.stats.record_fault_drop(&pkt);
                self.emit_fault(
                    ingress.link,
                    FaultKind::InvalidPacket,
                    ingress.leaf.index(),
                    pkt.flow,
                    f64::from(pkt.len_bytes),
                );
                self.strike(pkt.flow);
                if self.halted {
                    return;
                }
                continue;
            }
            if let Some(limit) = ingress.buffer_bytes {
                let queued = self.links[ingress.link]
                    .server
                    .leaf_queue_bytes(ingress.leaf);
                if queued + u64::from(pkt.len_bytes) > limit {
                    self.stats.record_drop(&pkt);
                    if O::ENABLED {
                        let ev = DropEvent {
                            time: now,
                            link: ingress.link,
                            leaf: ingress.leaf.index(),
                            pkt: PacketInfo {
                                id: pkt.id,
                                flow: pkt.flow,
                                len_bytes: pkt.len_bytes,
                                arrival: pkt.arrival,
                            },
                            queue_bytes: queued,
                        };
                        self.links[ingress.link].server.observer_mut().on_drop(&ev);
                    }
                    continue;
                }
            }
            match self.links[ingress.link]
                .server
                .try_enqueue(ingress.leaf, pkt)
            {
                Ok(()) => {
                    self.stats.record_accept(&pkt);
                    let l = &mut self.links[ingress.link].ledger;
                    l.bytes_in += u64::from(pkt.len_bytes);
                    l.packets_in += 1;
                }
                // The leaf vanished between emission and admission (e.g.
                // quarantined while this packet was being generated):
                // account the packet as fault-dropped and move on.
                Err(_) => {
                    self.stats.record_fault_drop(&pkt);
                    self.emit_fault(
                        ingress.link,
                        FaultKind::PacketDrop,
                        ingress.leaf.index(),
                        pkt.flow,
                        f64::from(pkt.len_bytes),
                    );
                }
            }
        }
        self.try_start(ingress.link);
    }

    fn try_start(&mut self, link: usize) {
        let l = &mut self.links[link];
        if l.rate > 0.0 && !self.halted && !l.server.is_transmitting() && l.server.has_pending() {
            let now = self.engine.now();
            // has_pending() was checked just above, so this is always
            // Some; degrade to a no-op rather than asserting.
            let Some(pkt) = l.server.start_transmission_at(now) else {
                return;
            };
            l.tx_start = now;
            l.tx_remaining_bits = pkt.bits();
            l.tx_updated = now;
            let epoch = l.tx_epoch;
            let done = now + pkt.tx_time(l.rate);
            self.engine
                .schedule(done, NetEvent::TxComplete { link, epoch });
        }
    }

    /// Changes one link's service rate at the current instant. A rate of 0
    /// suspends service (outage); the in-flight packet, if any, keeps the
    /// bits it already transmitted and its completion is rescheduled when
    /// a later call restores a positive rate.
    fn set_link_rate(&mut self, link: usize, new_rate: f64) {
        let now = self.engine.now();
        if !(new_rate.is_finite() && new_rate >= 0.0) {
            self.command_errors
                .push((now, HpfqError::InvalidRate(new_rate)));
            return;
        }
        let l = &mut self.links[link];
        if l.server.is_transmitting() {
            // Credit bits sent under the old rate, then reschedule the
            // remainder under the new one.
            let sent = (now - l.tx_updated) * l.rate;
            l.tx_remaining_bits = (l.tx_remaining_bits - sent).max(0.0);
            l.tx_updated = now;
            l.tx_epoch += 1;
            if new_rate > 0.0 {
                let done = now + l.tx_remaining_bits / new_rate;
                let epoch = l.tx_epoch;
                self.engine
                    .schedule(done, NetEvent::TxComplete { link, epoch });
            }
        }
        let l = &mut self.links[link];
        l.rate = new_rate;
        // Resync the hierarchy's reference clock: the GPS-exact policies
        // measure elapsed busy time in nominal-rate link seconds, so a
        // degraded link must slow (or, in an outage, freeze) that clock.
        let factor = new_rate / l.server.link_rate();
        if let Err(e) = l.server.set_link_rate_factor(now, factor) {
            self.command_errors.push((now, e));
        }
        if !self.links[link].server.is_transmitting() {
            self.try_start(link);
        }
    }

    /// Records one incident against `flow` and applies the escalation
    /// ladder's response: warn (no-op beyond the strike count), quarantine
    /// (the flow's leaves are removed at every hop and their queues
    /// purged), or halt (the run stops at the current event). Returns the
    /// level applied.
    ///
    /// Invalid packets strike automatically at admission; harnesses call
    /// this directly to escalate externally detected misbehaviour (e.g. an
    /// invariant-check violation attributed to a flow).
    pub fn strike(&mut self, flow: u32) -> EscalationLevel {
        let level = self.escalation.strike(&self.policy, flow);
        match level {
            EscalationLevel::Warn => {}
            EscalationLevel::Quarantine => self.quarantine(flow),
            EscalationLevel::Halt => {
                // Halt still isolates the offending flow so a post-mortem
                // inspection sees a consistent tree.
                self.quarantine(flow);
                self.halted = true;
            }
        }
        level
    }

    /// Removes `flow`'s leaf at every hop of its route, purging and
    /// accounting its queued packets, and stops its source.
    fn quarantine(&mut self, flow: u32) {
        let Some(&idx) = self.flow_owner.get(&flow) else {
            return;
        };
        if !self.sources[idx].live {
            return;
        }
        self.sources[idx].live = false;
        let now = self.engine.now();
        let hops = self.sources[idx].route.hops.clone();
        for hop in hops {
            match self.links[hop.link].server.remove_leaf(hop.leaf) {
                Ok(purged) => {
                    let mut purged_packets = 0u64;
                    let mut purged_bytes = 0u64;
                    for p in &purged {
                        self.stats.record_purge(p);
                        purged_packets += 1;
                        purged_bytes += u64::from(p.len_bytes);
                    }
                    self.links[hop.link].ledger.bytes_purged += purged_bytes;
                    if O::ENABLED {
                        let ev = QuarantineEvent {
                            time: now,
                            link: hop.link,
                            leaf: hop.leaf.index(),
                            flow,
                            strikes: self.escalation.strikes(flow),
                            purged_packets,
                            purged_bytes,
                        };
                        self.links[hop.link]
                            .server
                            .observer_mut()
                            .on_quarantine(&ev);
                    }
                }
                Err(e) => self.command_errors.push((now, e)),
            }
        }
    }

    fn apply_command(&mut self, cmd: SimCommand) {
        let now = self.engine.now();
        match cmd {
            SimCommand::SetLinkRate(bps) => self.rate_command(0, bps),
            SimCommand::SetLinkRateOn { link, bps } => {
                if link >= self.links.len() {
                    self.command_errors
                        .push((now, HpfqError::UnknownNode(link)));
                    return;
                }
                self.rate_command(link, bps);
            }
            SimCommand::AddFlow {
                parent,
                phi,
                flow,
                source,
                buffer_bytes,
                delivery_delay,
            } => match self.links[0].server.add_leaf(parent, phi) {
                Ok(leaf) => {
                    let idx = self.sources.len();
                    self.sources.push(SourceSlot {
                        src: source,
                        route: Route::single(leaf, buffer_bytes, delivery_delay),
                        flow,
                        live: true,
                        started: true,
                    });
                    self.flow_owner.insert(flow, idx);
                    self.emit_fault(0, FaultKind::FlowAdd, leaf.index(), flow, phi);
                    let out = self.sources[idx].src.start();
                    debug_assert!(out.packets.is_empty(), "start() must not emit packets");
                    self.apply_output(idx, out);
                }
                Err(e) => self.command_errors.push((now, e)),
            },
            SimCommand::RemoveFlow(flow) => {
                let Some(&idx) = self.flow_owner.get(&flow) else {
                    self.command_errors
                        .push((now, HpfqError::UnknownNode(usize::MAX)));
                    return;
                };
                if !self.sources[idx].live {
                    return;
                }
                self.sources[idx].live = false;
                let hops = self.sources[idx].route.hops.clone();
                for hop in hops {
                    let phi = self.links[hop.link].server.phi(hop.leaf);
                    match self.links[hop.link].server.remove_leaf(hop.leaf) {
                        Ok(purged) => {
                            let mut purged_bytes = 0u64;
                            for p in &purged {
                                self.stats.record_purge(p);
                                purged_bytes += u64::from(p.len_bytes);
                            }
                            self.links[hop.link].ledger.bytes_purged += purged_bytes;
                            self.emit_fault(
                                hop.link,
                                FaultKind::FlowRemove,
                                hop.leaf.index(),
                                flow,
                                phi,
                            );
                        }
                        Err(e) => self.command_errors.push((now, e)),
                    }
                }
            }
        }
    }

    fn rate_command(&mut self, link: usize, bps: f64) {
        let kind = if bps == 0.0 {
            FaultKind::LinkDown
        } else if self.links[link].rate == 0.0 {
            FaultKind::LinkUp
        } else {
            FaultKind::LinkRate
        };
        self.emit_fault(link, kind, 0, 0, bps);
        self.set_link_rate(link, bps);
    }

    /// Admits `pkt` at hop `hop` of `src`'s route (a propagated packet
    /// from the previous hop). Drops at a downstream buffer are accounted
    /// as purges: the packet was already accepted into the network at
    /// ingress.
    fn arrive(&mut self, src: usize, hop_idx: usize, mut pkt: Packet) {
        self.inflight_bytes -= u64::from(pkt.len_bytes);
        let now = self.engine.now();
        let hop = self.sources[src].route.hops[hop_idx];
        if !self.sources[src].live {
            self.stats.record_purge(&pkt);
            return;
        }
        pkt.arrival = now;
        if let Some(limit) = hop.buffer_bytes {
            let queued = self.links[hop.link].server.leaf_queue_bytes(hop.leaf);
            if queued + u64::from(pkt.len_bytes) > limit {
                self.stats.record_purge(&pkt);
                if O::ENABLED {
                    let ev = DropEvent {
                        time: now,
                        link: hop.link,
                        leaf: hop.leaf.index(),
                        pkt: PacketInfo {
                            id: pkt.id,
                            flow: pkt.flow,
                            len_bytes: pkt.len_bytes,
                            arrival: pkt.arrival,
                        },
                        queue_bytes: queued,
                    };
                    self.links[hop.link].server.observer_mut().on_drop(&ev);
                }
                return;
            }
        }
        match self.links[hop.link].server.try_enqueue(hop.leaf, pkt) {
            Ok(()) => {
                let l = &mut self.links[hop.link].ledger;
                l.bytes_in += u64::from(pkt.len_bytes);
                l.packets_in += 1;
            }
            Err(_) => {
                self.stats.record_purge(&pkt);
                self.emit_fault(
                    hop.link,
                    FaultKind::PacketDrop,
                    hop.leaf.index(),
                    pkt.flow,
                    f64::from(pkt.len_bytes),
                );
            }
        }
        self.try_start(hop.link);
    }

    fn tx_complete(&mut self, link: usize, epoch: u64) {
        if epoch != self.links[link].tx_epoch {
            // Superseded by a link-rate change; the rescheduled
            // completion carries the current epoch.
            return;
        }
        let t = self.engine.now();
        let pkt = self.links[link].server.complete_transmission_at(t);
        {
            let l = &mut self.links[link].ledger;
            l.bytes_out += u64::from(pkt.len_bytes);
            l.packets_out += 1;
        }
        if let Some(&owner) = self.flow_owner.get(&pkt.flow) {
            let route = &self.sources[owner].route;
            // Routes never repeat a link, so the position identifies the
            // hop just served.
            let hop_idx = route.hops.iter().position(|h| h.link == link);
            match hop_idx {
                Some(i) if i + 1 < route.hops.len() => {
                    // Propagate to the next hop (even if the source has
                    // since been removed: bytes on the wire stay on the
                    // wire; `arrive` discards them if the flow is dead).
                    self.inflight_bytes += u64::from(pkt.len_bytes);
                    let delay = route.hops[i].prop_delay;
                    self.engine.schedule(
                        t + delay,
                        NetEvent::Arrive {
                            src: owner,
                            hop: i + 1,
                            pkt,
                        },
                    );
                }
                _ => {
                    // Final hop: the packet leaves the network.
                    self.stats.record_service(ServiceRecord {
                        id: pkt.id,
                        flow: pkt.flow,
                        len_bytes: pkt.len_bytes,
                        arrival: pkt.arrival,
                        start: self.links[link].tx_start,
                        end: t,
                    });
                    if self.sources[owner].live {
                        let delay = route.hops.last().map(|h| h.prop_delay).unwrap_or(0.0);
                        self.engine
                            .schedule(t + delay, NetEvent::Deliver(owner, pkt));
                    }
                }
            }
        } else {
            // No owner (should not happen): count the service at this
            // link as final.
            self.stats.record_service(ServiceRecord {
                id: pkt.id,
                flow: pkt.flow,
                len_bytes: pkt.len_bytes,
                arrival: pkt.arrival,
                start: self.links[link].tx_start,
                end: t,
            });
        }
        self.try_start(link);
    }

    /// Runs the simulation until `horizon` seconds (events strictly after
    /// the horizon are left unprocessed), until no events remain, or until
    /// the escalation ladder halts the run. May be called repeatedly with
    /// growing horizons to run in segments; sources are started once.
    pub fn run(&mut self, horizon: f64) {
        // Start any sources not yet started (first call, or sources
        // attached between run segments).
        for i in 0..self.sources.len() {
            if !self.sources[i].started {
                self.sources[i].started = true;
                let out = self.sources[i].src.start();
                debug_assert!(out.packets.is_empty(), "start() must not emit packets");
                self.apply_output(i, out);
            }
        }
        while !self.halted {
            let Some((t, ev)) = self.engine.pop_due(horizon) else {
                break;
            };
            match ev {
                NetEvent::Wake(i) => {
                    if !self.sources[i].live {
                        continue;
                    }
                    let out = self.sources[i].src.on_wake(t);
                    self.apply_output(i, out);
                }
                NetEvent::TxComplete { link, epoch } => self.tx_complete(link, epoch),
                NetEvent::Arrive { src, hop, pkt } => self.arrive(src, hop, pkt),
                NetEvent::Deliver(i, pkt) => {
                    if !self.sources[i].live {
                        continue;
                    }
                    let out = self.sources[i].src.on_delivered(t, &pkt);
                    self.apply_output(i, out);
                }
                NetEvent::Command(cmd) => self.apply_command(cmd),
            }
        }
        // Unfired events past the horizon stay queued so a subsequent
        // `run` with a larger horizon continues cleanly.
    }

    /// Bytes currently queued at `link` (including any in-flight packet,
    /// which stays in its leaf queue until completion).
    pub fn queued_bytes_on(&self, link: usize) -> u64 {
        let server = &self.links[link].server;
        server
            .leaves_iter()
            .map(|l| server.leaf_queue_bytes(l))
            .sum()
    }

    /// Bytes currently queued across every link.
    pub fn queued_bytes(&self) -> u64 {
        (0..self.links.len()).map(|l| self.queued_bytes_on(l)).sum()
    }

    /// End-to-end byte conservation check: every offered byte is accounted
    /// for as served, buffer-dropped, fault-dropped, purged, still queued,
    /// or propagating between hops. Returns a description of the
    /// imbalance, if any.
    pub fn verify_conservation(&self) -> Result<(), String> {
        self.stats
            .accounting_balanced(self.queued_bytes() + self.inflight_bytes)?;
        // Per-link ledgers must balance independently (multi-hop: every
        // hop conserves bytes on its own).
        for (i, link) in self.links.iter().enumerate() {
            let LinkLedger {
                bytes_in,
                bytes_out,
                bytes_purged,
                ..
            } = link.ledger;
            let queued = self.queued_bytes_on(i);
            if bytes_in != bytes_out + bytes_purged + queued {
                return Err(format!(
                    "link {i}: in {bytes_in} B != out {bytes_out} + purged {bytes_purged} \
                     + queued {queued} B"
                ));
            }
        }
        Ok(())
    }
}
