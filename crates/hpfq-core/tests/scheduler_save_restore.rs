//! Checkpoint/restore identity at the scheduler and hierarchy layer
//! (DESIGN.md §14): `save_state` → fresh construction → `load_state` must
//! reproduce the original's subsequent behaviour *bit-identically* — every
//! dispatch decision, every tag, and the next snapshot's serialized bytes.

use hpfq_core::{Hierarchy, MixedScheduler, NodeScheduler, Packet, SchedulerKind, SessionId};

/// A deterministic packet-length pattern with enough variety to exercise
/// tag arithmetic (primes keep lengths from aliasing into round numbers).
fn len_pattern(i: u64) -> f64 {
    [1000.0, 3000.0, 500.0, 7000.0, 1500.0, 11000.0][(i % 6) as usize]
}

/// Seeds the initial backlog and returns the driver's queue-depth ledger
/// (one entry per session; a positive entry means the session is offered).
fn init(sched: &mut MixedScheduler, n: usize, seed: u64) -> Vec<u64> {
    let queued: Vec<u64> = (0..n as u64).map(|i| 2 + (i + seed) % 4).collect();
    for (i, &q) in queued.iter().enumerate() {
        if q > 0 {
            sched.backlog(SessionId(i), len_pattern(i as u64 + seed), None);
        }
    }
    queued
}

/// Drives `sched` through steps `start..start + steps` of the deterministic
/// dispatch/requeue/churn schedule, recording every selection. `queued` is
/// the ledger from [`init`] (or a snapshot of it), mutated in place so runs
/// can be split and resumed at any step boundary.
fn drive(
    sched: &mut MixedScheduler,
    queued: &mut [u64],
    start: u64,
    steps: u64,
    seed: u64,
) -> Vec<(usize, f64, f64)> {
    let mut log = Vec::new();
    for step in start..start + steps {
        let Some(id) = sched.select_next() else {
            // Everyone drained: restart a new busy period deterministically.
            for (i, q) in queued.iter_mut().enumerate() {
                *q = 1 + (i as u64 + step) % 3;
                sched.backlog(SessionId(i), len_pattern(step + i as u64), None);
            }
            continue;
        };
        let tags = sched.tags(id);
        log.push((id.0, tags.0, tags.1));
        queued[id.0] -= 1;
        // Occasionally a fresh arrival lands on an idle session mid-run.
        let churn = (step * 7 + seed).is_multiple_of(11);
        if churn {
            for (i, q) in queued.iter_mut().enumerate() {
                if *q == 0 && SessionId(i) != id {
                    // Only re-backlog sessions that are idle (not in service).
                    *q = 2;
                    sched.backlog(SessionId(i), len_pattern(step + 1), None);
                    break;
                }
            }
        }
        let next = if queued[id.0] > 0 {
            Some(len_pattern(step + 2))
        } else {
            None
        };
        sched.requeue(id, next);
    }
    log
}

/// For every policy: run to a midpoint, snapshot, run the original to the
/// end; restore the snapshot into a freshly built scheduler and run that to
/// the end. Both continuations must match bit-for-bit, and re-saving the
/// restored scheduler must reproduce the snapshot bytes.
#[test]
fn every_policy_round_trips_mid_run() {
    const N: usize = 5;
    for kind in SchedulerKind::ALL {
        // Reference run, uninterrupted: 400 steps straight through.
        let mut whole = kind.build(1e6);
        for _ in 0..N {
            whole.add_session(1.0 / N as f64);
        }
        let mut whole_q = init(&mut whole, N, 3);
        let mut full_log = drive(&mut whole, &mut whole_q, 0, 200, 3);
        full_log.extend(drive(&mut whole, &mut whole_q, 200, 200, 3));

        // Interrupted run: same first half, snapshot, restore into a fresh
        // scheduler, same second half.
        let mut first = kind.build(1e6);
        for _ in 0..N {
            first.add_session(1.0 / N as f64);
        }
        let mut first_q = init(&mut first, N, 3);
        let mut log = drive(&mut first, &mut first_q, 0, 200, 3);
        let snap = first.save_state();
        let bytes = snap.to_bytes();

        let mut resumed = kind.build(1e6);
        for _ in 0..N {
            resumed.add_session(1.0 / N as f64);
        }
        resumed
            .load_state(&snap)
            .unwrap_or_else(|e| panic!("{}: load failed: {e}", kind.name()));
        assert_eq!(
            resumed.save_state().to_bytes(),
            bytes,
            "{}: save→load→save is not byte-stable",
            kind.name()
        );

        log.extend(drive(&mut resumed, &mut first_q, 200, 200, 3));
        assert_eq!(
            log,
            full_log,
            "{}: interrupted run diverges from the uninterrupted one",
            kind.name()
        );
    }
}

/// Restoring must also reproduce states captured *mid-service* (between
/// `select_next` and `requeue`) — the common case at a conservative-epoch
/// boundary while a packet is on the wire.
#[test]
fn round_trip_with_session_in_service() {
    for kind in SchedulerKind::ALL {
        let mut s = kind.build(1e6);
        let a = s.add_session(0.5);
        let b = s.add_session(0.5);
        s.backlog(a, 1000.0, None);
        s.backlog(b, 3000.0, None);
        let sel = s.select_next().expect("a session is backlogged");
        let snap = s.save_state();

        let mut r = kind.build(1e6);
        r.add_session(0.5);
        r.add_session(0.5);
        r.load_state(&snap).unwrap();
        assert_eq!(r.save_state().to_bytes(), snap.to_bytes());
        assert_eq!(r.backlogged(), s.backlogged());

        // Completing service must pick the same successor in both.
        s.requeue(sel, Some(500.0));
        r.requeue(sel, Some(500.0));
        let next_s = s.select_next();
        let next_r = r.select_next();
        assert_eq!(next_s, next_r, "{}: divergent successor", kind.name());
    }
}

fn pkt(id: u64, flow: u32, bytes: u32) -> Packet {
    Packet::new(id, flow, bytes, 0.0)
}

/// Hierarchy round trip across a mid-transmission boundary, including a
/// churn-added leaf that exists only in the snapshot (not in the freshly
/// rebuilt topology).
#[test]
fn hierarchy_round_trips_with_churn_leaf() {
    let build = || {
        let mut b = Hierarchy::builder(1e6, |r| SchedulerKind::Wf2qPlus.build(r));
        let root = b.root();
        let cls = b.add_internal(root, 0.5).unwrap();
        let l0 = b.add_leaf(cls, 0.5).unwrap();
        let l1 = b.add_leaf(cls, 0.5).unwrap();
        let l2 = b.add_leaf(root, 0.3).unwrap();
        (b.build(), l0, l1, l2)
    };

    let (mut h, l0, l1, l2) = build();
    // Mid-run churn: a fourth leaf attaches under the root.
    let l3 = h.add_leaf(h.root(), 0.2).unwrap();
    for i in 0..12u64 {
        h.enqueue(l0, pkt(i, 0, 125 + (i as u32 % 3) * 300));
        h.enqueue(l1, pkt(100 + i, 1, 1500));
        h.enqueue(l2, pkt(200 + i, 2, 625));
    }
    h.enqueue(l3, pkt(300, 3, 700));
    // Serve a few packets, then snapshot in the middle of a transmission.
    for _ in 0..5 {
        h.dequeue();
    }
    let started = h.start_transmission_at(0.5).expect("root offers a packet");
    let snap = h.save_state();
    let bytes = snap.to_bytes();

    // Restore onto the *fresh* topology (no l3 — it must be re-created).
    let (mut r, _, _, _) = build();
    r.load_state(&snap).expect("restore");
    assert_eq!(r.save_state().to_bytes(), bytes, "save→load→save unstable");
    assert!(r.is_transmitting());
    assert_eq!(r.node_count(), h.node_count());

    // Both must finish the in-flight packet and then serve identically.
    let p_h = h.complete_transmission_at(0.6);
    let p_r = r.complete_transmission_at(0.6);
    assert_eq!(p_h, p_r);
    assert_eq!(p_h.id, started.id);
    loop {
        let a = h.dequeue();
        let b = r.dequeue();
        assert_eq!(a, b, "post-restore service order diverged");
        if a.is_none() {
            break;
        }
    }
}

/// A snapshot whose topology disagrees with the rebuilt hierarchy must be
/// rejected, not silently mis-wired.
#[test]
fn hierarchy_restore_rejects_topology_mismatch() {
    let mut b = Hierarchy::builder(1e6, |r| SchedulerKind::Wf2qPlus.build(r));
    let root = b.root();
    b.add_leaf(root, 0.5).unwrap();
    let h = b.build();
    let snap = h.save_state();

    // Rebuilt with an internal node where the snapshot has a leaf.
    let mut b2 = Hierarchy::builder(1e6, |r| SchedulerKind::Wf2qPlus.build(r));
    let root2 = b2.root();
    b2.add_internal(root2, 0.5).unwrap();
    let mut wrong = b2.build();
    assert!(wrong.load_state(&snap).is_err());
}
