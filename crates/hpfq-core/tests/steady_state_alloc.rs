//! Proves the steady-state enqueue → dispatch → complete cycle of a
//! depth-3 WF²Q+ tree performs **zero heap allocations**.
//!
//! The hierarchy refactor moved every construction-time concern (the
//! scheduler factory) into `HierarchyBuilder` and gave `Hierarchy` a
//! reusable path scratch buffer, so once the tree and its FIFO capacities
//! are warmed up, serving traffic touches only preallocated storage. A
//! counting global allocator makes that claim checkable instead of
//! aspirational.
//!
//! This file must stay a dedicated integration test: the global allocator
//! is process-wide, and the count assertions only make sense when no other
//! test runs concurrently in the same binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hpfq_core::{Hierarchy, MixedScheduler, Packet, SchedulerKind};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn depth3_wf2qplus_steady_state_cycle_is_allocation_free() {
    // Depth-3 tree: root -> 2 classes -> 2 subclasses each -> 2 leaves
    // each (8 leaves).
    let mut b = Hierarchy::builder(8e6, |r| SchedulerKind::Wf2qPlus.build(r));
    let root = b.root();
    let mut leaves = Vec::new();
    for _ in 0..2 {
        let cls = b.add_internal(root, 0.5).unwrap();
        for _ in 0..2 {
            let sub = b.add_internal(cls, 0.5).unwrap();
            for _ in 0..2 {
                leaves.push(b.add_leaf(sub, 0.5).unwrap());
            }
        }
    }
    let mut h = b.build();

    let mut id = 0u64;
    let mut now = 0.0;
    let mut cycle = |h: &mut Hierarchy<MixedScheduler>, leaves: &[hpfq_core::NodeId]| {
        // One arrival per leaf, then drain one packet per leaf: the tree
        // stays busy and every FIFO oscillates around its warmed depth.
        for (i, &leaf) in leaves.iter().enumerate() {
            h.enqueue(leaf, Packet::new(id, i as u32, 125, now));
            id += 1;
        }
        for _ in 0..leaves.len() {
            assert!(h.start_transmission_at(now).is_some());
            now += 125.0 * 8.0 / 8e6;
            h.complete_transmission_at(now);
        }
    };

    // Warm-up: grows leaf FIFOs, scheduler internals, and the path
    // scratch buffer to their steady-state capacity.
    for _ in 0..64 {
        cycle(&mut h, &leaves);
    }

    let before = allocations();
    for _ in 0..32 {
        cycle(&mut h, &leaves);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state enqueue/dispatch/complete cycle allocated"
    );
}
