//! Error type for scheduler and hierarchy configuration.

use std::fmt;

/// Errors raised while building or operating a scheduler hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub enum HpfqError {
    /// A service share was not a finite positive number.
    InvalidShare(f64),
    /// The children of a node were assigned shares summing to more than 1.
    ShareOverflow {
        /// The node whose children overflow.
        node: usize,
        /// The resulting sum of child shares.
        sum: f64,
    },
    /// A node id did not refer to an existing node.
    UnknownNode(usize),
    /// A leaf operation was attempted on an internal node or vice versa.
    NotALeaf(usize),
    /// An internal-node operation was attempted on a leaf.
    NotInternal(usize),
    /// A rate was not a finite positive number.
    InvalidRate(f64),
    /// A packet failed admission validation (zero/oversized length or a
    /// non-finite timestamp). Carries the packet's claimed identity so the
    /// degradation layer can attribute the strike to a flow.
    InvalidPacket {
        /// Claimed packet id.
        id: u64,
        /// Claimed flow id.
        flow: u32,
        /// Which field was malformed.
        reason: &'static str,
    },
    /// An operation targeted a leaf that has been removed (or is draining
    /// toward removal) — e.g. an enqueue on a quarantined flow's leaf.
    NodeDetached(usize),
    /// A structural mutation (leaf removal) was attempted on a node that
    /// still has attached children.
    HasChildren(usize),
}

impl fmt::Display for HpfqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpfqError::InvalidShare(s) => write!(f, "invalid service share {s}"),
            HpfqError::ShareOverflow { node, sum } => {
                write!(
                    f,
                    "children of node {node} have shares summing to {sum} > 1"
                )
            }
            HpfqError::UnknownNode(n) => write!(f, "unknown node id {n}"),
            HpfqError::NotALeaf(n) => write!(f, "node {n} is not a leaf"),
            HpfqError::NotInternal(n) => write!(f, "node {n} is not an internal node"),
            HpfqError::InvalidRate(r) => write!(f, "invalid rate {r}"),
            HpfqError::InvalidPacket { id, flow, reason } => {
                write!(f, "invalid packet id={id} flow={flow}: {reason}")
            }
            HpfqError::NodeDetached(n) => write!(f, "node {n} has been removed from the tree"),
            HpfqError::HasChildren(n) => write!(f, "node {n} still has attached children"),
        }
    }
}

impl std::error::Error for HpfqError {}
