//! Error type for scheduler and hierarchy configuration.

use std::fmt;

/// Errors raised while building or operating a scheduler hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub enum HpfqError {
    /// A service share was not a finite positive number.
    InvalidShare(f64),
    /// The children of a node were assigned shares summing to more than 1.
    ShareOverflow {
        /// The node whose children overflow.
        node: usize,
        /// The resulting sum of child shares.
        sum: f64,
    },
    /// A node id did not refer to an existing node.
    UnknownNode(usize),
    /// A leaf operation was attempted on an internal node or vice versa.
    NotALeaf(usize),
    /// An internal-node operation was attempted on a leaf.
    NotInternal(usize),
    /// A rate was not a finite positive number.
    InvalidRate(f64),
}

impl fmt::Display for HpfqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpfqError::InvalidShare(s) => write!(f, "invalid service share {s}"),
            HpfqError::ShareOverflow { node, sum } => {
                write!(
                    f,
                    "children of node {node} have shares summing to {sum} > 1"
                )
            }
            HpfqError::UnknownNode(n) => write!(f, "unknown node id {n}"),
            HpfqError::NotALeaf(n) => write!(f, "node {n} is not a leaf"),
            HpfqError::NotInternal(n) => write!(f, "node {n} is not an internal node"),
            HpfqError::InvalidRate(r) => write!(f, "invalid rate {r}"),
        }
    }
}

impl std::error::Error for HpfqError {}
