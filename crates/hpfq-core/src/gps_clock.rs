//! Exact GPS virtual time tracking — the `V_GPS(·)` of paper §2.1,
//! eqs. (4)–(5) — used by [`crate::Wfq`] and [`crate::Wf2q`].
//!
//! The clock integrates
//!
//! ```text
//! dV/dT = 1 / Σ_{i ∈ B_GPS(T)} φ_i
//! ```
//!
//! piecewise over *reference time* `T`, processing fluid departures (the
//! instants at which a session's GPS backlog empties, changing the slope)
//! one at a time. Between two consecutive packet events there may be up to
//! `N` fluid departures — this is precisely the O(N) worst case the paper
//! attributes to WFQ/WF²Q and the reason WF²Q+ replaces this clock with
//! eq. (27). The cost is measured in the `scheduler_ops` bench.
//!
//! ## Scope of the emulation
//!
//! The clock tracks, per session, the virtual finish tag of the latest
//! virtual work it knows about — its emulated fluid backlog horizon. Two
//! feeds maintain it:
//!
//! * [`GpsClock::on_stamp`] after every head stamping (eq. 28 keeps the
//!   emulated backlog contiguous, so the session leaves the GPS-backlogged
//!   set only when `V` passes its last stamped finish tag);
//! * [`GpsClock::extend_backlog`] when the driver announces a packet
//!   arriving *behind* the head (`NodeScheduler::arrival_hint`), which the
//!   hierarchy issues for every queued arrival.
//!
//! With arrival announcements the emulation is exact: a session
//! contributes to the slope sum until its whole queue has departed in GPS.
//! Driven head-only (no announcements), `V` can overtake a still-backlogged
//! session's head before the packet system re-stamps it, dropping the
//! session from the slope sum early — a bounded head-visibility artifact
//! that inflates `dV/dT`.
//!
//! While the GPS-backlogged set is empty but the packet system is still
//! draining, `V` advances at the minimum slope 1, preserving the paper's
//! "minimum slope property" (§3.4).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use hpfq_obs::snap::{SnapError, Value};

use crate::vtime;

/// A fluid-departure heap entry (min-heap by finish tag).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Departure {
    finish: f64,
    session: usize,
}

impl Eq for Departure {}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.finish, other.session)
            .partial_cmp(&(self.finish, self.session))
            // lint:allow(L002): tags are sums of finite phi-scaled lengths
            .expect("finish tags must not be NaN")
    }
}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct GpsSession {
    phi: f64,
    /// Finish tag of the latest stamped packet; the session's emulated GPS
    /// backlog empties when `V` reaches this value.
    last_finish: f64,
    /// Whether the session currently contributes to the slope sum.
    active: bool,
}

/// Piecewise-linear integrator of the GPS virtual time function.
#[derive(Debug, Clone, Default)]
pub struct GpsClock {
    sessions: Vec<GpsSession>,
    departures: BinaryHeap<Departure>,
    /// Current virtual time.
    v: f64,
    /// Reference time up to which `v` has been integrated.
    t: f64,
    /// Σ φ over GPS-backlogged sessions.
    active_phi: f64,
    active_count: usize,
    /// Largest number of fluid departures processed by a single
    /// [`GpsClock::advance_to`] call — the realized O(N) worst case.
    worst_sweep: usize,
}

impl GpsClock {
    /// Creates an idle clock with no sessions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a session with share `phi`; returns its index.
    pub fn add_session(&mut self, phi: f64) -> usize {
        assert!(phi.is_finite() && phi > 0.0, "invalid share {phi}");
        self.sessions.push(GpsSession {
            phi,
            last_finish: 0.0,
            active: false,
        });
        self.sessions.len() - 1
    }

    /// Current virtual time without advancing.
    pub fn virtual_time(&self) -> f64 {
        self.v
    }

    /// Integrates `V` up to reference time `t_new` and returns it.
    ///
    /// A target at or before the already-integrated time returns the
    /// current value unchanged: under SEFF the dispatch path integrates to
    /// the dispatch boundary, so a mid-packet arrival's (earlier) real
    /// reference time is served from the boundary value — a bounded,
    /// sub-packet skew.
    pub fn advance_to(&mut self, t_new: f64) -> f64 {
        let mut dt = t_new - self.t;
        if dt <= 0.0 {
            return self.v;
        }
        self.t = t_new;
        let mut sweep = 0usize;
        loop {
            let Some(next) = self.peek_departure() else {
                // GPS-backlogged set empty: minimum slope 1.
                self.v += dt;
                self.worst_sweep = self.worst_sweep.max(sweep);
                return self.v;
            };
            debug_assert!(self.active_phi > 0.0);
            // Reference time needed to reach the next fluid departure.
            let need = ((next.finish - self.v) * self.active_phi).max(0.0);
            if need > dt {
                self.v += dt / self.active_phi;
                self.worst_sweep = self.worst_sweep.max(sweep);
                return self.v;
            }
            dt -= need;
            self.v = next.finish;
            self.departures.pop();
            self.deactivate(next.session);
            sweep += 1;
            if dt == 0.0 {
                self.worst_sweep = self.worst_sweep.max(sweep);
                return self.v;
            }
        }
    }

    /// Marks `session` GPS-backlogged through virtual time `finish` (the tag
    /// of its newly stamped head). Must be called after every stamping.
    ///
    /// A stamp already covered by the emulated backlog (because
    /// [`GpsClock::extend_backlog`] announced the packet at its arrival) is
    /// a no-op: the backlog horizon only ever extends.
    pub fn on_stamp(&mut self, session: usize, finish: f64) {
        let s = &mut self.sessions[session];
        // Exact: the horizon only extends on a strictly later stamp, and
        // both values come from the same per-session tag arithmetic.
        if s.active && vtime::exactly_le(finish, s.last_finish) {
            return;
        }
        debug_assert!(vtime::approx_ge(finish, s.last_finish) || !s.active);
        s.last_finish = finish;
        if !s.active {
            s.active = true;
            self.active_phi += s.phi;
            self.active_count += 1;
        }
        self.departures.push(Departure { finish, session });
    }

    /// Announces a packet needing `delta_v` of virtual service time
    /// (`L / (φ_i · r)`) arriving *behind* `session`'s current backlog.
    ///
    /// Extends the session's emulated fluid backlog so it keeps
    /// contributing to the slope sum until the *whole* queue — not just the
    /// stamped head — has departed in GPS. Without this the session would
    /// drop out of `B_GPS` as soon as `V` passed its head's finish tag,
    /// inflating `dV/dT` (the head-visibility artifact described in the
    /// module docs). Returns the packet's virtual start `max(V, tail)` —
    /// its exact GPS start under eq. (28) — for the caller to use when the
    /// packet later becomes the head.
    pub fn extend_backlog(&mut self, session: usize, delta_v: f64) -> f64 {
        debug_assert!(delta_v.is_finite() && delta_v > 0.0);
        let s = &mut self.sessions[session];
        let base = self.v.max(s.last_finish);
        let finish = base + delta_v;
        s.last_finish = finish;
        if !s.active {
            s.active = true;
            self.active_phi += s.phi;
            self.active_count += 1;
        }
        self.departures.push(Departure { finish, session });
        base
    }

    /// Resets the clock at a busy-period boundary.
    pub fn reset(&mut self) {
        self.v = 0.0;
        self.t = 0.0;
        self.departures.clear();
        self.active_phi = 0.0;
        self.active_count = 0;
        // worst_sweep intentionally survives: it is a lifetime diagnostic.
        for s in &mut self.sessions {
            s.last_finish = 0.0;
            s.active = false;
        }
    }

    /// Number of GPS-backlogged sessions.
    pub fn active_sessions(&self) -> usize {
        self.active_count
    }

    /// Largest number of fluid departures any single
    /// [`GpsClock::advance_to`] call has processed so far — the realized
    /// form of the O(N) worst case the paper attributes to `V_GPS`
    /// (survives [`GpsClock::reset`]).
    pub fn worst_sweep(&self) -> usize {
        self.worst_sweep
    }

    /// Serializes the clock for an epoch checkpoint. The departure heap is
    /// not stored: its live content is exactly one entry per active session
    /// at that session's `last_finish` (stale entries are skipped on peek),
    /// so [`GpsClock::load_state`] rebuilds it from the session table.
    /// `active_phi` is an *accumulated* float and is saved verbatim —
    /// recomputing it as a fresh Σφ could differ in the last ulp and shift
    /// a slope boundary.
    pub fn save_state(&self) -> Value {
        Value::map(vec![
            ("v", Value::F64(self.v)),
            ("t", Value::F64(self.t)),
            ("active_phi", Value::F64(self.active_phi)),
            ("worst_sweep", Value::U64(self.worst_sweep as u64)),
            (
                "sessions",
                Value::List(
                    self.sessions
                        .iter()
                        .map(|s| {
                            Value::map(vec![
                                ("phi", Value::F64(s.phi)),
                                ("last_finish", Value::F64(s.last_finish)),
                                ("active", Value::Bool(s.active)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Restores a clock saved by [`GpsClock::save_state`].
    pub fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let mut sessions = Vec::new();
        for sv in state.get("sessions")?.items()? {
            sessions.push(GpsSession {
                phi: sv.get("phi")?.as_f64()?,
                last_finish: sv.get("last_finish")?.as_f64()?,
                active: sv.get("active")?.as_bool()?,
            });
        }
        self.v = state.get("v")?.as_f64()?;
        self.t = state.get("t")?.as_f64()?;
        self.active_phi = state.get("active_phi")?.as_f64()?;
        self.worst_sweep = state.get("worst_sweep")?.as_usize()?;
        self.active_count = sessions.iter().filter(|s| s.active).count();
        self.departures.clear();
        for (session, s) in sessions.iter().enumerate() {
            if s.active {
                self.departures.push(Departure {
                    finish: s.last_finish,
                    session,
                });
            }
        }
        self.sessions = sessions;
        Ok(())
    }

    fn deactivate(&mut self, session: usize) {
        let s = &mut self.sessions[session];
        debug_assert!(s.active);
        s.active = false;
        self.active_count -= 1;
        if self.active_count == 0 {
            self.active_phi = 0.0; // kill accumulated float drift
        } else {
            self.active_phi -= s.phi;
        }
    }

    /// Top of the departure heap after discarding stale entries (a session
    /// re-stamped with a later finish leaves its older entries behind).
    fn peek_departure(&mut self) -> Option<Departure> {
        while let Some(&top) = self.departures.peek() {
            let s = &self.sessions[top.session];
            if s.active && vtime::same_stamp(s.last_finish, top.finish) {
                return Some(top);
            }
            self.departures.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two equal-weight sessions, unit server rate in reference time.
    /// Session tags are expressed directly in virtual time.
    #[test]
    fn slope_follows_backlogged_set() {
        let mut c = GpsClock::new();
        let a = c.add_session(0.5);
        let b = c.add_session(0.5);
        // Both backlogged with fluid departures at V=2 each.
        c.on_stamp(a, 2.0);
        c.on_stamp(b, 2.0);
        // Slope 1/(0.5+0.5) = 1: after 1s of reference time, V = 1.
        assert!((c.advance_to(1.0) - 1.0).abs() < 1e-12);
        // Both depart at V=2 (reaching it costs 1 more ref-second); after
        // that the set is empty and the slope floors at 1: V = 2 + 1 = 3.
        assert!((c.advance_to(3.0) - 3.0).abs() < 1e-12);
        assert_eq!(c.active_sessions(), 0);
    }

    #[test]
    fn departure_changes_slope_mid_interval() {
        let mut c = GpsClock::new();
        let a = c.add_session(0.5);
        let _b = c.add_session(0.5);
        c.on_stamp(a, 1.0); // only session a backlogged
                            // Slope 1/0.5 = 2 until V reaches 1.0 (costs 0.5 ref-seconds),
                            // then empty-set slope 1 for the remaining 0.5: V = 1.5.
        assert!((c.advance_to(1.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn restamping_extends_backlog() {
        let mut c = GpsClock::new();
        let a = c.add_session(0.25);
        c.on_stamp(a, 1.0);
        c.on_stamp(a, 2.0); // head consumed, next head stamped: backlog extends
                            // Slope 1/0.25 = 4; V reaches 2.0 after 0.5 ref-seconds, then slope 1.
        assert!((c.advance_to(0.25) - 1.0).abs() < 1e-12);
        assert_eq!(c.active_sessions(), 1);
        assert!((c.advance_to(0.5) - 2.0).abs() < 1e-12);
        assert_eq!(c.active_sessions(), 0);
        assert!((c.advance_to(1.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_starts_fresh_busy_period() {
        let mut c = GpsClock::new();
        let a = c.add_session(1.0);
        c.on_stamp(a, 5.0);
        c.advance_to(2.0);
        c.reset();
        assert_eq!(c.virtual_time(), 0.0);
        assert_eq!(c.active_sessions(), 0);
        c.on_stamp(a, 1.0);
        assert!((c.advance_to(0.5) - 0.5).abs() < 1e-12);
    }
}
