//! WF²Q — Worst-case Fair Weighted Fair Queueing (paper §3.3, ref. [2]).
//!
//! WF²Q is the SEFF policy driven by the *exact* GPS virtual time: when the
//! server picks a packet it considers only sessions whose head has started
//! service in the corresponding GPS system (`S_i ≤ V_GPS`) and takes the
//! smallest finish tag among them. It attains the optimal B-WFI of
//! Theorem 3 but inherits [`GpsClock`]'s O(N) worst-case virtual-time cost —
//! the complexity that WF²Q+ ([`crate::Wf2qPlus`]) removes.

use std::collections::VecDeque;

use hpfq_obs::snap::{SnapError, Value};

use crate::eligible::{dual_heap::DualHeapEligibleSet, EligibleSet};
use crate::gps_clock::GpsClock;
use crate::scheduler::{
    load_opt_id, load_pending, load_sessions, save_opt_id, save_pending, save_sessions,
    NodeScheduler, SessionId, SessionState,
};
use crate::vtime;

/// The WF²Q scheduler (SEFF over the exact GPS virtual time).
#[derive(Debug, Clone)]
pub struct Wf2q {
    rate: f64,
    sessions: Vec<SessionState>,
    clock: GpsClock,
    set: DualHeapEligibleSet,
    /// Per-session virtual start tags of queued-behind-the-head packets
    /// announced via `arrival_hint`, in arrival order (exact eq. (28)
    /// bases, consumed as those packets become heads).
    pending: Vec<VecDeque<f64>>,
    t: f64,
    in_service: Option<SessionId>,
    backlogged: usize,
    /// Diagnostic: number of dispatches where no session satisfied
    /// `S_i ≤ V_GPS` and the `max(V, Smin)` fallback fired. With exact GPS
    /// tracking this is provably impossible; with the head-only emulation of
    /// [`GpsClock`] it stays zero in all paper scenarios (asserted in
    /// tests), but the fallback keeps the policy work-conserving regardless.
    fallback_dispatches: u64,
}

impl Wf2q {
    /// Creates a WF²Q server of the given rate.
    pub fn new(rate_bps: f64) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "invalid rate {rate_bps}"
        );
        Wf2q {
            rate: rate_bps,
            sessions: Vec::new(),
            clock: GpsClock::new(),
            set: DualHeapEligibleSet::new(),
            pending: Vec::new(),
            t: 0.0,
            in_service: None,
            backlogged: 0,
            fallback_dispatches: 0,
        }
    }

    /// Current reference time.
    pub fn reference_time(&self) -> f64 {
        self.t
    }

    /// Largest number of GPS fluid departures a single virtual-clock
    /// advance has processed (see [`GpsClock::worst_sweep`]).
    pub fn worst_clock_sweep(&self) -> usize {
        self.clock.worst_sweep()
    }

    /// Dispatches that needed the work-conservation fallback (see the field
    /// documentation); zero in every paper scenario.
    pub fn fallback_dispatches(&self) -> u64 {
        self.fallback_dispatches
    }

    fn reset(&mut self) {
        self.t = 0.0;
        self.clock.reset();
        self.set.clear();
        for p in &mut self.pending {
            debug_assert!(p.is_empty(), "pending stamps at busy-period end");
            p.clear();
        }
        for s in &mut self.sessions {
            s.reset();
        }
    }
}

impl NodeScheduler for Wf2q {
    fn rate_bps(&self) -> f64 {
        self.rate
    }

    fn add_session(&mut self, phi: f64) -> SessionId {
        self.sessions.push(SessionState::new(phi, self.rate));
        self.pending.push(VecDeque::new());
        let gps_id = self.clock.add_session(phi);
        debug_assert_eq!(gps_id, self.sessions.len() - 1);
        SessionId(self.sessions.len() - 1)
    }

    fn backlog(&mut self, id: SessionId, head_bits: f64, ref_now: Option<f64>) {
        // Root servers pass the exact reference time of the arrival; it
        // may lag the dispatch-advanced clock, in which case advance_to
        // clamps (bounded one-packet skew, see GpsClock docs).
        let v = self.clock.advance_to(ref_now.unwrap_or(self.t));
        let s = &mut self.sessions[id.0];
        debug_assert!(!s.backlogged, "backlog() on a backlogged session");
        debug_assert!(self.pending[id.0].is_empty());
        s.stamp_new_backlog(v, head_bits);
        self.clock.on_stamp(id.0, s.finish);
        self.set.insert(id, s.start, s.finish);
        self.backlogged += 1;
    }

    fn arrival_hint(&mut self, id: SessionId, bits: f64, ref_now: Option<f64>) {
        let _ = self.clock.advance_to(ref_now.unwrap_or(self.t));
        let s = &self.sessions[id.0];
        debug_assert!(s.backlogged, "arrival_hint() on an idle session");
        let base = self.clock.extend_backlog(id.0, bits * s.inv_rate);
        self.pending[id.0].push_back(base);
    }

    fn select_next(&mut self) -> Option<SessionId> {
        debug_assert!(self.in_service.is_none());
        if self.set.is_empty() {
            return None;
        }
        // SEFF at the exact GPS virtual time of the dispatch instant. The
        // one-tolerance nudge absorbs drift from the piecewise slope
        // integration (e.g. Σφ of ten 0.05-shares summing to 1+2ulp, which
        // would otherwise leave V one ulp short of a start tag it has
        // mathematically reached); it is ~9 orders of magnitude below
        // packet granularity.
        let v = self.clock.advance_to(self.t);
        let v = vtime::nudge_up(v);
        let id = match self.set.pop_min_finish(v) {
            Some(id) => id,
            None => {
                // Head-only emulation artifact; fall back to the WF²Q+
                // threshold to stay work-conserving.
                self.fallback_dispatches += 1;
                // lint:allow(L002): is_empty() returned false above
                let thr = self.set.eligibility_threshold(v).expect("set is non-empty");
                self.set
                    .pop_min_finish(thr)
                    // lint:allow(L002): thr = max(V, Smin) admits the Smin session
                    .expect("threshold admits a session")
            }
        };
        let l = self.sessions[id.0].head_bits;
        self.t += l / self.rate;
        self.in_service = Some(id);
        Some(id)
    }

    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>) {
        debug_assert_eq!(self.in_service, Some(id));
        self.in_service = None;
        match next_head_bits {
            Some(bits) => {
                // Use the exact eq. (28) base recorded when this packet's
                // arrival was announced, falling back to the continuation
                // rule S = F for un-announced drivers.
                let base = self.pending[id.0].pop_front();
                let s = &mut self.sessions[id.0];
                match base {
                    Some(b) => {
                        s.start = s.finish.max(b);
                        s.finish = s.start + bits * s.inv_rate;
                        s.head_bits = bits;
                    }
                    None => s.stamp_continuation(bits),
                }
                self.clock.on_stamp(id.0, s.finish);
                self.set.insert(id, s.start, s.finish);
            }
            None => {
                self.sessions[id.0].backlogged = false;
                self.backlogged -= 1;
                if self.backlogged == 0 {
                    self.reset();
                }
            }
        }
    }

    fn backlogged(&self) -> usize {
        self.backlogged
    }

    fn virtual_time(&self) -> f64 {
        self.clock.virtual_time()
    }

    fn phi(&self, id: SessionId) -> f64 {
        self.sessions[id.0].phi
    }

    fn tags(&self, id: SessionId) -> (f64, f64) {
        let s = &self.sessions[id.0];
        (s.start, s.finish)
    }

    fn name(&self) -> &'static str {
        "wf2q"
    }

    fn save_state(&self) -> Value {
        Value::map(vec![
            ("rate", Value::F64(self.rate)),
            ("t", Value::F64(self.t)),
            ("in_service", save_opt_id(self.in_service)),
            ("sessions", save_sessions(&self.sessions)),
            ("pending", save_pending(&self.pending)),
            ("clock", self.clock.save_state()),
            ("fallback_dispatches", Value::U64(self.fallback_dispatches)),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let rate = state.get("rate")?.as_f64()?;
        if rate.to_bits() != self.rate.to_bits() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "wf2q rate mismatch: snapshot {rate}, configured {}",
                    self.rate
                ),
            });
        }
        self.sessions = load_sessions(state.get("sessions")?)?;
        self.pending = load_pending(state.get("pending")?, self.sessions.len())?;
        self.clock.load_state(state.get("clock")?)?;
        self.t = state.get("t")?.as_f64()?;
        self.in_service = load_opt_id(state.get("in_service")?)?;
        self.fallback_dispatches = state.get("fallback_dispatches")?.as_u64()?;
        self.backlogged = self.sessions.iter().filter(|s| s.backlogged).count();
        self.set.clear();
        for (i, s) in self.sessions.iter().enumerate() {
            let id = SessionId(i);
            if s.backlogged && self.in_service != Some(id) {
                self.set.insert(id, s.start, s.finish);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2 bottom timeline: WF²Q interleaves session 1 with the small
    /// sessions instead of sending its burst back-to-back.
    #[test]
    fn fig2_interleaving() {
        let mut s = Wf2q::new(1.0);
        let s0 = s.add_session(0.5);
        for _ in 0..10 {
            s.add_session(0.05);
        }
        s.backlog(s0, 1.0, Some(0.0));
        for i in 1..=10 {
            s.backlog(SessionId(i), 1.0, Some(0.0));
        }
        let mut remaining = vec![11usize, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let mut order = Vec::new();
        while let Some(id) = s.select_next() {
            order.push(id.0);
            remaining[id.0] -= 1;
            s.requeue(id, if remaining[id.0] > 0 { Some(1.0) } else { None });
        }
        assert_eq!(order.len(), 21);
        for (slot, &id) in order.iter().enumerate() {
            if slot % 2 == 0 {
                assert_eq!(id, 0, "slot {slot}");
            } else {
                assert_ne!(id, 0, "slot {slot}");
            }
        }
        assert_eq!(s.fallback_dispatches(), 0);
    }

    /// During any interval, WF²Q's service to the big session differs from
    /// the GPS share (half the link) by less than one packet — the §3.3
    /// accuracy claim.
    #[test]
    fn service_tracks_gps_within_one_packet() {
        let mut s = Wf2q::new(1.0);
        let s0 = s.add_session(0.5);
        for _ in 0..10 {
            s.add_session(0.05);
        }
        s.backlog(s0, 1.0, Some(0.0));
        for i in 1..=10 {
            s.backlog(SessionId(i), 1.0, Some(0.0));
        }
        let mut served0 = 0.0_f64;
        let mut elapsed = 0.0_f64;
        let mut remaining = vec![11usize, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        while let Some(id) = s.select_next() {
            elapsed += 1.0;
            if id.0 == 0 {
                served0 += 1.0;
            }
            // GPS gives session 0 exactly half the link while all are
            // backlogged (first 20 slots).
            if elapsed <= 20.0 {
                assert!(
                    (served0 - 0.5 * elapsed).abs() < 1.0 + 1e-9,
                    "lag {} at t={elapsed}",
                    served0 - 0.5 * elapsed
                );
            }
            remaining[id.0] -= 1;
            s.requeue(id, if remaining[id.0] > 0 { Some(1.0) } else { None });
        }
    }
}
