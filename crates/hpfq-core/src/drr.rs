//! DRR — Deficit Round Robin (Shreedhar & Varghese, SIGCOMM '95; paper §6).
//!
//! O(1) frame-based scheduling: backlogged sessions sit in a round-robin
//! ring; each visit credits the session's deficit counter with a quantum
//! proportional to its share and the session sends while its head fits in
//! the deficit. The paper cites DRR as a low-complexity scheduler with a
//! *large* WFI — the `wfi_table` experiment quantifies that against WF²Q+.

use std::collections::VecDeque;

use hpfq_obs::snap::{SnapError, Value};

use crate::scheduler::{load_opt_id, save_opt_id, NodeScheduler, SessionId};
use crate::vtime;

#[derive(Debug, Clone)]
struct DrrSession {
    phi: f64,
    /// Quantum credited at the start of each round-robin turn, in bits.
    quantum: f64,
    /// Unused credit in bits. Carries across rounds while the head packet
    /// exceeds it (so oversized packets eventually send); reset when the
    /// session drains.
    deficit: f64,
    head_bits: f64,
    backlogged: bool,
    /// Whether the quantum for the current turn has been credited.
    turn_credited: bool,
}

/// The DRR scheduler.
#[derive(Debug, Clone)]
pub struct Drr {
    rate: f64,
    sessions: Vec<DrrSession>,
    /// Round-robin ring of backlogged sessions; the front session keeps
    /// sending while its deficit lasts.
    ring: VecDeque<SessionId>,
    quantum_base: f64,
    t: f64,
    in_service: Option<SessionId>,
    backlogged: usize,
}

impl Drr {
    /// Default base quantum: one 1500-byte MTU in bits. A session of share
    /// `phi` receives `phi * base` bits per round.
    pub const DEFAULT_QUANTUM_BASE: f64 = 12_000.0;

    /// Creates a DRR server with the default quantum base.
    pub fn new(rate_bps: f64) -> Self {
        Self::with_quantum_base(rate_bps, Self::DEFAULT_QUANTUM_BASE)
    }

    /// Creates a DRR server crediting `phi * quantum_base_bits` per turn.
    /// Larger quanta lower the per-packet overhead but increase burstiness
    /// (and the WFI).
    pub fn with_quantum_base(rate_bps: f64, quantum_base_bits: f64) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "invalid rate {rate_bps}"
        );
        assert!(
            quantum_base_bits.is_finite() && quantum_base_bits > 0.0,
            "invalid quantum base {quantum_base_bits}"
        );
        Drr {
            rate: rate_bps,
            sessions: Vec::new(),
            ring: VecDeque::new(),
            quantum_base: quantum_base_bits,
            t: 0.0,
            in_service: None,
            backlogged: 0,
        }
    }

    /// Current reference time.
    pub fn reference_time(&self) -> f64 {
        self.t
    }
}

impl NodeScheduler for Drr {
    fn rate_bps(&self) -> f64 {
        self.rate
    }

    fn add_session(&mut self, phi: f64) -> SessionId {
        assert!(phi.is_finite() && phi > 0.0, "invalid share {phi}");
        self.sessions.push(DrrSession {
            phi,
            quantum: phi * self.quantum_base,
            deficit: 0.0,
            head_bits: 0.0,
            backlogged: false,
            turn_credited: false,
        });
        SessionId(self.sessions.len() - 1)
    }

    fn backlog(&mut self, id: SessionId, head_bits: f64, _ref_now: Option<f64>) {
        let s = &mut self.sessions[id.0];
        debug_assert!(!s.backlogged);
        s.backlogged = true;
        s.head_bits = head_bits;
        s.deficit = 0.0;
        s.turn_credited = false;
        self.ring.push_back(id);
        self.backlogged += 1;
    }

    fn select_next(&mut self) -> Option<SessionId> {
        debug_assert!(self.in_service.is_none());
        loop {
            let id = *self.ring.front()?;
            let s = &mut self.sessions[id.0];
            if !s.turn_credited {
                s.deficit += s.quantum;
                s.turn_credited = true;
            }
            // Tolerance absorbs float drift from repeated credits.
            if vtime::approx_le(s.head_bits, s.deficit) {
                s.deficit -= s.head_bits;
                self.t += s.head_bits / self.rate;
                self.in_service = Some(id);
                return Some(id);
            }
            // Head does not fit: next turn (deficit carries over so the
            // packet eventually sends even if it exceeds one quantum).
            s.turn_credited = false;
            self.ring.rotate_left(1);
        }
    }

    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>) {
        debug_assert_eq!(self.in_service, Some(id));
        debug_assert_eq!(self.ring.front(), Some(&id));
        self.in_service = None;
        match next_head_bits {
            Some(bits) => {
                let s = &mut self.sessions[id.0];
                s.head_bits = bits;
                // The front session keeps its turn while the deficit covers
                // the next head; otherwise its turn ends.
                if vtime::strictly_after(bits, s.deficit) {
                    s.turn_credited = false;
                    self.ring.rotate_left(1);
                }
            }
            None => {
                self.ring.pop_front();
                let s = &mut self.sessions[id.0];
                s.backlogged = false;
                s.deficit = 0.0;
                s.turn_credited = false;
                self.backlogged -= 1;
                if self.backlogged == 0 {
                    self.t = 0.0;
                }
            }
        }
    }

    fn backlogged(&self) -> usize {
        self.backlogged
    }

    /// DRR maintains no virtual clock; its reference time stands in.
    fn virtual_time(&self) -> f64 {
        self.t
    }

    fn phi(&self, id: SessionId) -> f64 {
        self.sessions[id.0].phi
    }

    fn tags(&self, _id: SessionId) -> (f64, f64) {
        (0.0, 0.0)
    }

    fn name(&self) -> &'static str {
        "drr"
    }

    fn save_state(&self) -> Value {
        // Unlike the virtual-time schedulers, the ring's *order* is state
        // (it encodes whose turn is next), so it is saved verbatim rather
        // than rebuilt from per-session flags.
        Value::map(vec![
            ("rate", Value::F64(self.rate)),
            ("quantum_base", Value::F64(self.quantum_base)),
            ("t", Value::F64(self.t)),
            ("in_service", save_opt_id(self.in_service)),
            (
                "sessions",
                Value::List(
                    self.sessions
                        .iter()
                        .map(|s| {
                            Value::map(vec![
                                ("phi", Value::F64(s.phi)),
                                ("quantum", Value::F64(s.quantum)),
                                ("deficit", Value::F64(s.deficit)),
                                ("head_bits", Value::F64(s.head_bits)),
                                ("backlogged", Value::Bool(s.backlogged)),
                                ("turn_credited", Value::Bool(s.turn_credited)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ring",
                Value::List(self.ring.iter().map(|id| Value::U64(id.0 as u64)).collect()),
            ),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let rate = state.get("rate")?.as_f64()?;
        let quantum_base = state.get("quantum_base")?.as_f64()?;
        if rate.to_bits() != self.rate.to_bits()
            || quantum_base.to_bits() != self.quantum_base.to_bits()
        {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "drr config mismatch: snapshot rate {rate} / quantum base {quantum_base}, \
                     configured {} / {}",
                    self.rate, self.quantum_base
                ),
            });
        }
        let mut sessions = Vec::new();
        for sv in state.get("sessions")?.items()? {
            sessions.push(DrrSession {
                phi: sv.get("phi")?.as_f64()?,
                quantum: sv.get("quantum")?.as_f64()?,
                deficit: sv.get("deficit")?.as_f64()?,
                head_bits: sv.get("head_bits")?.as_f64()?,
                backlogged: sv.get("backlogged")?.as_bool()?,
                turn_credited: sv.get("turn_credited")?.as_bool()?,
            });
        }
        let mut ring = VecDeque::new();
        for idv in state.get("ring")?.items()? {
            let id = idv.as_usize()?;
            if id >= sessions.len() {
                return Err(SnapError {
                    at: 0,
                    what: format!("ring references session {id} of {}", sessions.len()),
                });
            }
            ring.push_back(SessionId(id));
        }
        self.backlogged = sessions.iter().filter(|s| s.backlogged).count();
        self.sessions = sessions;
        self.ring = ring;
        self.t = state.get("t")?.as_f64()?;
        self.in_service = load_opt_id(state.get("in_service")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_split_over_many_rounds() {
        let mut s = Drr::with_quantum_base(1.0, 2.0);
        let a = s.add_session(0.75);
        let b = s.add_session(0.25);
        s.backlog(a, 1.0, None);
        s.backlog(b, 1.0, None);
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            let id = s.select_next().unwrap();
            counts[id.0] += 1;
            s.requeue(id, Some(1.0));
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.1, "{counts:?}");
    }

    #[test]
    fn oversized_packet_accumulates_deficit() {
        let mut s = Drr::with_quantum_base(1.0, 1.0);
        let a = s.add_session(0.5); // quantum 0.5 bits/turn
        let b = s.add_session(0.5);
        s.backlog(a, 2.0, None); // needs 4 turns of credit
        s.backlog(b, 0.5, None);
        // b's small packets interleave while a saves credit.
        let first = s.select_next().unwrap();
        assert_eq!(first, b);
        s.requeue(b, Some(0.5));
        let second = s.select_next().unwrap();
        assert_eq!(second, b);
        s.requeue(b, None);
        // With b gone, a keeps earning quanta until the packet fits.
        let third = s.select_next().unwrap();
        assert_eq!(third, a);
        s.requeue(a, None);
        assert_eq!(s.backlogged(), 0);
    }

    #[test]
    fn front_session_sends_burst_within_deficit() {
        let mut s = Drr::with_quantum_base(1.0, 4.0);
        let a = s.add_session(1.0); // quantum 4 bits
        s.backlog(a, 1.0, None);
        for _ in 0..4 {
            assert_eq!(s.select_next(), Some(a));
            s.requeue(a, Some(1.0));
        }
        // 4 bits spent; the 5th packet needs a fresh turn but a is alone,
        // so it still comes next.
        assert_eq!(s.select_next(), Some(a));
        s.requeue(a, None);
    }
}
