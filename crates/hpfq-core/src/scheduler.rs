//! The [`NodeScheduler`] trait: a one-level PFQ server over logical child
//! queues, usable standalone or as a node of an H-PFQ [`crate::Hierarchy`].
//!
//! ## The contract
//!
//! A node scheduler serves a set of *sessions* (child logical queues). At
//! any instant a session is either **idle** (offers no packet) or
//! **backlogged** (offers exactly one *head* packet of known length; further
//! packets behind the head are invisible to the scheduler, exactly as in the
//! paper's per-node logical queues, §4.2).
//!
//! The driver (the hierarchy, or a link for a standalone server) calls:
//!
//! * [`NodeScheduler::backlog`] when a session transitions idle →
//!   backlogged. Virtual-time schedulers stamp the head with
//!   `S = max(F_prev, V)` per eq. (28), second case.
//! * [`NodeScheduler::select_next`] when the node may dispatch: the
//!   scheduler picks a session according to its policy, accounts the head as
//!   served (advancing its virtual/reference clocks per RESTART-NODE lines
//!   12–13), and returns the session. The session is *in service* until the
//!   matching `requeue`.
//! * [`NodeScheduler::requeue`] once the dispatched head has been consumed:
//!   `Some(len)` re-offers the session's next head (`S = F_prev`, eq. (28)
//!   first case); `None` marks the session idle.
//!
//! ## Busy periods
//!
//! Virtual time is defined per server busy period (paper eq. 4). When the
//! last session goes idle, implementations reset their virtual clock and all
//! session tags to zero; tags from a previous busy period must not penalise
//! (or favour) sessions in the next one.

use hpfq_obs::snap::{SnapError, Value};

/// Index of a session (child logical queue) within one scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub usize);

impl SessionId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A one-level packet fair queueing server over logical child queues.
///
/// See the [module documentation](self) for the driving contract.
pub trait NodeScheduler {
    /// The configured output rate of this server in bits/s.
    fn rate_bps(&self) -> f64;

    /// Registers a new session with guaranteed share `phi` (fraction of this
    /// server's rate, `0 < phi <= 1`). The session starts idle.
    ///
    /// The caller is responsible for keeping the sum of shares at or below 1
    /// (the hierarchy enforces this); exceeding it voids the delay and WFI
    /// guarantees but the scheduler still operates.
    fn add_session(&mut self, phi: f64) -> SessionId;

    /// Session `id` transitions idle → backlogged with a head packet of
    /// `head_bits` bits.
    ///
    /// `ref_now` is the server's reference time at the arrival instant if
    /// the caller knows it — the hierarchy passes `Some(real elapsed busy
    /// time)` for the root server, where reference time coincides with
    /// real time (paper eq. 32), so arrivals between dispatches are
    /// stamped with the exact virtual time rather than the
    /// dispatch-quantized one. Internal nodes pass `None`: their reference
    /// time only advances at dispatches (pseudocode line 13), exactly as
    /// in the paper.
    fn backlog(&mut self, id: SessionId, head_bits: f64, ref_now: Option<f64>);

    /// Announces a packet of `bits` bits arriving to an *already
    /// backlogged* session — it joins the session's queue behind the head
    /// and will be offered later through [`NodeScheduler::requeue`].
    ///
    /// `ref_now` follows the same convention as [`NodeScheduler::backlog`].
    /// Policies that emulate the reference GPS fluid system (WFQ, WF²Q) use
    /// the announcement to keep the emulated per-session backlog — and
    /// hence the virtual-time slope and eq. (28) stamps — exact instead of
    /// head-limited; self-clocked policies ignore it (the default).
    fn arrival_hint(&mut self, id: SessionId, bits: f64, ref_now: Option<f64>) {
        let _ = (id, bits, ref_now);
    }

    /// Picks the next session to serve per the policy and accounts its head
    /// packet as dispatched. Returns `None` iff no session is backlogged.
    ///
    /// The returned session stays *in service* — excluded from further
    /// selection — until [`NodeScheduler::requeue`] is called for it.
    fn select_next(&mut self) -> Option<SessionId>;

    /// Completes service of `id`'s dispatched head. `Some(len)` offers the
    /// session's next head packet of `len` bits; `None` marks it idle.
    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>);

    /// Number of sessions currently offering a packet (including one in
    /// service, if any).
    fn backlogged(&self) -> usize;

    /// Current value of the scheduler's virtual time function, in
    /// reference-time seconds. Round-robin schedulers that do not maintain a
    /// virtual clock return their served-work reference time instead.
    fn virtual_time(&self) -> f64;

    /// Guaranteed share of session `id`.
    fn phi(&self, id: SessionId) -> f64;

    /// Virtual start and finish tags of session `id`'s current head packet.
    /// Meaningful only while the session is backlogged; round-robin
    /// schedulers return `(0.0, 0.0)`.
    fn tags(&self, id: SessionId) -> (f64, f64);

    /// Short policy name for reports ("wf2q+", "wfq", …).
    fn name(&self) -> &'static str;

    /// Tells the scheduler whether it serves the hierarchy root. The
    /// hierarchy calls `set_is_root(false)` on every scheduler it attaches
    /// below the root, centralizing the `ref_now` convention of
    /// [`NodeScheduler::backlog`]: only root servers may receive
    /// `Some(ref_now)`, and [`crate::PifoTree`] debug-asserts it. The
    /// default is a no-op so standalone servers (which are their own root)
    /// and schedulers indifferent to the convention need not implement it.
    fn set_is_root(&mut self, is_root: bool) {
        let _ = is_root;
    }

    /// Sets the dispatch batch size `k`: schedulers that support batched
    /// dispatch ([`crate::PifoTree`]) recompute their eligibility threshold
    /// once per `k` dispatches instead of every dispatch. `k = 1` (the
    /// default everywhere) is the exact per-dispatch schedule; `k > 1`
    /// trades a bounded amount of short-term fairness for hot-path work.
    /// The default ignores the hint — batching is an optimization, never a
    /// semantic requirement.
    fn set_dispatch_batch(&mut self, k: usize) {
        let _ = k;
    }

    /// Serializes the scheduler's complete mutable state for an epoch
    /// checkpoint (DESIGN.md §14). The returned value, fed back through
    /// [`NodeScheduler::load_state`] on a scheduler constructed with the
    /// same configuration, must reproduce the original's behaviour exactly
    /// — every subsequent dispatch decision and tag must be bit-identical.
    ///
    /// The default returns [`Value::Null`] ("no checkpointable state"); all
    /// in-tree schedulers override it.
    fn save_state(&self) -> Value {
        Value::Null
    }

    /// Restores state captured by [`NodeScheduler::save_state`]. The
    /// default accepts only [`Value::Null`] so that a scheduler without
    /// checkpoint support fails loudly rather than resuming from garbage.
    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        if state.is_null() {
            Ok(())
        } else {
            Err(SnapError {
                at: 0,
                what: format!("scheduler '{}' does not support load_state", self.name()),
            })
        }
    }
}

/// Serializes an optional in-service session id.
pub(crate) fn save_opt_id(id: Option<SessionId>) -> Value {
    match id {
        Some(id) => Value::U64(id.0 as u64),
        None => Value::Null,
    }
}

/// Restores an optional in-service session id.
pub(crate) fn load_opt_id(v: &Value) -> Result<Option<SessionId>, SnapError> {
    if v.is_null() {
        Ok(None)
    } else {
        Ok(Some(SessionId(v.as_usize()?)))
    }
}

/// Common per-session bookkeeping shared by the virtual-time schedulers
/// and the [`crate::pifo`] rank programs (which is why it is public: a
/// user-supplied [`crate::RankProgram`] stamps tags through this type).
///
/// Stores the share, the derived inverse guaranteed rate, the head tags
/// `(start, finish)` of eq. (28)/(29), and the backlog flag.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// Guaranteed share of the parent server's rate.
    pub phi: f64,
    /// `1 / (phi * server_rate)` — seconds of virtual time per bit.
    pub inv_rate: f64,
    /// Virtual start tag of the head packet.
    pub start: f64,
    /// Virtual finish tag of the head packet.
    pub finish: f64,
    /// Length of the head packet in bits (valid while backlogged).
    pub head_bits: f64,
    /// Whether the session currently offers a head packet (or has one in
    /// service).
    pub backlogged: bool,
}

impl SessionState {
    /// Creates an idle session with share `phi` of a `server_rate` server.
    pub fn new(phi: f64, server_rate: f64) -> Self {
        assert!(
            phi.is_finite() && phi > 0.0,
            "session share must be a positive finite number, got {phi}"
        );
        assert!(
            server_rate.is_finite() && server_rate > 0.0,
            "server rate must be a positive finite number, got {server_rate}"
        );
        SessionState {
            phi,
            inv_rate: 1.0 / (phi * server_rate),
            start: 0.0,
            finish: 0.0,
            head_bits: 0.0,
            backlogged: false,
        }
    }

    /// Stamps tags for a head arriving to an idle session: `S = max(F, V)`,
    /// `F = S + L / r_i` (eq. 28 second case + eq. 29).
    pub fn stamp_new_backlog(&mut self, v: f64, head_bits: f64) {
        debug_assert!(head_bits.is_finite() && head_bits > 0.0);
        self.start = self.finish.max(v);
        self.finish = self.start + head_bits * self.inv_rate;
        self.head_bits = head_bits;
        self.backlogged = true;
    }

    /// Stamps tags for the next head of a continuously backlogged session:
    /// `S = F` (eq. 28 first case).
    pub fn stamp_continuation(&mut self, head_bits: f64) {
        debug_assert!(head_bits.is_finite() && head_bits > 0.0);
        self.start = self.finish;
        self.finish = self.start + head_bits * self.inv_rate;
        self.head_bits = head_bits;
    }

    /// Resets tags at a busy-period boundary.
    pub fn reset(&mut self) {
        self.start = 0.0;
        self.finish = 0.0;
        debug_assert!(!self.backlogged, "resetting a backlogged session");
    }

    /// Serializes for an epoch checkpoint. Every field is saved verbatim —
    /// in particular `inv_rate` is *not* recomputed from `phi` on load, so
    /// the restored tag arithmetic is bit-identical.
    pub(crate) fn save(&self) -> Value {
        Value::map(vec![
            ("phi", Value::F64(self.phi)),
            ("inv_rate", Value::F64(self.inv_rate)),
            ("start", Value::F64(self.start)),
            ("finish", Value::F64(self.finish)),
            ("head_bits", Value::F64(self.head_bits)),
            ("backlogged", Value::Bool(self.backlogged)),
        ])
    }

    /// Restores a session saved by [`SessionState::save`].
    pub(crate) fn load(v: &Value) -> Result<SessionState, SnapError> {
        Ok(SessionState {
            phi: v.get("phi")?.as_f64()?,
            inv_rate: v.get("inv_rate")?.as_f64()?,
            start: v.get("start")?.as_f64()?,
            finish: v.get("finish")?.as_f64()?,
            head_bits: v.get("head_bits")?.as_f64()?,
            backlogged: v.get("backlogged")?.as_bool()?,
        })
    }
}

/// Serializes a `Vec<SessionState>` session table.
pub(crate) fn save_sessions(sessions: &[SessionState]) -> Value {
    Value::List(sessions.iter().map(SessionState::save).collect())
}

/// Restores a session table saved by [`save_sessions`].
pub(crate) fn load_sessions(v: &Value) -> Result<Vec<SessionState>, SnapError> {
    v.items()?.iter().map(SessionState::load).collect()
}

/// Structure-of-arrays session table: the per-session metadata the PIFO
/// driver touches on **every dispatch** — shares, derived inverse rates,
/// the eq. (28)/(29) head tags, head lengths, and backlog flags — laid
/// out in parallel `Vec`s indexed by session id.
///
/// This extends the dual-heap eligible set's SoA layout to the flow table
/// itself: a dispatch reads 2–3 of the six fields, so pulling a dense
/// `f64` lane instead of a 48-byte [`SessionState`] record keeps the hot
/// cache lines at a million-session scale packed with useful tags (the
/// scaling sweep in `hpfq-bench` measures exactly this path). The legacy
/// schedulers keep the AoS [`SessionState`]; serialization is
/// format-compatible between the two ([`SessionTable::save`] emits the
/// same per-session maps as [`save_sessions`]).
#[derive(Debug, Clone, Default)]
pub struct SessionTable {
    /// Guaranteed share of the parent server's rate, per session.
    phi: Vec<f64>,
    /// `1 / (phi * server_rate)` — seconds of virtual time per bit.
    inv_rate: Vec<f64>,
    /// Virtual start tag of each session's head packet.
    start: Vec<f64>,
    /// Virtual finish tag of each session's head packet.
    finish: Vec<f64>,
    /// Length of each session's head packet in bits (valid while
    /// backlogged).
    head_bits: Vec<f64>,
    /// Whether each session currently offers a head packet (or has one in
    /// service).
    backlogged: Vec<bool>,
}

impl SessionTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        self.phi.len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.phi.is_empty()
    }

    /// Registers an idle session with share `phi` of a `server_rate`
    /// server and returns its id (same validation as
    /// [`SessionState::new`]).
    pub fn push(&mut self, phi: f64, server_rate: f64) -> SessionId {
        assert!(
            phi.is_finite() && phi > 0.0,
            "session share must be a positive finite number, got {phi}"
        );
        assert!(
            server_rate.is_finite() && server_rate > 0.0,
            "server rate must be a positive finite number, got {server_rate}"
        );
        self.phi.push(phi);
        self.inv_rate.push(1.0 / (phi * server_rate));
        self.start.push(0.0);
        self.finish.push(0.0);
        self.head_bits.push(0.0);
        self.backlogged.push(false);
        SessionId(self.phi.len() - 1)
    }

    /// The session's guaranteed share.
    #[inline]
    pub fn phi(&self, id: SessionId) -> f64 {
        self.phi[id.0]
    }

    /// Seconds of virtual time per bit at the session's guaranteed rate.
    #[inline]
    pub fn inv_rate(&self, id: SessionId) -> f64 {
        self.inv_rate[id.0]
    }

    /// Virtual start tag of the session's head packet.
    #[inline]
    pub fn start(&self, id: SessionId) -> f64 {
        self.start[id.0]
    }

    /// Virtual finish tag of the session's head packet.
    #[inline]
    pub fn finish(&self, id: SessionId) -> f64 {
        self.finish[id.0]
    }

    /// Length of the session's head packet in bits.
    #[inline]
    pub fn head_bits(&self, id: SessionId) -> f64 {
        self.head_bits[id.0]
    }

    /// Whether the session currently offers a head packet.
    #[inline]
    pub fn is_backlogged(&self, id: SessionId) -> bool {
        self.backlogged[id.0]
    }

    /// Stamps tags for a head arriving to an idle session: `S = max(F, V)`,
    /// `F = S + L / r_i` (eq. 28 second case + eq. 29).
    #[inline]
    pub fn stamp_new_backlog(&mut self, id: SessionId, v: f64, head_bits: f64) {
        debug_assert!(head_bits.is_finite() && head_bits > 0.0);
        let i = id.0;
        self.start[i] = self.finish[i].max(v);
        self.finish[i] = self.start[i] + head_bits * self.inv_rate[i];
        self.head_bits[i] = head_bits;
        self.backlogged[i] = true;
    }

    /// Stamps tags for the next head of a continuously backlogged session:
    /// `S = F` (eq. 28 first case).
    #[inline]
    pub fn stamp_continuation(&mut self, id: SessionId, head_bits: f64) {
        debug_assert!(head_bits.is_finite() && head_bits > 0.0);
        let i = id.0;
        self.start[i] = self.finish[i];
        self.finish[i] = self.start[i] + head_bits * self.inv_rate[i];
        self.head_bits[i] = head_bits;
    }

    /// Stamps the next head against an exact eq. (28) start base recorded
    /// at its arrival (the GPS-emulating policies' `arrival_hint` path):
    /// `S = max(F, base)`, `F = S + L / r_i`.
    #[inline]
    pub fn stamp_from_base(&mut self, id: SessionId, base: f64, head_bits: f64) {
        debug_assert!(head_bits.is_finite() && head_bits > 0.0);
        let i = id.0;
        self.start[i] = self.finish[i].max(base);
        self.finish[i] = self.start[i] + head_bits * self.inv_rate[i];
        self.head_bits[i] = head_bits;
    }

    /// Records the head length and backlog flag without touching tags (the
    /// driver's bookkeeping after a program ranked the head).
    #[inline]
    pub(crate) fn note_head(&mut self, id: SessionId, head_bits: f64, backlogged: bool) {
        self.head_bits[id.0] = head_bits;
        self.backlogged[id.0] = backlogged;
    }

    /// Marks the session idle (its dispatched head had no successor).
    #[inline]
    pub(crate) fn set_idle(&mut self, id: SessionId) {
        self.backlogged[id.0] = false;
    }

    /// Number of sessions currently flagged backlogged.
    pub(crate) fn backlogged_count(&self) -> usize {
        self.backlogged.iter().filter(|&&b| b).count()
    }

    /// Resets every session's tags at a busy-period boundary.
    pub(crate) fn reset_tags(&mut self) {
        debug_assert!(
            !self.backlogged.iter().any(|&b| b),
            "resetting a backlogged session"
        );
        self.start.fill(0.0);
        self.finish.fill(0.0);
    }

    /// Serializes the table — byte-identical to [`save_sessions`] over the
    /// equivalent `Vec<SessionState>`, so PIFO and legacy snapshots stay
    /// interchangeable.
    pub(crate) fn save(&self) -> Value {
        Value::List(
            (0..self.len())
                .map(|i| {
                    Value::map(vec![
                        ("phi", Value::F64(self.phi[i])),
                        ("inv_rate", Value::F64(self.inv_rate[i])),
                        ("start", Value::F64(self.start[i])),
                        ("finish", Value::F64(self.finish[i])),
                        ("head_bits", Value::F64(self.head_bits[i])),
                        ("backlogged", Value::Bool(self.backlogged[i])),
                    ])
                })
                .collect(),
        )
    }

    /// Restores a table saved by [`SessionTable::save`] (or
    /// [`save_sessions`]).
    pub(crate) fn load(v: &Value) -> Result<SessionTable, SnapError> {
        let mut t = SessionTable::new();
        for sv in v.items()? {
            t.phi.push(sv.get("phi")?.as_f64()?);
            t.inv_rate.push(sv.get("inv_rate")?.as_f64()?);
            t.start.push(sv.get("start")?.as_f64()?);
            t.finish.push(sv.get("finish")?.as_f64()?);
            t.head_bits.push(sv.get("head_bits")?.as_f64()?);
            t.backlogged.push(sv.get("backlogged")?.as_bool()?);
        }
        Ok(t)
    }
}

/// Serializes per-session pending-stamp queues (the eq. (28) start bases
/// recorded by `arrival_hint` in the GPS-emulating policies — WFQ, WF²Q,
/// and their rank programs).
pub(crate) fn save_pending(pending: &[std::collections::VecDeque<f64>]) -> Value {
    Value::List(
        pending
            .iter()
            .map(|q| Value::List(q.iter().map(|&b| Value::F64(b)).collect()))
            .collect(),
    )
}

/// Restores queues saved by [`save_pending`]; must match the session count.
pub(crate) fn load_pending(
    v: &Value,
    sessions: usize,
) -> Result<Vec<std::collections::VecDeque<f64>>, SnapError> {
    let mut pending = Vec::new();
    for qv in v.items()? {
        let mut q = std::collections::VecDeque::new();
        for bv in qv.items()? {
            q.push_back(bv.as_f64()?);
        }
        pending.push(q);
    }
    if pending.len() != sessions {
        return Err(SnapError {
            at: 0,
            what: format!(
                "pending queue count {} does not match session count {sessions}",
                pending.len()
            ),
        });
    }
    Ok(pending)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_rules_follow_eq_28_29() {
        // phi = 0.5 of a 2 bit/s server => r_i = 1 bit/s.
        let mut s = SessionState::new(0.5, 2.0);
        s.stamp_new_backlog(3.0, 4.0);
        assert_eq!(s.start, 3.0);
        assert_eq!(s.finish, 7.0);
        // Continuation: S = F.
        s.stamp_continuation(2.0);
        assert_eq!(s.start, 7.0);
        assert_eq!(s.finish, 9.0);
        // Re-backlog with stale V: S = max(F, V) = F.
        s.backlogged = false;
        s.stamp_new_backlog(1.0, 1.0);
        assert_eq!(s.start, 9.0);
        assert_eq!(s.finish, 10.0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn rejects_nonpositive_share() {
        let _ = SessionState::new(0.0, 1.0);
    }
}
