//! SCFQ — Self-Clocked Fair Queueing (Golestani, INFOCOM '94; paper §6).
//!
//! SCFQ replaces the GPS virtual time with the finish tag of the packet
//! currently in service — O(1) to maintain — and serves smallest finish tag
//! first. The simplification costs accuracy: the virtual time can stall
//! (slope 0), so SCFQ's delay bound and WFI both grow with the number of
//! sessions (§3.4 discussion and ref. [10]); the `wfi_table` experiment
//! measures this against WF²Q+.

use hpfq_obs::snap::{SnapError, Value};

use crate::scheduler::{
    load_opt_id, load_sessions, save_opt_id, save_sessions, NodeScheduler, SessionId, SessionState,
};
use crate::tag_heap::TagHeap;

/// The SCFQ scheduler.
#[derive(Debug, Clone)]
pub struct Scfq {
    rate: f64,
    sessions: Vec<SessionState>,
    heap: TagHeap,
    /// Virtual time = finish tag of the packet most recently dispatched.
    v: f64,
    t: f64,
    in_service: Option<SessionId>,
    backlogged: usize,
}

impl Scfq {
    /// Creates an SCFQ server of the given rate.
    pub fn new(rate_bps: f64) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "invalid rate {rate_bps}"
        );
        Scfq {
            rate: rate_bps,
            sessions: Vec::new(),
            heap: TagHeap::new(),
            v: 0.0,
            t: 0.0,
            in_service: None,
            backlogged: 0,
        }
    }

    /// Current reference time.
    pub fn reference_time(&self) -> f64 {
        self.t
    }
}

impl NodeScheduler for Scfq {
    fn rate_bps(&self) -> f64 {
        self.rate
    }

    fn add_session(&mut self, phi: f64) -> SessionId {
        self.sessions.push(SessionState::new(phi, self.rate));
        SessionId(self.sessions.len() - 1)
    }

    fn backlog(&mut self, id: SessionId, head_bits: f64, _ref_now: Option<f64>) {
        let s = &mut self.sessions[id.0];
        debug_assert!(!s.backlogged);
        // F = max(V, F_prev) + L/r_i — Golestani's tag rule.
        s.stamp_new_backlog(self.v, head_bits);
        self.heap.push(id, s.finish, s.start);
        self.backlogged += 1;
    }

    fn select_next(&mut self) -> Option<SessionId> {
        debug_assert!(self.in_service.is_none());
        let (id, finish, _) = self.heap.pop_min()?;
        // Self-clocking: V jumps to the dispatched packet's finish tag.
        self.v = finish;
        self.t += self.sessions[id.0].head_bits / self.rate;
        self.in_service = Some(id);
        Some(id)
    }

    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>) {
        debug_assert_eq!(self.in_service, Some(id));
        self.in_service = None;
        match next_head_bits {
            Some(bits) => {
                let s = &mut self.sessions[id.0];
                s.stamp_continuation(bits);
                self.heap.push(id, s.finish, s.start);
            }
            None => {
                self.sessions[id.0].backlogged = false;
                self.backlogged -= 1;
                if self.backlogged == 0 {
                    self.v = 0.0;
                    self.t = 0.0;
                    self.heap.clear();
                    for s in &mut self.sessions {
                        s.reset();
                    }
                }
            }
        }
    }

    fn backlogged(&self) -> usize {
        self.backlogged
    }

    fn virtual_time(&self) -> f64 {
        self.v
    }

    fn phi(&self, id: SessionId) -> f64 {
        self.sessions[id.0].phi
    }

    fn tags(&self, id: SessionId) -> (f64, f64) {
        let s = &self.sessions[id.0];
        (s.start, s.finish)
    }

    fn name(&self) -> &'static str {
        "scfq"
    }

    fn save_state(&self) -> Value {
        Value::map(vec![
            ("rate", Value::F64(self.rate)),
            ("v", Value::F64(self.v)),
            ("t", Value::F64(self.t)),
            ("in_service", save_opt_id(self.in_service)),
            ("sessions", save_sessions(&self.sessions)),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let rate = state.get("rate")?.as_f64()?;
        if rate.to_bits() != self.rate.to_bits() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "scfq rate mismatch: snapshot {rate}, configured {}",
                    self.rate
                ),
            });
        }
        self.sessions = load_sessions(state.get("sessions")?)?;
        self.v = state.get("v")?.as_f64()?;
        self.t = state.get("t")?.as_f64()?;
        self.in_service = load_opt_id(state.get("in_service")?)?;
        self.backlogged = self.sessions.iter().filter(|s| s.backlogged).count();
        self.heap.clear();
        for (i, s) in self.sessions.iter().enumerate() {
            let id = SessionId(i);
            if s.backlogged && self.in_service != Some(id) {
                self.heap.push(id, s.finish, s.start);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_split() {
        let mut s = Scfq::new(1.0);
        let a = s.add_session(0.75);
        let b = s.add_session(0.25);
        s.backlog(a, 1.0, None);
        s.backlog(b, 1.0, None);
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            let id = s.select_next().unwrap();
            counts[id.0] += 1;
            s.requeue(id, Some(1.0));
        }
        assert!((counts[0] as f64 - 300.0).abs() <= 2.0, "{counts:?}");
    }

    /// The SCFQ pathology: a session arriving to an idle queue inherits the
    /// in-service packet's finish tag as its floor, so after a long burst by
    /// one session the newcomer still starts immediately behind it — but the
    /// virtual time never runs ahead of served work as GPS's can.
    #[test]
    fn newcomer_tagged_from_in_service_packet() {
        let mut s = Scfq::new(1.0);
        let a = s.add_session(0.5);
        let b = s.add_session(0.5);
        s.backlog(a, 1.0, None);
        let id = s.select_next().unwrap();
        assert_eq!(id, a);
        // V jumped to a's finish tag (2.0); b arrives during service.
        s.backlog(b, 1.0, None);
        assert_eq!(s.tags(b).0, 2.0);
        assert_eq!(s.tags(b).1, 4.0);
        s.requeue(id, None);
    }
}
