//! Runtime-selectable scheduler: a [`SchedulerKind`] factory and a
//! [`MixedScheduler`] enum dispatching to every one-level policy in the
//! crate.
//!
//! Two uses:
//!
//! * experiment harnesses that sweep over policies pick them by kind;
//! * heterogeneous H-PFQ trees (e.g. WF²Q+ at the link level with FIFO
//!   leaves inside a best-effort class) build a
//!   `Hierarchy<MixedScheduler>` and choose a kind per node.

use hpfq_obs::snap::{SnapError, Value};

#[cfg(feature = "legacy-schedulers")]
use crate::drr::Drr;
#[cfg(feature = "legacy-schedulers")]
use crate::fifo::Fifo;
use crate::eligible::calendar::CalendarEligibleSet;
use crate::eligible::treap::TreapEligibleSet;
use crate::pifo::rank::{DrrRank, FifoRank, RrRank, ScfqRank, SfqRank, Wf2qPlusRank, Wf2qRank, WfqRank};
use crate::pifo::PifoTree;
#[cfg(feature = "legacy-schedulers")]
use crate::scfq::Scfq;
use crate::scheduler::{NodeScheduler, SessionId};
#[cfg(feature = "legacy-schedulers")]
use crate::sfq::Sfq;
#[cfg(feature = "legacy-schedulers")]
use crate::wf2q::Wf2q;
#[cfg(feature = "legacy-schedulers")]
use crate::wf2q_plus::Wf2qPlus;
#[cfg(feature = "legacy-schedulers")]
use crate::wfq::Wfq;

/// Identifies a one-level scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// WF²Q+ (the paper's contribution).
    Wf2qPlus,
    /// WFQ / PGPS.
    Wfq,
    /// WF²Q.
    Wf2q,
    /// Self-Clocked Fair Queueing.
    Scfq,
    /// Start-time Fair Queueing.
    Sfq,
    /// Deficit Round Robin.
    Drr,
    /// FIFO.
    Fifo,
    /// Overlapped round robin (integer finish rounds; see
    /// [`crate::pifo::rank::RrRank`]). PIFO-native — no legacy original.
    Rr,
}

impl SchedulerKind {
    /// Every kind, in report order.
    pub const ALL: [SchedulerKind; 8] = [
        SchedulerKind::Wf2qPlus,
        SchedulerKind::Wfq,
        SchedulerKind::Wf2q,
        SchedulerKind::Scfq,
        SchedulerKind::Sfq,
        SchedulerKind::Drr,
        SchedulerKind::Fifo,
        SchedulerKind::Rr,
    ];

    /// Whether a hand-rolled (pre-PIFO) original exists for this kind —
    /// i.e. whether [`SchedulerKind::build_legacy`] is callable. The
    /// differential suites iterate [`SchedulerKind::ALL`] and skip the
    /// legacy oracle where there is none.
    pub fn has_legacy(self) -> bool {
        !matches!(self, SchedulerKind::Rr)
    }

    /// Builds a scheduler of this kind for a server of `rate_bps`, backed
    /// by the PIFO substrate ([`PifoTree`] running this kind's rank
    /// program) — byte-identical to the hand-rolled implementation, which
    /// remains available via [`SchedulerKind::build_legacy`].
    pub fn build(self, rate_bps: f64) -> MixedScheduler {
        // One monomorphized `PifoTree<P>` per program: the driver inlines
        // each policy's rank hooks instead of matching a program enum on
        // every per-packet call.
        match self {
            SchedulerKind::Wf2qPlus => {
                MixedScheduler::PifoWf2qPlus(PifoTree::new(rate_bps, Wf2qPlusRank::new()))
            }
            SchedulerKind::Wfq => MixedScheduler::PifoWfq(PifoTree::new(rate_bps, WfqRank::new())),
            SchedulerKind::Wf2q => {
                MixedScheduler::PifoWf2q(PifoTree::new(rate_bps, Wf2qRank::new()))
            }
            SchedulerKind::Scfq => {
                MixedScheduler::PifoScfq(PifoTree::new(rate_bps, ScfqRank::new()))
            }
            SchedulerKind::Sfq => MixedScheduler::PifoSfq(PifoTree::new(rate_bps, SfqRank::new())),
            SchedulerKind::Drr => MixedScheduler::PifoDrr(PifoTree::new(rate_bps, DrrRank::new())),
            SchedulerKind::Fifo => {
                MixedScheduler::PifoFifo(PifoTree::new(rate_bps, FifoRank::new()))
            }
            SchedulerKind::Rr => MixedScheduler::PifoRr(PifoTree::new(rate_bps, RrRank::new())),
        }
    }

    /// Builds a scheduler of this kind on the chosen eligible-set backend.
    /// `EligibleBackend::DualHeap` is exactly [`SchedulerKind::build`];
    /// the calendar serves every kind; the treap orders strictly by
    /// `(primary, id)` and is only exposed under WF²Q+ (the one gated
    /// policy whose secondary keys are identically zero — see
    /// `PifoBackend for TreapEligibleSet`).
    pub fn build_with_backend(self, rate_bps: f64, backend: EligibleBackend) -> MixedScheduler {
        match backend {
            EligibleBackend::DualHeap => self.build(rate_bps),
            EligibleBackend::Calendar => match self {
                SchedulerKind::Wf2qPlus => MixedScheduler::CalWf2qPlus(PifoTree::with_backend(
                    rate_bps,
                    Wf2qPlusRank::new(),
                )),
                SchedulerKind::Wfq => {
                    MixedScheduler::CalWfq(PifoTree::with_backend(rate_bps, WfqRank::new()))
                }
                SchedulerKind::Wf2q => {
                    MixedScheduler::CalWf2q(PifoTree::with_backend(rate_bps, Wf2qRank::new()))
                }
                SchedulerKind::Scfq => {
                    MixedScheduler::CalScfq(PifoTree::with_backend(rate_bps, ScfqRank::new()))
                }
                SchedulerKind::Sfq => {
                    MixedScheduler::CalSfq(PifoTree::with_backend(rate_bps, SfqRank::new()))
                }
                SchedulerKind::Drr => {
                    MixedScheduler::CalDrr(PifoTree::with_backend(rate_bps, DrrRank::new()))
                }
                SchedulerKind::Fifo => {
                    MixedScheduler::CalFifo(PifoTree::with_backend(rate_bps, FifoRank::new()))
                }
                SchedulerKind::Rr => {
                    MixedScheduler::CalRr(PifoTree::with_backend(rate_bps, RrRank::new()))
                }
            },
            EligibleBackend::Treap => match self {
                SchedulerKind::Wf2qPlus => MixedScheduler::TreapWf2qPlus(PifoTree::with_backend(
                    rate_bps,
                    Wf2qPlusRank::new(),
                )),
                other => panic!(
                    "the treap backend only serves wf2q+ (zero secondary keys); got '{}'",
                    other.name()
                ),
            },
        }
    }

    /// Builds the hand-rolled (pre-PIFO) scheduler of this kind: the
    /// differential oracle for `tests/pifo_equivalence.rs` and the bench
    /// baseline. Kept for one release behind the `legacy-schedulers`
    /// feature.
    #[cfg(feature = "legacy-schedulers")]
    pub fn build_legacy(self, rate_bps: f64) -> MixedScheduler {
        match self {
            SchedulerKind::Wf2qPlus => MixedScheduler::Wf2qPlus(Wf2qPlus::new(rate_bps)),
            SchedulerKind::Wfq => MixedScheduler::Wfq(Wfq::new(rate_bps)),
            SchedulerKind::Wf2q => MixedScheduler::Wf2q(Wf2q::new(rate_bps)),
            SchedulerKind::Scfq => MixedScheduler::Scfq(Scfq::new(rate_bps)),
            SchedulerKind::Sfq => MixedScheduler::Sfq(Sfq::new(rate_bps)),
            SchedulerKind::Drr => MixedScheduler::Drr(Drr::new(rate_bps)),
            SchedulerKind::Fifo => MixedScheduler::Fifo(Fifo::new(rate_bps)),
            SchedulerKind::Rr => panic!(
                "rr is PIFO-native and has no legacy original; gate on has_legacy()"
            ),
        }
    }

    /// Short policy name ("wf2q+", "wfq", …).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Wf2qPlus => "wf2q+",
            SchedulerKind::Wfq => "wfq",
            SchedulerKind::Wf2q => "wf2q",
            SchedulerKind::Scfq => "scfq",
            SchedulerKind::Sfq => "sfq",
            SchedulerKind::Drr => "drr",
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Rr => "rr",
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "wf2q+" | "wf2qplus" | "wf2q_plus" => Ok(SchedulerKind::Wf2qPlus),
            "wfq" => Ok(SchedulerKind::Wfq),
            "wf2q" => Ok(SchedulerKind::Wf2q),
            "scfq" => Ok(SchedulerKind::Scfq),
            "sfq" => Ok(SchedulerKind::Sfq),
            "drr" => Ok(SchedulerKind::Drr),
            "fifo" => Ok(SchedulerKind::Fifo),
            "rr" => Ok(SchedulerKind::Rr),
            other => Err(format!("unknown scheduler kind '{other}'")),
        }
    }
}

/// Identifies the priority structure backing a [`PifoTree`]: see
/// [`crate::eligible::PifoBackend`]. Selected per experiment (e.g.
/// `--eligible calendar` in the bench harness); every backend pops in the
/// same rank order, so the choice affects cost, never behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EligibleBackend {
    /// Lazy dual binary heaps — amortized O(log N), the default.
    #[default]
    DualHeap,
    /// Start-keyed treap with subtree finish minima — worst-case O(log N);
    /// WF²Q+ only (needs zero secondary keys).
    Treap,
    /// Hierarchical calendar queue / timing wheel — amortized O(1).
    Calendar,
}

impl EligibleBackend {
    /// Backends applicable to `kind` (for sweeps).
    pub fn all_for(kind: SchedulerKind) -> &'static [EligibleBackend] {
        if kind == SchedulerKind::Wf2qPlus {
            &[
                EligibleBackend::DualHeap,
                EligibleBackend::Treap,
                EligibleBackend::Calendar,
            ]
        } else {
            &[EligibleBackend::DualHeap, EligibleBackend::Calendar]
        }
    }

    /// Short structure name ("dual-heap", "treap", "calendar").
    pub fn name(self) -> &'static str {
        match self {
            EligibleBackend::DualHeap => "dual-heap",
            EligibleBackend::Treap => "treap",
            EligibleBackend::Calendar => "calendar",
        }
    }
}

impl std::str::FromStr for EligibleBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dual-heap" | "dualheap" | "dual_heap" | "heap" => Ok(EligibleBackend::DualHeap),
            "treap" => Ok(EligibleBackend::Treap),
            "calendar" | "cal" => Ok(EligibleBackend::Calendar),
            other => Err(format!("unknown eligible backend '{other}'")),
        }
    }
}

/// A one-level scheduler whose policy is chosen at runtime.
///
/// [`SchedulerKind::build`] always yields a `Pifo*` variant (one
/// monomorphized [`PifoTree`] per rank program); the hand-rolled variants
/// exist behind the `legacy-schedulers` feature (via
/// [`SchedulerKind::build_legacy`]) as the differential oracle.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum MixedScheduler {
    PifoWf2qPlus(PifoTree<Wf2qPlusRank>),
    PifoWfq(PifoTree<WfqRank>),
    PifoWf2q(PifoTree<Wf2qRank>),
    PifoScfq(PifoTree<ScfqRank>),
    PifoSfq(PifoTree<SfqRank>),
    PifoDrr(PifoTree<DrrRank>),
    PifoFifo(PifoTree<FifoRank>),
    PifoRr(PifoTree<RrRank>),
    CalWf2qPlus(PifoTree<Wf2qPlusRank, CalendarEligibleSet>),
    CalWfq(PifoTree<WfqRank, CalendarEligibleSet>),
    CalWf2q(PifoTree<Wf2qRank, CalendarEligibleSet>),
    CalScfq(PifoTree<ScfqRank, CalendarEligibleSet>),
    CalSfq(PifoTree<SfqRank, CalendarEligibleSet>),
    CalDrr(PifoTree<DrrRank, CalendarEligibleSet>),
    CalFifo(PifoTree<FifoRank, CalendarEligibleSet>),
    CalRr(PifoTree<RrRank, CalendarEligibleSet>),
    TreapWf2qPlus(PifoTree<Wf2qPlusRank, TreapEligibleSet>),
    #[cfg(feature = "legacy-schedulers")]
    Wf2qPlus(Wf2qPlus),
    #[cfg(feature = "legacy-schedulers")]
    Wfq(Wfq),
    #[cfg(feature = "legacy-schedulers")]
    Wf2q(Wf2q),
    #[cfg(feature = "legacy-schedulers")]
    Scfq(Scfq),
    #[cfg(feature = "legacy-schedulers")]
    Sfq(Sfq),
    #[cfg(feature = "legacy-schedulers")]
    Drr(Drr),
    #[cfg(feature = "legacy-schedulers")]
    Fifo(Fifo),
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            MixedScheduler::PifoWf2qPlus($inner) => $body,
            MixedScheduler::PifoWfq($inner) => $body,
            MixedScheduler::PifoWf2q($inner) => $body,
            MixedScheduler::PifoScfq($inner) => $body,
            MixedScheduler::PifoSfq($inner) => $body,
            MixedScheduler::PifoDrr($inner) => $body,
            MixedScheduler::PifoFifo($inner) => $body,
            MixedScheduler::PifoRr($inner) => $body,
            MixedScheduler::CalWf2qPlus($inner) => $body,
            MixedScheduler::CalWfq($inner) => $body,
            MixedScheduler::CalWf2q($inner) => $body,
            MixedScheduler::CalScfq($inner) => $body,
            MixedScheduler::CalSfq($inner) => $body,
            MixedScheduler::CalDrr($inner) => $body,
            MixedScheduler::CalFifo($inner) => $body,
            MixedScheduler::CalRr($inner) => $body,
            MixedScheduler::TreapWf2qPlus($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Wf2qPlus($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Wfq($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Wf2q($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Scfq($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Sfq($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Drr($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Fifo($inner) => $body,
        }
    };
}

impl NodeScheduler for MixedScheduler {
    fn rate_bps(&self) -> f64 {
        dispatch!(self, s => s.rate_bps())
    }

    fn add_session(&mut self, phi: f64) -> SessionId {
        dispatch!(self, s => s.add_session(phi))
    }

    fn backlog(&mut self, id: SessionId, head_bits: f64, ref_now: Option<f64>) {
        dispatch!(self, s => s.backlog(id, head_bits, ref_now))
    }

    fn arrival_hint(&mut self, id: SessionId, bits: f64, ref_now: Option<f64>) {
        dispatch!(self, s => s.arrival_hint(id, bits, ref_now))
    }

    fn select_next(&mut self) -> Option<SessionId> {
        dispatch!(self, s => s.select_next())
    }

    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>) {
        dispatch!(self, s => s.requeue(id, next_head_bits))
    }

    fn backlogged(&self) -> usize {
        dispatch!(self, s => s.backlogged())
    }

    fn virtual_time(&self) -> f64 {
        dispatch!(self, s => s.virtual_time())
    }

    fn phi(&self, id: SessionId) -> f64 {
        dispatch!(self, s => s.phi(id))
    }

    fn tags(&self, id: SessionId) -> (f64, f64) {
        dispatch!(self, s => s.tags(id))
    }

    fn name(&self) -> &'static str {
        dispatch!(self, s => s.name())
    }

    fn set_is_root(&mut self, is_root: bool) {
        dispatch!(self, s => s.set_is_root(is_root))
    }

    fn set_dispatch_batch(&mut self, k: usize) {
        dispatch!(self, s => s.set_dispatch_batch(k))
    }

    fn save_state(&self) -> Value {
        Value::map(vec![
            ("kind", Value::Str(self.name().to_string())),
            ("state", dispatch!(self, s => s.save_state())),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let kind = state.get("kind")?.as_str()?;
        if kind != self.name() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "scheduler kind mismatch: snapshot '{kind}', configured '{}'",
                    self.name()
                ),
            });
        }
        dispatch!(self, s => s.load_state(state.get("state")?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_name_round_trip() {
        for kind in SchedulerKind::ALL {
            let sched = kind.build(1e6);
            assert_eq!(sched.name(), kind.name());
            assert_eq!(sched.rate_bps(), 1e6);
            assert_eq!(kind.name().parse::<SchedulerKind>().unwrap(), kind);
        }
    }

    #[cfg(feature = "legacy-schedulers")]
    #[test]
    fn legacy_build_and_name_round_trip() {
        for kind in SchedulerKind::ALL.into_iter().filter(|k| k.has_legacy()) {
            let sched = kind.build_legacy(1e6);
            assert_eq!(sched.name(), kind.name());
            assert_eq!(sched.rate_bps(), 1e6);
        }
    }

    #[test]
    fn backend_builds_cover_every_applicable_pair() {
        for kind in SchedulerKind::ALL {
            for &backend in EligibleBackend::all_for(kind) {
                let mut m = kind.build_with_backend(1e6, backend);
                assert_eq!(m.name(), kind.name());
                let a = m.add_session(0.5);
                let b = m.add_session(0.5);
                m.backlog(a, 1000.0, None);
                m.backlog(b, 1000.0, None);
                let first = m.select_next().unwrap();
                m.requeue(first, None);
                let second = m.select_next().unwrap();
                assert_ne!(first, second, "{} on {}", kind.name(), backend.name());
                m.requeue(second, None);
            }
        }
    }

    #[test]
    fn backend_name_round_trip() {
        for backend in [
            EligibleBackend::DualHeap,
            EligibleBackend::Treap,
            EligibleBackend::Calendar,
        ] {
            assert_eq!(backend.name().parse::<EligibleBackend>().unwrap(), backend);
        }
    }

    #[test]
    fn rr_shares_capacity_by_phi() {
        // 3:1 shares, equal packet sizes: over any long window the heavy
        // session must receive ~3x the dispatches.
        let mut m = SchedulerKind::Rr.build(1e6);
        let heavy = m.add_session(0.75);
        let light = m.add_session(0.25);
        m.backlog(heavy, 3000.0, None);
        m.backlog(light, 3000.0, None);
        let mut served = [0u32; 2];
        for _ in 0..400 {
            let id = m.select_next().unwrap();
            served[id.0] += 1;
            m.requeue(id, Some(3000.0));
        }
        let ratio = f64::from(served[heavy.0]) / f64::from(served[light.0]);
        assert!(
            (ratio - 3.0).abs() < 0.1,
            "rr served {served:?}: ratio {ratio} far from shares 3:1"
        );
    }

    #[test]
    fn mixed_dispatch_behaves_like_inner() {
        let mut m = SchedulerKind::Wf2qPlus.build(1.0);
        let a = m.add_session(0.5);
        let b = m.add_session(0.5);
        m.backlog(a, 1.0, None);
        m.backlog(b, 1.0, None);
        let first = m.select_next().unwrap();
        m.requeue(first, Some(1.0));
        let second = m.select_next().unwrap();
        assert_ne!(first, second, "equal weights must alternate under SEFF");
        m.requeue(second, None);
    }
}
