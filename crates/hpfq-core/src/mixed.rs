//! Runtime-selectable scheduler: a [`SchedulerKind`] factory and a
//! [`MixedScheduler`] enum dispatching to every one-level policy in the
//! crate.
//!
//! Two uses:
//!
//! * experiment harnesses that sweep over policies pick them by kind;
//! * heterogeneous H-PFQ trees (e.g. WF²Q+ at the link level with FIFO
//!   leaves inside a best-effort class) build a
//!   `Hierarchy<MixedScheduler>` and choose a kind per node.

use hpfq_obs::snap::{SnapError, Value};

#[cfg(feature = "legacy-schedulers")]
use crate::drr::Drr;
#[cfg(feature = "legacy-schedulers")]
use crate::fifo::Fifo;
use crate::pifo::rank::{DrrRank, FifoRank, ScfqRank, SfqRank, Wf2qPlusRank, Wf2qRank, WfqRank};
use crate::pifo::PifoTree;
#[cfg(feature = "legacy-schedulers")]
use crate::scfq::Scfq;
use crate::scheduler::{NodeScheduler, SessionId};
#[cfg(feature = "legacy-schedulers")]
use crate::sfq::Sfq;
#[cfg(feature = "legacy-schedulers")]
use crate::wf2q::Wf2q;
#[cfg(feature = "legacy-schedulers")]
use crate::wf2q_plus::Wf2qPlus;
#[cfg(feature = "legacy-schedulers")]
use crate::wfq::Wfq;

/// Identifies a one-level scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// WF²Q+ (the paper's contribution).
    Wf2qPlus,
    /// WFQ / PGPS.
    Wfq,
    /// WF²Q.
    Wf2q,
    /// Self-Clocked Fair Queueing.
    Scfq,
    /// Start-time Fair Queueing.
    Sfq,
    /// Deficit Round Robin.
    Drr,
    /// FIFO.
    Fifo,
}

impl SchedulerKind {
    /// Every kind, in report order.
    pub const ALL: [SchedulerKind; 7] = [
        SchedulerKind::Wf2qPlus,
        SchedulerKind::Wfq,
        SchedulerKind::Wf2q,
        SchedulerKind::Scfq,
        SchedulerKind::Sfq,
        SchedulerKind::Drr,
        SchedulerKind::Fifo,
    ];

    /// Builds a scheduler of this kind for a server of `rate_bps`, backed
    /// by the PIFO substrate ([`PifoTree`] running this kind's rank
    /// program) — byte-identical to the hand-rolled implementation, which
    /// remains available via [`SchedulerKind::build_legacy`].
    pub fn build(self, rate_bps: f64) -> MixedScheduler {
        // One monomorphized `PifoTree<P>` per program: the driver inlines
        // each policy's rank hooks instead of matching a program enum on
        // every per-packet call.
        match self {
            SchedulerKind::Wf2qPlus => {
                MixedScheduler::PifoWf2qPlus(PifoTree::new(rate_bps, Wf2qPlusRank::new()))
            }
            SchedulerKind::Wfq => MixedScheduler::PifoWfq(PifoTree::new(rate_bps, WfqRank::new())),
            SchedulerKind::Wf2q => {
                MixedScheduler::PifoWf2q(PifoTree::new(rate_bps, Wf2qRank::new()))
            }
            SchedulerKind::Scfq => {
                MixedScheduler::PifoScfq(PifoTree::new(rate_bps, ScfqRank::new()))
            }
            SchedulerKind::Sfq => MixedScheduler::PifoSfq(PifoTree::new(rate_bps, SfqRank::new())),
            SchedulerKind::Drr => MixedScheduler::PifoDrr(PifoTree::new(rate_bps, DrrRank::new())),
            SchedulerKind::Fifo => {
                MixedScheduler::PifoFifo(PifoTree::new(rate_bps, FifoRank::new()))
            }
        }
    }

    /// Builds the hand-rolled (pre-PIFO) scheduler of this kind: the
    /// differential oracle for `tests/pifo_equivalence.rs` and the bench
    /// baseline. Kept for one release behind the `legacy-schedulers`
    /// feature.
    #[cfg(feature = "legacy-schedulers")]
    pub fn build_legacy(self, rate_bps: f64) -> MixedScheduler {
        match self {
            SchedulerKind::Wf2qPlus => MixedScheduler::Wf2qPlus(Wf2qPlus::new(rate_bps)),
            SchedulerKind::Wfq => MixedScheduler::Wfq(Wfq::new(rate_bps)),
            SchedulerKind::Wf2q => MixedScheduler::Wf2q(Wf2q::new(rate_bps)),
            SchedulerKind::Scfq => MixedScheduler::Scfq(Scfq::new(rate_bps)),
            SchedulerKind::Sfq => MixedScheduler::Sfq(Sfq::new(rate_bps)),
            SchedulerKind::Drr => MixedScheduler::Drr(Drr::new(rate_bps)),
            SchedulerKind::Fifo => MixedScheduler::Fifo(Fifo::new(rate_bps)),
        }
    }

    /// Short policy name ("wf2q+", "wfq", …).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Wf2qPlus => "wf2q+",
            SchedulerKind::Wfq => "wfq",
            SchedulerKind::Wf2q => "wf2q",
            SchedulerKind::Scfq => "scfq",
            SchedulerKind::Sfq => "sfq",
            SchedulerKind::Drr => "drr",
            SchedulerKind::Fifo => "fifo",
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "wf2q+" | "wf2qplus" | "wf2q_plus" => Ok(SchedulerKind::Wf2qPlus),
            "wfq" => Ok(SchedulerKind::Wfq),
            "wf2q" => Ok(SchedulerKind::Wf2q),
            "scfq" => Ok(SchedulerKind::Scfq),
            "sfq" => Ok(SchedulerKind::Sfq),
            "drr" => Ok(SchedulerKind::Drr),
            "fifo" => Ok(SchedulerKind::Fifo),
            other => Err(format!("unknown scheduler kind '{other}'")),
        }
    }
}

/// A one-level scheduler whose policy is chosen at runtime.
///
/// [`SchedulerKind::build`] always yields a `Pifo*` variant (one
/// monomorphized [`PifoTree`] per rank program); the hand-rolled variants
/// exist behind the `legacy-schedulers` feature (via
/// [`SchedulerKind::build_legacy`]) as the differential oracle.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum MixedScheduler {
    PifoWf2qPlus(PifoTree<Wf2qPlusRank>),
    PifoWfq(PifoTree<WfqRank>),
    PifoWf2q(PifoTree<Wf2qRank>),
    PifoScfq(PifoTree<ScfqRank>),
    PifoSfq(PifoTree<SfqRank>),
    PifoDrr(PifoTree<DrrRank>),
    PifoFifo(PifoTree<FifoRank>),
    #[cfg(feature = "legacy-schedulers")]
    Wf2qPlus(Wf2qPlus),
    #[cfg(feature = "legacy-schedulers")]
    Wfq(Wfq),
    #[cfg(feature = "legacy-schedulers")]
    Wf2q(Wf2q),
    #[cfg(feature = "legacy-schedulers")]
    Scfq(Scfq),
    #[cfg(feature = "legacy-schedulers")]
    Sfq(Sfq),
    #[cfg(feature = "legacy-schedulers")]
    Drr(Drr),
    #[cfg(feature = "legacy-schedulers")]
    Fifo(Fifo),
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            MixedScheduler::PifoWf2qPlus($inner) => $body,
            MixedScheduler::PifoWfq($inner) => $body,
            MixedScheduler::PifoWf2q($inner) => $body,
            MixedScheduler::PifoScfq($inner) => $body,
            MixedScheduler::PifoSfq($inner) => $body,
            MixedScheduler::PifoDrr($inner) => $body,
            MixedScheduler::PifoFifo($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Wf2qPlus($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Wfq($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Wf2q($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Scfq($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Sfq($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Drr($inner) => $body,
            #[cfg(feature = "legacy-schedulers")]
            MixedScheduler::Fifo($inner) => $body,
        }
    };
}

impl NodeScheduler for MixedScheduler {
    fn rate_bps(&self) -> f64 {
        dispatch!(self, s => s.rate_bps())
    }

    fn add_session(&mut self, phi: f64) -> SessionId {
        dispatch!(self, s => s.add_session(phi))
    }

    fn backlog(&mut self, id: SessionId, head_bits: f64, ref_now: Option<f64>) {
        dispatch!(self, s => s.backlog(id, head_bits, ref_now))
    }

    fn arrival_hint(&mut self, id: SessionId, bits: f64, ref_now: Option<f64>) {
        dispatch!(self, s => s.arrival_hint(id, bits, ref_now))
    }

    fn select_next(&mut self) -> Option<SessionId> {
        dispatch!(self, s => s.select_next())
    }

    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>) {
        dispatch!(self, s => s.requeue(id, next_head_bits))
    }

    fn backlogged(&self) -> usize {
        dispatch!(self, s => s.backlogged())
    }

    fn virtual_time(&self) -> f64 {
        dispatch!(self, s => s.virtual_time())
    }

    fn phi(&self, id: SessionId) -> f64 {
        dispatch!(self, s => s.phi(id))
    }

    fn tags(&self, id: SessionId) -> (f64, f64) {
        dispatch!(self, s => s.tags(id))
    }

    fn name(&self) -> &'static str {
        dispatch!(self, s => s.name())
    }

    fn set_is_root(&mut self, is_root: bool) {
        dispatch!(self, s => s.set_is_root(is_root))
    }

    fn save_state(&self) -> Value {
        Value::map(vec![
            ("kind", Value::Str(self.name().to_string())),
            ("state", dispatch!(self, s => s.save_state())),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let kind = state.get("kind")?.as_str()?;
        if kind != self.name() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "scheduler kind mismatch: snapshot '{kind}', configured '{}'",
                    self.name()
                ),
            });
        }
        dispatch!(self, s => s.load_state(state.get("state")?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_name_round_trip() {
        for kind in SchedulerKind::ALL {
            let sched = kind.build(1e6);
            assert_eq!(sched.name(), kind.name());
            assert_eq!(sched.rate_bps(), 1e6);
            assert_eq!(kind.name().parse::<SchedulerKind>().unwrap(), kind);
        }
    }

    #[cfg(feature = "legacy-schedulers")]
    #[test]
    fn legacy_build_and_name_round_trip() {
        for kind in SchedulerKind::ALL {
            let sched = kind.build_legacy(1e6);
            assert_eq!(sched.name(), kind.name());
            assert_eq!(sched.rate_bps(), 1e6);
        }
    }

    #[test]
    fn mixed_dispatch_behaves_like_inner() {
        let mut m = SchedulerKind::Wf2qPlus.build(1.0);
        let a = m.add_session(0.5);
        let b = m.add_session(0.5);
        m.backlog(a, 1.0, None);
        m.backlog(b, 1.0, None);
        let first = m.select_next().unwrap();
        m.requeue(first, Some(1.0));
        let second = m.select_next().unwrap();
        assert_ne!(first, second, "equal weights must alternate under SEFF");
        m.requeue(second, None);
    }
}
