//! WF²Q+ — the paper's contribution (§3.4).
//!
//! WF²Q+ uses the SEFF policy (Smallest Eligible virtual Finish time First)
//! driven by the low-complexity virtual time function of eq. (27):
//!
//! ```text
//! V(t + τ) = max( V(t) + τ,  min_{i ∈ B̂(t)} S_i )
//! ```
//!
//! Operationally (RESTART-NODE lines 12–13 of the paper's pseudocode), each
//! dispatch of an `L`-bit packet advances
//!
//! ```text
//! V ← max(V, Smin) + L / r      and      T ← T + L / r
//! ```
//!
//! where `Smin` is the smallest start tag among backlogged sessions and `r`
//! the server rate. Both the `max`/`min` computation and the SEFF selection
//! are O(log N) via an [`EligibleSet`], giving the three properties of
//! Theorem 4: work conservation, per-session B-WFI
//! `α_i = L_i,max + (L_max − L_i,max)·r_i/r`, and the GPS-tight delay bound
//! `σ_i/r_i + L_max/r` for a `(σ_i, r_i)` leaky-bucket session.

use hpfq_obs::snap::{SnapError, Value};

use crate::eligible::{dual_heap::DualHeapEligibleSet, EligibleSet};
use crate::scheduler::{
    load_opt_id, load_sessions, save_opt_id, save_sessions, NodeScheduler, SessionId, SessionState,
};

/// The WF²Q+ scheduler, generic over the eligible-set structure (defaulting
/// to the production dual-heap; see [`crate::TreapEligibleSet`] for the
/// alternative used in the ablation benchmark).
#[derive(Debug, Clone)]
pub struct Wf2qPlus<E: EligibleSet = DualHeapEligibleSet> {
    rate: f64,
    sessions: Vec<SessionState>,
    set: E,
    /// Virtual time `V` of eq. (27), in reference-time seconds.
    v: f64,
    /// Reference time `T = W(0,t)/r`, advanced by `L/r` per dispatch.
    t: f64,
    in_service: Option<SessionId>,
    backlogged: usize,
}

impl Wf2qPlus<DualHeapEligibleSet> {
    /// Creates a WF²Q+ server of the given rate using the dual-heap
    /// eligible set.
    pub fn new(rate_bps: f64) -> Self {
        Self::with_set(rate_bps, DualHeapEligibleSet::new())
    }
}

impl<E: EligibleSet> Wf2qPlus<E> {
    /// Creates a WF²Q+ server of the given rate over a caller-provided
    /// eligible-set structure.
    pub fn with_set(rate_bps: f64, set: E) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "invalid rate {rate_bps}"
        );
        Wf2qPlus {
            rate: rate_bps,
            sessions: Vec::new(),
            set,
            v: 0.0,
            t: 0.0,
            in_service: None,
            backlogged: 0,
        }
    }

    /// Current reference time (served work normalized by the rate).
    pub fn reference_time(&self) -> f64 {
        self.t
    }
}

impl<E: EligibleSet> NodeScheduler for Wf2qPlus<E> {
    fn rate_bps(&self) -> f64 {
        self.rate
    }

    fn add_session(&mut self, phi: f64) -> SessionId {
        self.sessions.push(SessionState::new(phi, self.rate));
        SessionId(self.sessions.len() - 1)
    }

    fn backlog(&mut self, id: SessionId, head_bits: f64, ref_now: Option<f64>) {
        // Eq. (27): V(t+tau) >= V(t) + tau. At dispatches V is advanced by
        // L/r (pre-advanced to the packet's completion), so a mid-packet
        // arrival's real reference time never exceeds the stored V;
        // the max() below is a no-op at the root and for internal nodes,
        // but implements the formula exactly.
        let v = match ref_now {
            Some(t) => self.v + (t - self.t).max(0.0),
            None => self.v,
        };
        let s = &mut self.sessions[id.0];
        debug_assert!(!s.backlogged, "backlog() on a backlogged session");
        s.stamp_new_backlog(v, head_bits);
        self.set.insert(id, s.start, s.finish);
        self.backlogged += 1;
    }

    fn select_next(&mut self) -> Option<SessionId> {
        debug_assert!(
            self.in_service.is_none(),
            "select_next() while a session is in service"
        );
        // Eligibility threshold max(V, Smin) — eq. (27)'s max-over-min.
        let thr = self.set.eligibility_threshold(self.v)?;
        let id = self
            .set
            .pop_min_finish(thr)
            // lint:allow(L002): thr = max(V, Smin) >= Smin admits that session
            .expect("max(V, Smin) always admits at least one session");
        let l = self.sessions[id.0].head_bits;
        // RESTART-NODE lines 12–13.
        self.v = thr + l / self.rate;
        self.t += l / self.rate;
        self.in_service = Some(id);
        Some(id)
    }

    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>) {
        debug_assert_eq!(
            self.in_service,
            Some(id),
            "requeue() must match the in-service session"
        );
        self.in_service = None;
        match next_head_bits {
            Some(bits) => {
                let s = &mut self.sessions[id.0];
                s.stamp_continuation(bits);
                self.set.insert(id, s.start, s.finish);
            }
            None => {
                self.sessions[id.0].backlogged = false;
                self.backlogged -= 1;
                if self.backlogged == 0 {
                    // Busy period over: restart the virtual clock.
                    self.v = 0.0;
                    self.t = 0.0;
                    self.set.clear();
                    for s in &mut self.sessions {
                        s.reset();
                    }
                }
            }
        }
    }

    fn backlogged(&self) -> usize {
        self.backlogged
    }

    fn virtual_time(&self) -> f64 {
        self.v
    }

    fn phi(&self, id: SessionId) -> f64 {
        self.sessions[id.0].phi
    }

    fn tags(&self, id: SessionId) -> (f64, f64) {
        let s = &self.sessions[id.0];
        (s.start, s.finish)
    }

    fn name(&self) -> &'static str {
        "wf2q+"
    }

    fn save_state(&self) -> Value {
        // The eligible set is not serialized: its membership is exactly the
        // backlogged, not-in-service sessions, and pop order is a pure
        // function of membership (lazy deletion inside the structure is
        // caching, not state), so load_state rebuilds it.
        Value::map(vec![
            ("rate", Value::F64(self.rate)),
            ("v", Value::F64(self.v)),
            ("t", Value::F64(self.t)),
            ("in_service", save_opt_id(self.in_service)),
            ("sessions", save_sessions(&self.sessions)),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let rate = state.get("rate")?.as_f64()?;
        if rate.to_bits() != self.rate.to_bits() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "wf2q+ rate mismatch: snapshot {rate}, configured {}",
                    self.rate
                ),
            });
        }
        self.sessions = load_sessions(state.get("sessions")?)?;
        self.v = state.get("v")?.as_f64()?;
        self.t = state.get("t")?.as_f64()?;
        self.in_service = load_opt_id(state.get("in_service")?)?;
        self.backlogged = self.sessions.iter().filter(|s| s.backlogged).count();
        self.set.clear();
        for (i, s) in self.sessions.iter().enumerate() {
            let id = SessionId(i);
            if s.backlogged && self.in_service != Some(id) {
                self.set.insert(id, s.start, s.finish);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a standalone server over a fully backlogged set and returns
    /// the dispatch order; helper shared by the scheduler unit tests.
    fn drain<S: NodeScheduler>(sched: &mut S, packets_per_session: &mut [usize]) -> Vec<usize> {
        let mut order = Vec::new();
        while let Some(id) = sched.select_next() {
            order.push(id.0);
            packets_per_session[id.0] -= 1;
            let next = if packets_per_session[id.0] > 0 {
                Some(1.0)
            } else {
                None
            };
            sched.requeue(id, next);
        }
        order
    }

    /// The Fig. 2 scenario: 11 sessions, unit packets, unit rate; session 0
    /// has φ=0.5 and 11 packets, sessions 1..=10 have φ=0.05 and 1 packet
    /// each, all arriving at t=0. WF²Q must interleave: session 0 never
    /// gets two back-to-back transmissions until the others are spaced out.
    #[test]
    fn fig2_interleaving() {
        let mut s = Wf2qPlus::new(1.0);
        let s0 = s.add_session(0.5);
        let mut others = Vec::new();
        for _ in 0..10 {
            others.push(s.add_session(0.05));
        }
        s.backlog(s0, 1.0, Some(0.0));
        for &o in &others {
            s.backlog(o, 1.0, Some(0.0));
        }
        let mut remaining = vec![11, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let order = drain(&mut s, &mut remaining);
        assert_eq!(order.len(), 21);
        // Paper Fig. 2 bottom timeline: session 1 (our id 0) transmits at
        // slots 0,2,4,...,18 and its 11th packet at slot 20.
        for (slot, &id) in order.iter().enumerate() {
            if slot % 2 == 0 {
                assert_eq!(id, 0, "slot {slot} should serve session 0");
            } else {
                assert_ne!(id, 0, "slot {slot} should serve a small session");
            }
        }
    }

    /// A packet arriving to an idle session while others are backlogged is
    /// stamped with at least the minimum start among existing sessions
    /// (the "newly backlogged session" property of eq. 27).
    #[test]
    fn new_backlog_not_stamped_in_the_past() {
        let mut s = Wf2qPlus::new(1.0);
        let a = s.add_session(0.5);
        let b = s.add_session(0.5);
        s.backlog(a, 1.0, None);
        let sel = s.select_next().unwrap();
        assert_eq!(sel, a);
        s.requeue(a, Some(1.0));
        // V advanced to 1.0; b arrives now.
        s.backlog(b, 1.0, None);
        let (start_b, finish_b) = s.tags(b);
        assert!(start_b >= 1.0, "start {start_b} must be >= V");
        assert_eq!(finish_b, start_b + 2.0);
    }

    #[test]
    fn work_conserving_and_resets_after_drain() {
        let mut s = Wf2qPlus::new(2.0);
        let a = s.add_session(0.25);
        s.backlog(a, 2.0, None);
        assert_eq!(s.select_next(), Some(a));
        s.requeue(a, None);
        assert_eq!(s.backlogged(), 0);
        assert_eq!(s.virtual_time(), 0.0);
        assert_eq!(s.select_next(), None);
        // A new busy period starts from a clean clock.
        s.backlog(a, 2.0, None);
        assert_eq!(s.tags(a).0, 0.0);
    }

    /// Weighted bandwidth split over a long backlog: shares 3:1.
    #[test]
    fn long_run_weighted_share() {
        let mut s = Wf2qPlus::new(1.0);
        let a = s.add_session(0.75);
        let b = s.add_session(0.25);
        s.backlog(a, 1.0, None);
        s.backlog(b, 1.0, None);
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            let id = s.select_next().unwrap();
            counts[id.0] += 1;
            s.requeue(id, Some(1.0));
        }
        assert!((counts[0] as f64 - 300.0).abs() <= 1.0, "{counts:?}");
        assert!((counts[1] as f64 - 100.0).abs() <= 1.0, "{counts:?}");
    }
}
