//! A small lazy-deletion min-heap over `(primary tag, secondary tag,
//! session)` triples, shared by the single-heap schedulers (WFQ by finish
//! tag, SCFQ by finish tag, SFQ by start tag).
//!
//! Entries are invalidated by bumping a per-session generation counter;
//! stale tops are discarded on pop/peek. Each backlog episode pushes exactly
//! one entry, so the heap size is bounded by the number of backlog episodes
//! in flight and every operation is O(log N) amortized.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::scheduler::SessionId;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    primary: f64,
    secondary: f64,
    id: SessionId,
    generation: u64,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted for min-heap behaviour on (primary, secondary, id).
        (other.primary, other.secondary, other.id.0)
            .partial_cmp(&(self.primary, self.secondary, self.id.0))
            // lint:allow(L002): callers only push finite tags
            .expect("tags must not be NaN")
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lazy min-heap of backlogged sessions ordered by a tag pair.
#[derive(Debug, Clone, Default)]
pub(crate) struct TagHeap {
    heap: BinaryHeap<Entry>,
    generations: Vec<u64>,
    live: usize,
}

impl TagHeap {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, id: SessionId) {
        if id.0 >= self.generations.len() {
            self.generations.resize(id.0 + 1, 0);
        }
    }

    /// Adds a session keyed by `(primary, secondary)`. The session must not
    /// already be present.
    pub(crate) fn push(&mut self, id: SessionId, primary: f64, secondary: f64) {
        debug_assert!(primary.is_finite() && secondary.is_finite());
        self.ensure(id);
        self.generations[id.0] += 1;
        self.heap.push(Entry {
            primary,
            secondary,
            id,
            generation: self.generations[id.0],
        });
        self.live += 1;
    }

    /// Removes and returns the minimum `(primary, secondary, id)` member
    /// together with its primary tag.
    pub(crate) fn pop_min(&mut self) -> Option<(SessionId, f64, f64)> {
        while let Some(top) = self.heap.pop() {
            if self.generations[top.id.0] == top.generation {
                self.generations[top.id.0] += 1;
                self.live -= 1;
                return Some((top.id, top.primary, top.secondary));
            }
        }
        None
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn clear(&mut self) {
        self.heap.clear();
        for g in &mut self.generations {
            *g += 1;
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_order_with_ties_by_secondary_then_id() {
        let mut h = TagHeap::new();
        h.push(SessionId(2), 1.0, 5.0);
        h.push(SessionId(0), 1.0, 5.0);
        h.push(SessionId(1), 1.0, 4.0);
        h.push(SessionId(3), 0.5, 9.0);
        assert_eq!(h.pop_min().unwrap().0, SessionId(3));
        assert_eq!(h.pop_min().unwrap().0, SessionId(1));
        assert_eq!(h.pop_min().unwrap().0, SessionId(0));
        assert_eq!(h.pop_min().unwrap().0, SessionId(2));
        assert_eq!(h.pop_min(), None);
    }

    #[test]
    fn clear_invalidates() {
        let mut h = TagHeap::new();
        h.push(SessionId(0), 1.0, 1.0);
        h.clear();
        assert_eq!(h.len(), 0);
        assert_eq!(h.pop_min(), None);
        h.push(SessionId(0), 2.0, 2.0);
        assert_eq!(h.pop_min().unwrap().1, 2.0);
    }
}
