//! # hpfq-core — Packet Fair Queueing schedulers and the H-PFQ hierarchy
//!
//! This crate implements the scheduling algorithms of *Hierarchical Packet
//! Fair Queueing Algorithms* (Bennett & Zhang, SIGCOMM 1996):
//!
//! * [`Wf2qPlus`] — the paper's contribution: the WF²Q+ algorithm, a
//!   Smallest-Eligible-virtual-Finish-time-First (SEFF) scheduler driven by
//!   the low-complexity virtual time function of eq. (27), with O(log N)
//!   per-packet cost.
//! * [`Wfq`] and [`Wf2q`] — the classic baselines that track the exact GPS
//!   fluid virtual time (O(N) worst case, see [`GpsClock`]).
//! * [`Scfq`], [`Sfq`], [`Drr`], [`Fifo`] — the related low-complexity
//!   schedulers the paper compares against in its related-work discussion.
//! * [`Hierarchy`] — the H-PFQ construction of §4: a tree of one-level
//!   schedulers implementing the paper's ARRIVE / RESTART-NODE / RESET-PATH
//!   pseudocode, generic over the node scheduler (H-WFQ, H-SCFQ, H-WF²Q+, …).
//!
//! All seven policies run on one substrate: [`PifoTree`], a programmable
//! scheduler in the PIFO model of Sivaraman et al. (SIGCOMM 2016), drives
//! any [`RankProgram`] over the SoA dual-heap priority structure —
//! [`SchedulerKind::build`] constructs PIFO-backed nodes by default. The
//! hand-rolled per-policy implementations named above remain behind the
//! `legacy-schedulers` feature (on by default for one release) as the
//! differential oracle proving each rank program byte-identical; see the
//! [`pifo`] module docs.
//!
//! ## Conventions
//!
//! * Real (simulation) time and *reference time* (§4.1 of the paper,
//!   `T_n(t) = W_n(0,t) / r_n`) are `f64` seconds.
//! * Virtual time is `f64` in reference-time seconds; a session with
//!   guaranteed rate `r_i` advances its virtual finish tag by `L / r_i` per
//!   packet of `L` bits.
//! * Rates are bits/second; packet lengths are bytes on the wire and bits in
//!   the scheduler maths.
//!
//! A one-level (standalone) server is a depth-1 [`Hierarchy`]; the root's
//! reference time coincides with real time during busy periods (paper
//! eq. 32).

#![forbid(unsafe_code)]
// Unsafe audit (PR 2): zero `unsafe` blocks exist anywhere in the
// workspace and `forbid(unsafe_code)` keeps it that way; the lint below
// is belt-and-braces so that if the forbid is ever relaxed, any unsafe
// fn body still requires explicit `unsafe {}` blocks.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

#[cfg(feature = "legacy-schedulers")]
pub mod drr;
pub mod eligible;
pub mod error;
#[cfg(feature = "legacy-schedulers")]
pub mod fifo;
pub mod gps_clock;
pub mod hierarchy;
pub mod mixed;
pub mod packet;
pub mod pifo;
#[cfg(feature = "legacy-schedulers")]
pub mod scfq;
pub mod scheduler;
#[cfg(feature = "legacy-schedulers")]
pub mod sfq;
#[cfg(feature = "legacy-schedulers")]
mod tag_heap;
#[cfg(feature = "legacy-schedulers")]
pub mod wf2q;
#[cfg(feature = "legacy-schedulers")]
pub mod wf2q_plus;
#[cfg(feature = "legacy-schedulers")]
pub mod wfq;

/// Canonical virtual-time comparison helpers (single `EPS`, tolerance-aware
/// and exact comparisons). Implemented in `hpfq-obs` — the root of the
/// dependency graph, so the observers can share the same tolerance — and
/// re-exported here as this crate's approved comparison module (`hpfq-lint`
/// rules L001/L003 enforce its use).
pub use hpfq_obs::vtime;

#[cfg(feature = "legacy-schedulers")]
pub use drr::Drr;
pub use eligible::{
    calendar::CalendarEligibleSet, dual_heap::DualHeapEligibleSet, treap::TreapEligibleSet,
    EligibleSet, PifoBackend,
};
pub use error::HpfqError;
#[cfg(feature = "legacy-schedulers")]
pub use fifo::Fifo;
pub use gps_clock::GpsClock;
pub use hierarchy::{Hierarchy, HierarchyBuilder, NodeId};
pub use mixed::{EligibleBackend, MixedScheduler, SchedulerKind};
pub use packet::Packet;
pub use pifo::{Admission, PifoTree, Rank, RankProgram, Threshold};
#[cfg(feature = "legacy-schedulers")]
pub use scfq::Scfq;
pub use scheduler::{NodeScheduler, SessionId, SessionState, SessionTable};
#[cfg(feature = "legacy-schedulers")]
pub use sfq::Sfq;
#[cfg(feature = "legacy-schedulers")]
pub use wf2q::Wf2q;
#[cfg(feature = "legacy-schedulers")]
pub use wf2q_plus::Wf2qPlus;
#[cfg(feature = "legacy-schedulers")]
pub use wfq::Wfq;

/// Converts a packet length in bytes to bits.
#[inline]
pub fn bits(len_bytes: u32) -> f64 {
    f64::from(len_bytes) * 8.0
}
