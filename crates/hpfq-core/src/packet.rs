//! The packet type shared by the schedulers, the hierarchy, and the
//! discrete-event simulator.

use hpfq_obs::snap::{SnapError, Value};

use crate::error::HpfqError;

/// Largest packet length the admission path accepts, in bytes (16 MiB —
/// far above any real MTU, small enough that `len * 8` stays exact in
/// `f64` and a single corrupted length cannot wedge the link for hours).
pub const MAX_PACKET_BYTES: u32 = 1 << 24;

/// A network packet as seen by the scheduling machinery.
///
/// The scheduler only ever inspects `len_bytes`; the remaining fields are
/// carried through so that measurement code can attribute service to flows
/// and compute per-packet delays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Globally unique identifier, assigned by the traffic source.
    pub id: u64,
    /// Identifier of the flow (user-level session) the packet belongs to.
    pub flow: u32,
    /// Length on the wire in bytes.
    pub len_bytes: u32,
    /// Creation time at the source, in simulation seconds.
    pub birth: f64,
    /// Arrival time at the server under measurement, in simulation seconds.
    /// Set by the simulator when the packet is enqueued.
    pub arrival: f64,
}

impl Packet {
    /// Creates a packet born (and, until re-stamped, arriving) at `t`.
    pub fn new(id: u64, flow: u32, len_bytes: u32, t: f64) -> Self {
        debug_assert!(len_bytes > 0, "zero-length packet");
        Packet {
            id,
            flow,
            len_bytes,
            birth: t,
            arrival: t,
        }
    }

    /// Length of the packet in bits.
    #[inline]
    pub fn bits(&self) -> f64 {
        f64::from(self.len_bytes) * 8.0
    }

    /// Transmission time of this packet on a link of `rate_bps` bits/s.
    #[inline]
    pub fn tx_time(&self, rate_bps: f64) -> f64 {
        self.bits() / rate_bps
    }

    /// Admission validation: rejects the malformed packets an adversarial
    /// or corrupted source can produce. A packet is valid iff its length
    /// is in `1..=`[`MAX_PACKET_BYTES`] and both timestamps are finite.
    ///
    /// The scheduler maths divides by packet length and accumulates
    /// timestamps into virtual clocks, so any of these faults would poison
    /// every tag downstream — they must be stopped at the edge.
    pub fn validate(&self) -> Result<(), HpfqError> {
        let fail = |reason| HpfqError::InvalidPacket {
            id: self.id,
            flow: self.flow,
            reason,
        };
        if self.len_bytes == 0 {
            return Err(fail("zero length"));
        }
        if self.len_bytes > MAX_PACKET_BYTES {
            return Err(fail("length exceeds MAX_PACKET_BYTES"));
        }
        if !self.arrival.is_finite() {
            return Err(fail("non-finite arrival time"));
        }
        if !self.birth.is_finite() {
            return Err(fail("non-finite birth time"));
        }
        Ok(())
    }

    /// Serializes for an epoch checkpoint, as a fixed-arity list
    /// `[id, flow, len_bytes, birth, arrival]` — packets dominate snapshot
    /// volume, so the compact form matters.
    pub fn save(&self) -> Value {
        Value::List(vec![
            Value::U64(self.id),
            Value::U64(u64::from(self.flow)),
            Value::U64(u64::from(self.len_bytes)),
            Value::F64(self.birth),
            Value::F64(self.arrival),
        ])
    }

    /// Restores a packet saved by [`Packet::save`].
    pub fn load(v: &Value) -> Result<Packet, SnapError> {
        let items = v.items()?;
        if items.len() != 5 {
            return Err(SnapError {
                at: 0,
                what: format!("packet record has {} fields, expected 5", items.len()),
            });
        }
        Ok(Packet {
            id: items[0].as_u64()?,
            flow: items[1].as_u32()?,
            len_bytes: items[2].as_u32()?,
            birth: items[3].as_f64()?,
            arrival: items[4].as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_adversarial_fields() {
        let ok = Packet::new(1, 7, 1500, 0.25);
        assert!(ok.validate().is_ok());
        let mut p = ok;
        p.len_bytes = 0;
        assert!(matches!(
            p.validate(),
            Err(HpfqError::InvalidPacket {
                reason: "zero length",
                ..
            })
        ));
        p.len_bytes = MAX_PACKET_BYTES + 1;
        assert!(p.validate().is_err());
        p = ok;
        p.arrival = f64::NAN;
        assert!(p.validate().is_err());
        p = ok;
        p.birth = f64::INFINITY;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bits_and_tx_time() {
        let p = Packet::new(1, 7, 1500, 0.25);
        assert_eq!(p.bits(), 12_000.0);
        assert!((p.tx_time(1_000_000.0) - 0.012).abs() < 1e-12);
        assert_eq!(p.flow, 7);
        assert_eq!(p.arrival, 0.25);
    }
}
