//! The packet type shared by the schedulers, the hierarchy, and the
//! discrete-event simulator.

/// A network packet as seen by the scheduling machinery.
///
/// The scheduler only ever inspects `len_bytes`; the remaining fields are
/// carried through so that measurement code can attribute service to flows
/// and compute per-packet delays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Globally unique identifier, assigned by the traffic source.
    pub id: u64,
    /// Identifier of the flow (user-level session) the packet belongs to.
    pub flow: u32,
    /// Length on the wire in bytes.
    pub len_bytes: u32,
    /// Creation time at the source, in simulation seconds.
    pub birth: f64,
    /// Arrival time at the server under measurement, in simulation seconds.
    /// Set by the simulator when the packet is enqueued.
    pub arrival: f64,
}

impl Packet {
    /// Creates a packet born (and, until re-stamped, arriving) at `t`.
    pub fn new(id: u64, flow: u32, len_bytes: u32, t: f64) -> Self {
        debug_assert!(len_bytes > 0, "zero-length packet");
        Packet {
            id,
            flow,
            len_bytes,
            birth: t,
            arrival: t,
        }
    }

    /// Length of the packet in bits.
    #[inline]
    pub fn bits(&self) -> f64 {
        f64::from(self.len_bytes) * 8.0
    }

    /// Transmission time of this packet on a link of `rate_bps` bits/s.
    #[inline]
    pub fn tx_time(&self, rate_bps: f64) -> f64 {
        self.bits() / rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_tx_time() {
        let p = Packet::new(1, 7, 1500, 0.25);
        assert_eq!(p.bits(), 12_000.0);
        assert!((p.tx_time(1_000_000.0) - 0.012).abs() < 1e-12);
        assert_eq!(p.flow, 7);
        assert_eq!(p.arrival, 0.25);
    }
}
