//! WFQ — Weighted Fair Queueing / Packetized GPS (paper §3.1).
//!
//! WFQ applies the SFF policy ("Smallest virtual Finish time First"): when
//! the server picks the next packet it chooses, among **all** queued heads,
//! the one with the smallest GPS virtual finish tag — with no eligibility
//! check. Its delay bound is within one packet time of GPS, but its
//! Worst-case Fair Index grows linearly in the number of sessions (the
//! Fig. 2 burst), which is what makes H-WFQ's hierarchical delay bounds
//! loose (Theorem 2).
//!
//! Virtual time comes from the exact GPS emulation in [`GpsClock`] — O(N)
//! worst case per advance, as the paper notes.

use std::collections::VecDeque;

use hpfq_obs::snap::{SnapError, Value};

use crate::gps_clock::GpsClock;
use crate::scheduler::{
    load_opt_id, load_pending, load_sessions, save_opt_id, save_pending, save_sessions,
    NodeScheduler, SessionId, SessionState,
};
use crate::tag_heap::TagHeap;

/// The WFQ (PGPS) scheduler.
#[derive(Debug, Clone)]
pub struct Wfq {
    rate: f64,
    sessions: Vec<SessionState>,
    clock: GpsClock,
    /// Backlogged sessions keyed by finish tag (ties by session index).
    heap: TagHeap,
    /// Per-session virtual start tags of queued-behind-the-head packets
    /// announced via `arrival_hint`, in arrival order: each is the exact
    /// `max(F_prev, V(a_k))` of eq. (28), consumed when the packet becomes
    /// the head.
    pending: Vec<VecDeque<f64>>,
    /// Reference time, advanced by `L/r` per dispatch.
    t: f64,
    in_service: Option<SessionId>,
    backlogged: usize,
}

impl Wfq {
    /// Creates a WFQ server of the given rate.
    pub fn new(rate_bps: f64) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "invalid rate {rate_bps}"
        );
        Wfq {
            rate: rate_bps,
            sessions: Vec::new(),
            clock: GpsClock::new(),
            heap: TagHeap::new(),
            pending: Vec::new(),
            t: 0.0,
            in_service: None,
            backlogged: 0,
        }
    }

    /// Current reference time.
    pub fn reference_time(&self) -> f64 {
        self.t
    }

    /// Largest number of GPS fluid departures a single virtual-clock
    /// advance has processed (see [`GpsClock::worst_sweep`]).
    pub fn worst_clock_sweep(&self) -> usize {
        self.clock.worst_sweep()
    }

    fn reset(&mut self) {
        self.t = 0.0;
        self.clock.reset();
        self.heap.clear();
        for p in &mut self.pending {
            debug_assert!(p.is_empty(), "pending stamps at busy-period end");
            p.clear();
        }
        for s in &mut self.sessions {
            s.reset();
        }
    }
}

impl NodeScheduler for Wfq {
    fn rate_bps(&self) -> f64 {
        self.rate
    }

    fn add_session(&mut self, phi: f64) -> SessionId {
        self.sessions.push(SessionState::new(phi, self.rate));
        self.pending.push(VecDeque::new());
        let gps_id = self.clock.add_session(phi);
        debug_assert_eq!(gps_id, self.sessions.len() - 1);
        SessionId(self.sessions.len() - 1)
    }

    fn backlog(&mut self, id: SessionId, head_bits: f64, ref_now: Option<f64>) {
        let v = self.clock.advance_to(ref_now.unwrap_or(self.t));
        let s = &mut self.sessions[id.0];
        debug_assert!(!s.backlogged, "backlog() on a backlogged session");
        debug_assert!(self.pending[id.0].is_empty());
        s.stamp_new_backlog(v, head_bits);
        self.clock.on_stamp(id.0, s.finish);
        // Finish-tag ties are broken by session index (secondary tag held
        // at 0), matching the paper's Fig. 2 timeline where session 1's
        // 10th packet (GPS finish 20) precedes the small sessions' packets
        // (also finish 20).
        self.heap.push(id, s.finish, 0.0);
        self.backlogged += 1;
    }

    fn arrival_hint(&mut self, id: SessionId, bits: f64, ref_now: Option<f64>) {
        let _ = self.clock.advance_to(ref_now.unwrap_or(self.t));
        let s = &self.sessions[id.0];
        debug_assert!(s.backlogged, "arrival_hint() on an idle session");
        let base = self.clock.extend_backlog(id.0, bits * s.inv_rate);
        self.pending[id.0].push_back(base);
    }

    fn select_next(&mut self) -> Option<SessionId> {
        debug_assert!(self.in_service.is_none());
        let (id, _, _) = self.heap.pop_min()?;
        let l = self.sessions[id.0].head_bits;
        self.t += l / self.rate;
        self.in_service = Some(id);
        Some(id)
    }

    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>) {
        debug_assert_eq!(self.in_service, Some(id));
        self.in_service = None;
        match next_head_bits {
            Some(bits) => {
                // If the next head was announced at its arrival, its exact
                // eq. (28) start base `max(F_prev, V(a_k))` was recorded
                // then; otherwise fall back to the continuation rule S = F.
                let base = self.pending[id.0].pop_front();
                let s = &mut self.sessions[id.0];
                match base {
                    Some(b) => {
                        s.start = s.finish.max(b);
                        s.finish = s.start + bits * s.inv_rate;
                        s.head_bits = bits;
                    }
                    None => s.stamp_continuation(bits),
                }
                self.clock.on_stamp(id.0, s.finish);
                self.heap.push(id, s.finish, 0.0);
            }
            None => {
                self.sessions[id.0].backlogged = false;
                self.backlogged -= 1;
                if self.backlogged == 0 {
                    self.reset();
                }
            }
        }
    }

    fn backlogged(&self) -> usize {
        self.backlogged
    }

    fn virtual_time(&self) -> f64 {
        self.clock.virtual_time()
    }

    fn phi(&self, id: SessionId) -> f64 {
        self.sessions[id.0].phi
    }

    fn tags(&self, id: SessionId) -> (f64, f64) {
        let s = &self.sessions[id.0];
        (s.start, s.finish)
    }

    fn name(&self) -> &'static str {
        "wfq"
    }

    fn save_state(&self) -> Value {
        // The tag heap is rebuilt on load from the session table (membership
        // = backlogged and not in service, keys = the saved finish tags).
        Value::map(vec![
            ("rate", Value::F64(self.rate)),
            ("t", Value::F64(self.t)),
            ("in_service", save_opt_id(self.in_service)),
            ("sessions", save_sessions(&self.sessions)),
            ("pending", save_pending(&self.pending)),
            ("clock", self.clock.save_state()),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let rate = state.get("rate")?.as_f64()?;
        if rate.to_bits() != self.rate.to_bits() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "wfq rate mismatch: snapshot {rate}, configured {}",
                    self.rate
                ),
            });
        }
        self.sessions = load_sessions(state.get("sessions")?)?;
        self.pending = load_pending(state.get("pending")?, self.sessions.len())?;
        self.clock.load_state(state.get("clock")?)?;
        self.t = state.get("t")?.as_f64()?;
        self.in_service = load_opt_id(state.get("in_service")?)?;
        self.backlogged = self.sessions.iter().filter(|s| s.backlogged).count();
        self.heap.clear();
        for (i, s) in self.sessions.iter().enumerate() {
            let id = SessionId(i);
            if s.backlogged && self.in_service != Some(id) {
                self.heap.push(id, s.finish, 0.0);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 2 pathology: WFQ serves session 1's first 10 packets
    /// back-to-back, then the 10 small sessions, then the 11th packet.
    #[test]
    fn fig2_burst() {
        let mut s = Wfq::new(1.0);
        let s0 = s.add_session(0.5);
        for _ in 0..10 {
            s.add_session(0.05);
        }
        s.backlog(s0, 1.0, Some(0.0));
        for i in 1..=10 {
            s.backlog(SessionId(i), 1.0, Some(0.0));
        }
        let mut remaining = vec![11usize, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let mut order = Vec::new();
        while let Some(id) = s.select_next() {
            order.push(id.0);
            remaining[id.0] -= 1;
            s.requeue(id, if remaining[id.0] > 0 { Some(1.0) } else { None });
        }
        // First 10 dispatches are all session 0: finish tags 2,4,...,20;
        // the 10th ties with the small sessions' tags (20) and goes to the
        // lower session index, exactly as in the paper's Fig. 2 timeline.
        assert_eq!(&order[..10], &[0; 10]);
        // Then the ten small sessions.
        let mut mid: Vec<usize> = order[10..20].to_vec();
        mid.sort_unstable();
        assert_eq!(mid, (1..=10).collect::<Vec<_>>());
        // And finally session 0's 11th packet.
        assert_eq!(order[20], 0);
    }

    #[test]
    fn equal_weights_round_robin_like() {
        let mut s = Wfq::new(1.0);
        let a = s.add_session(0.5);
        let b = s.add_session(0.5);
        s.backlog(a, 1.0, None);
        s.backlog(b, 1.0, None);
        let mut counts = [0usize; 2];
        for _ in 0..100 {
            let id = s.select_next().unwrap();
            counts[id.0] += 1;
            s.requeue(id, Some(1.0));
        }
        assert_eq!(counts[0], 50);
        assert_eq!(counts[1], 50);
    }
}
