//! FIFO — the null scheduler baseline.
//!
//! Provides no isolation whatsoever: heads are served in the order their
//! backlog episodes began. Because a node scheduler only sees one head per
//! logical queue (paper §4.2), this is exact FIFO for a single-session node
//! and head-offer-order FIFO (a round-robin-flavoured approximation of true
//! arrival-order FIFO) across multiple sessions; the distinction is
//! irrelevant for its role as the "no fairness" baseline in experiments.

use std::collections::VecDeque;

use hpfq_obs::snap::{SnapError, Value};

use crate::scheduler::{load_opt_id, save_opt_id, NodeScheduler, SessionId};

#[derive(Debug, Clone)]
struct FifoSession {
    phi: f64,
    head_bits: f64,
    backlogged: bool,
}

/// The FIFO scheduler.
#[derive(Debug, Clone)]
pub struct Fifo {
    rate: f64,
    sessions: Vec<FifoSession>,
    order: VecDeque<SessionId>,
    t: f64,
    in_service: Option<SessionId>,
    backlogged: usize,
}

impl Fifo {
    /// Creates a FIFO server of the given rate.
    pub fn new(rate_bps: f64) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "invalid rate {rate_bps}"
        );
        Fifo {
            rate: rate_bps,
            sessions: Vec::new(),
            order: VecDeque::new(),
            t: 0.0,
            in_service: None,
            backlogged: 0,
        }
    }
}

impl NodeScheduler for Fifo {
    fn rate_bps(&self) -> f64 {
        self.rate
    }

    fn add_session(&mut self, phi: f64) -> SessionId {
        assert!(phi.is_finite() && phi > 0.0, "invalid share {phi}");
        self.sessions.push(FifoSession {
            phi,
            head_bits: 0.0,
            backlogged: false,
        });
        SessionId(self.sessions.len() - 1)
    }

    fn backlog(&mut self, id: SessionId, head_bits: f64, _ref_now: Option<f64>) {
        let s = &mut self.sessions[id.0];
        debug_assert!(!s.backlogged);
        s.backlogged = true;
        s.head_bits = head_bits;
        self.order.push_back(id);
        self.backlogged += 1;
    }

    fn select_next(&mut self) -> Option<SessionId> {
        debug_assert!(self.in_service.is_none());
        let id = self.order.pop_front()?;
        self.t += self.sessions[id.0].head_bits / self.rate;
        self.in_service = Some(id);
        Some(id)
    }

    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>) {
        debug_assert_eq!(self.in_service, Some(id));
        self.in_service = None;
        match next_head_bits {
            Some(bits) => {
                self.sessions[id.0].head_bits = bits;
                self.order.push_back(id);
            }
            None => {
                self.sessions[id.0].backlogged = false;
                self.backlogged -= 1;
                if self.backlogged == 0 {
                    self.t = 0.0;
                }
            }
        }
    }

    fn backlogged(&self) -> usize {
        self.backlogged
    }

    fn virtual_time(&self) -> f64 {
        self.t
    }

    fn phi(&self, id: SessionId) -> f64 {
        self.sessions[id.0].phi
    }

    fn tags(&self, _id: SessionId) -> (f64, f64) {
        (0.0, 0.0)
    }

    fn name(&self) -> &'static str {
        "fifo"
    }

    fn save_state(&self) -> Value {
        // Offer order is the whole policy; the queue is saved verbatim.
        Value::map(vec![
            ("rate", Value::F64(self.rate)),
            ("t", Value::F64(self.t)),
            ("in_service", save_opt_id(self.in_service)),
            (
                "sessions",
                Value::List(
                    self.sessions
                        .iter()
                        .map(|s| {
                            Value::map(vec![
                                ("phi", Value::F64(s.phi)),
                                ("head_bits", Value::F64(s.head_bits)),
                                ("backlogged", Value::Bool(s.backlogged)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "order",
                Value::List(
                    self.order
                        .iter()
                        .map(|id| Value::U64(id.0 as u64))
                        .collect(),
                ),
            ),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let rate = state.get("rate")?.as_f64()?;
        if rate.to_bits() != self.rate.to_bits() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "fifo rate mismatch: snapshot {rate}, configured {}",
                    self.rate
                ),
            });
        }
        let mut sessions = Vec::new();
        for sv in state.get("sessions")?.items()? {
            sessions.push(FifoSession {
                phi: sv.get("phi")?.as_f64()?,
                head_bits: sv.get("head_bits")?.as_f64()?,
                backlogged: sv.get("backlogged")?.as_bool()?,
            });
        }
        let mut order = VecDeque::new();
        for idv in state.get("order")?.items()? {
            let id = idv.as_usize()?;
            if id >= sessions.len() {
                return Err(SnapError {
                    at: 0,
                    what: format!("order references session {id} of {}", sessions.len()),
                });
            }
            order.push_back(SessionId(id));
        }
        self.backlogged = sessions.iter().filter(|s| s.backlogged).count();
        self.sessions = sessions;
        self.order = order;
        self.t = state.get("t")?.as_f64()?;
        self.in_service = load_opt_id(state.get("in_service")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_in_offer_order() {
        let mut s = Fifo::new(1.0);
        let a = s.add_session(0.5);
        let b = s.add_session(0.5);
        s.backlog(b, 1.0, None);
        s.backlog(a, 1.0, None);
        assert_eq!(s.select_next(), Some(b));
        s.requeue(b, None);
        assert_eq!(s.select_next(), Some(a));
        s.requeue(a, Some(2.0));
        assert_eq!(s.select_next(), Some(a));
        s.requeue(a, None);
        assert_eq!(s.select_next(), None);
    }
}
