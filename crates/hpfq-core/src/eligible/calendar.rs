//! Hierarchical calendar-queue eligible set: amortized O(1) dispatch.
//!
//! The dual-heap set pays O(log N) per heap sift, and the scaling sweep in
//! `hpfq-bench` shows exactly that: dispatch cost grows with the log of the
//! flow count, dominated by cache-missing sift chains once the heaps spill
//! the last-level cache. This module replaces both heaps with *hierarchical
//! timing wheels* (Varghese & Lauck, SOSP 1987; Brown's calendar queues,
//! CACM 1988): tags are bucketed on a uniform grid, the monotone
//! per-busy-period threshold drives a cursor that rotates lazily through
//! the buckets, and each entry is touched a constant number of times
//! (once per wheel level) regardless of N.
//!
//! ## Structure
//!
//! Two wheels share one entry layout with the dual heap's 24-byte SoA
//! entries: a *pending* wheel keyed by eligibility (start) tag and a
//! *ready* wheel keyed by primary (finish) rank, plus the same physically
//! maintained sorted *monotone tail* deque for ring disciplines. Each wheel
//! maps a key to an integer tick `⌊(key − base)/width⌋` and stores the
//! entry in one of [`LEVELS`] levels of [`NB`] buckets each; level `l`
//! buckets are `NB^l` ticks wide, so the wheels cover `NB^LEVELS` ticks
//! (16.7M) beyond the cursor. Keys below the level-0 window land in an
//! *under* heap (rare: a rank below everything live), keys beyond the
//! horizon in an *over* heap; both degrade gracefully to exact heap
//! behavior and both trigger a deterministic rebuild when they accumulate.
//!
//! Because `⌊(key − base)/width⌋` is a monotone function of the key (IEEE
//! subtraction and division round monotonically), bucket order refines key
//! order exactly: the first non-empty bucket contains the minimum, and the
//! in-bucket scan compares full `(key, secondary, id)` triples with the
//! same exact comparisons as the dual heap. **Pops therefore leave in the
//! identical global order as the dual heap**, which is what lets the PIFO
//! equivalence suite drive the two backends in lockstep, bit for bit.
//!
//! ## Rotation, cascade, resize
//!
//! A pop scans level 0 from its cursor; when level 0 is exhausted, the
//! next non-empty level-`l` bucket *cascades* one level down (its span is
//! exactly the lower level's whole window), re-bucketing its entries at
//! finer granularity. Each entry cascades at most `LEVELS − 1` times, so
//! insert + pop cost is amortized O(1) with the width matched to the live
//! population. The width is re-fit deterministically — `span / live` at
//! every rebuild — and rebuilds trigger on population doubling/quartering
//! and on under/over overflow, all pure functions of the operation
//! sequence (no wall clock, no randomness: replay-stable).
//!
//! Removal is generation-lazy exactly like the dual heap: stale entries
//! are dropped when a bucket scan or cascade touches them. Snapshots
//! ([`PifoBackend::members_in_order`]) emit the live membership fully
//! sorted, so the serialized form is a deterministic function of the
//! membership alone — byte-stable across structurally different histories.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use super::{EligibleSet, PifoBackend};
use crate::scheduler::SessionId;
use crate::vtime;

/// Buckets per wheel level.
const NB: usize = 64;
/// Wheel levels; the horizon is `NB^LEVELS` ticks past the cursor.
const LEVELS: usize = 4;
/// `G[l] = NB^l`: tick granularity of level `l` (and `G[LEVELS]` = horizon).
const G: [i64; LEVELS + 1] = [1, 64, 4096, 262_144, 16_777_216];

/// Wheel entry — same 24-byte layout and inverted heap order as the dual
/// heap's, so the under/over heaps and in-bucket scans compare identically.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CalEntry {
    key: f64,
    secondary: f64,
    id: u32,
    generation: u32,
}

impl Eq for CalEntry {}

impl Ord for CalEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: smaller (key, secondary, id) is "greater" for the heap.
        let lhs = (other.key, other.secondary, other.id);
        let rhs = (self.key, self.secondary, self.id);
        lhs.partial_cmp(&rhs)
            // lint:allow(L002): insert paths assert finite keys — total order
            .expect("keys must not be NaN (asserted on insert)")
    }
}

impl PartialOrd for CalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[inline]
fn rank_of(e: &CalEntry) -> (f64, f64, u32) {
    (e.key, e.secondary, e.id)
}

/// One wheel level: `NB` buckets of `G[l]` ticks each, covering the tick
/// window `[start, start + NB * G[l])`. Buckets before `cursor` are empty.
#[derive(Debug, Clone)]
struct Level {
    start: i64,
    cursor: usize,
    buckets: Vec<Vec<CalEntry>>,
}

impl Level {
    fn new() -> Self {
        Level {
            start: 0,
            cursor: 0,
            buckets: (0..NB).map(|_| Vec::new()).collect(),
        }
    }
}

/// Where [`Wheel::locate_min`] found the minimum.
#[derive(Debug, Clone, Copy)]
enum Loc {
    Under,
    /// Always level 0: higher levels cascade down before a pop.
    Bucket { bucket: usize, slot: usize },
}

/// One hierarchical timing wheel. The nesting invariant — level `l−1`'s
/// window is exactly level `l`'s next-uncascaded-bucket boundary,
/// `start[l−1] + NB·G[l−1] == start[l] + cursor[l]·G[l]` — holds at every
/// operation boundary, so the smallest-level placement rule below is total
/// and cross-bucket tick order refines exact key order.
#[derive(Debug, Clone)]
struct Wheel {
    levels: Vec<Level>,
    /// Keys below the level-0 window (tick < `levels[0].start`).
    under: BinaryHeap<CalEntry>,
    /// Keys at or beyond the horizon (tick >= `levels[LEVELS−1]` end).
    over: BinaryHeap<CalEntry>,
    /// Tick grid: tick(key) = floor((key − base) / width).
    base: f64,
    width: f64,
    /// False until the first insert (or after clear/empty-rebuild) — the
    /// grid is anchored at the first key seen.
    initialized: bool,
    /// Physical entries across all containers, including stale ones.
    count: usize,
    /// Stale (generation-mismatched) entries still parked somewhere.
    stale: usize,
    /// Live population the current width was fitted to.
    sized_for: usize,
    /// Level-0 bucket currently kept in descending rank order (minimum at
    /// the back, see [`Wheel::locate_min`]); `usize::MAX` when none is.
    sorted: usize,
}

impl Default for Wheel {
    fn default() -> Self {
        Wheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            under: BinaryHeap::new(),
            over: BinaryHeap::new(),
            base: 0.0,
            width: 1.0,
            initialized: false,
            count: 0,
            stale: 0,
            sized_for: 1,
            sorted: usize::MAX,
        }
    }
}

impl Wheel {
    #[inline]
    fn live(&self) -> usize {
        self.count - self.stale
    }

    /// Anchors the tick grid at `key` (first insert of an epoch). The
    /// learned width is kept — across busy periods the population is
    /// usually similar, so the old fit is the best available guess.
    fn init_around(&mut self, key: f64) {
        self.base = key;
        for (l, lv) in self.levels.iter_mut().enumerate() {
            lv.start = 0;
            // Level l >= 1 coverage starts where level l−1's window ends:
            // bucket 0 (ticks [0, G[l])) is exactly the lower levels' span.
            lv.cursor = usize::from(l != 0);
        }
        self.sorted = usize::MAX;
        self.initialized = true;
    }

    /// Files an entry by tick; no counters, no triggers (rebuild reuses it).
    fn place(&mut self, e: CalEntry) {
        debug_assert!(self.initialized);
        let d = (e.key - self.base) / self.width;
        // lint:allow(L001): `start` is an integer bucket tick on the wheel
        // grid, not a virtual-time tag; tick routing must be exact
        if d < self.levels[0].start as f64 {
            self.under.push(e);
            return;
        }
        let horizon = self.levels[LEVELS - 1].start + G[LEVELS];
        if d >= horizon as f64 {
            self.over.push(e);
            return;
        }
        // d >= start[0] >= 0, so the cast truncation is a floor.
        let t = d as i64;
        for l in 0..LEVELS {
            let lv = &mut self.levels[l];
            // lint:allow(L001): integer tick-window comparison, not a
            // virtual-time ordering — the grid is exact by construction
            if t < lv.start + G[l + 1] {
                let idx = ((t - lv.start) / G[l]) as usize;
                debug_assert!(idx < NB);
                // Only level 0 can receive a tick behind its cursor (the
                // nesting invariant routes anything below a higher level's
                // cursor boundary to a lower level): roll the scan back.
                if l == 0 && idx < lv.cursor {
                    lv.cursor = idx;
                }
                debug_assert!(l == 0 || idx >= lv.cursor);
                if l == 0 && idx == self.sorted {
                    // Keep the active bucket's descending rank order so its
                    // back stays the minimum (inverted Ord: ascending sort).
                    let b = &mut lv.buckets[idx];
                    match b.binary_search(&e) {
                        Ok(p) | Err(p) => b.insert(p, e),
                    }
                } else {
                    lv.buckets[idx].push(e);
                }
                return;
            }
        }
        // lint:allow(L002): the level windows tile [start[0], horizon)
        // exactly (nesting invariant) and t < horizon was checked above
        unreachable!("tick below horizon must land in a level");
    }

    /// Inserts a live entry, re-fitting the grid when the population
    /// outgrew the width or the under heap shows the window is mis-anchored.
    fn insert(&mut self, e: CalEntry, generations: &[u32]) {
        if !self.initialized {
            self.init_around(e.key);
        }
        self.count += 1;
        self.place(e);
        if self.count > self.sized_for * 2 + NB || self.under.len() > NB.max(self.sized_for / 8) {
            self.rebuild(generations);
        }
    }

    /// Drops stale entries from bucket `(l, c)` in place.
    fn prune_bucket(&mut self, l: usize, c: usize, generations: &[u32]) {
        let mut i = 0;
        while i < self.levels[l].buckets[c].len() {
            let e = self.levels[l].buckets[c][i];
            if generations[e.id as usize] == e.generation {
                i += 1;
            } else {
                self.levels[l].buckets[c].swap_remove(i);
                self.count -= 1;
                self.stale -= 1;
            }
        }
    }

    /// Refills level `l − 1` by cascading the next non-empty bucket of
    /// level `l` (pulling level `l`'s own window forward from `l + 1`
    /// first if it is exhausted). Returns false when every level is dry.
    fn refill_from(&mut self, l: usize, generations: &[u32]) -> bool {
        if l >= LEVELS {
            return false;
        }
        loop {
            while self.levels[l].cursor < NB {
                let c = self.levels[l].cursor;
                self.prune_bucket(l, c, generations);
                if !self.levels[l].buckets[c].is_empty() {
                    break;
                }
                self.levels[l].cursor += 1;
            }
            if self.levels[l].cursor < NB {
                break;
            }
            if !self.refill_from(l + 1, generations) {
                return false;
            }
        }
        let b = self.levels[l].cursor;
        let entries = std::mem::take(&mut self.levels[l].buckets[b]);
        self.levels[l].cursor = b + 1;
        let new_start = self.levels[l].start + (b as i64) * G[l];
        debug_assert!(self.levels[l - 1].buckets.iter().all(Vec::is_empty));
        self.levels[l - 1].start = new_start;
        self.levels[l - 1].cursor = 0;
        if l == 1 {
            // Level 0 gets a fresh window: bucket indices are reused, so
            // the sorted marker would alias an unrelated bucket.
            self.sorted = usize::MAX;
        }
        for e in entries {
            // Same grid, same arithmetic as place(): deterministic re-bucket
            // at granularity G[l−1]; the bucket span is exactly the window.
            let t = ((e.key - self.base) / self.width) as i64;
            let idx = ((t - new_start) / G[l - 1]) as usize;
            debug_assert!(idx < NB);
            self.levels[l - 1].buckets[idx].push(e);
        }
        true
    }

    /// Finds the live global minimum by `(key, secondary, id)`, pruning
    /// stale entries and cascading/rotating as needed. Under < levels <
    /// over holds in *strict* key order (equal keys always share a tick and
    /// therefore a container), so the first populated region wins outright.
    fn locate_min(&mut self, generations: &[u32]) -> Option<(Loc, CalEntry)> {
        while let Some(top) = self.under.peek().copied() {
            if generations[top.id as usize] == top.generation {
                return Some((Loc::Under, top));
            }
            self.under.pop();
            self.count -= 1;
            self.stale -= 1;
        }
        if self.initialized {
            loop {
                while self.levels[0].cursor < NB {
                    let c = self.levels[0].cursor;
                    if self.sorted == c {
                        // Already in descending rank order: drop stale
                        // entries surfacing at the back (order-preserving),
                        // then the back is the live in-bucket minimum.
                        while let Some(e) = self.levels[0].buckets[c].last() {
                            if generations[e.id as usize] == e.generation {
                                break;
                            }
                            self.levels[0].buckets[c].pop();
                            self.count -= 1;
                            self.stale -= 1;
                        }
                    } else {
                        // First touch of this bucket: prune, then sort once
                        // so every subsequent pop is a Vec::pop. The
                        // inverted Ord puts the smallest (key, secondary,
                        // id) at the back; under an all-ties plateau (every
                        // live entry sharing one rank key, hence one
                        // bucket) this is what keeps pops amortized O(1)
                        // instead of a linear min scan per pop.
                        self.prune_bucket(0, c, generations);
                        self.levels[0].buckets[c].sort_unstable();
                        self.sorted = c;
                    }
                    let bucket = &self.levels[0].buckets[c];
                    if let Some(e) = bucket.last() {
                        let slot = bucket.len() - 1;
                        return Some((Loc::Bucket { bucket: c, slot }, *e));
                    }
                    self.levels[0].cursor += 1;
                }
                if !self.refill_from(1, generations) {
                    // Every level window is exhausted (and physically
                    // empty). Leaving the dead cursors in place would let a
                    // later insert file behind them and never be scanned, so
                    // re-anchor now: a rebuild pulls whatever the over heap
                    // still holds into fresh windows; with nothing left at
                    // all, just drop the anchor for the next insert.
                    if self.count == 0 {
                        self.initialized = false;
                        break;
                    }
                    self.rebuild(generations);
                    if !self.initialized {
                        break; // everything left was stale
                    }
                }
            }
        }
        // No live entries anywhere: the under scan drained to a live top or
        // empty, and the level scan above only gives up after re-anchoring
        // proved the wheel empty.
        debug_assert_eq!(self.count, 0);
        None
    }

    /// Removes the entry found by [`Wheel::locate_min`] (same op, no
    /// intervening mutation), shrinking the fit if the population cratered.
    fn take(&mut self, loc: Loc, generations: &[u32]) -> CalEntry {
        self.count -= 1;
        let e = match loc {
            Loc::Under => self
                .under
                .pop()
                // lint:allow(L002): locate_min just returned this top
                .expect("take(Under) without a located entry"),
            Loc::Bucket { bucket, slot } => self.levels[0].buckets[bucket].swap_remove(slot),
        };
        if self.sized_for > NB * 2 && self.live() * 4 < self.sized_for {
            self.rebuild(generations);
        }
        e
    }

    /// Re-fits the grid to the live population: base = min key, width =
    /// span / live (clamped so the horizon always covers the span), then
    /// re-files everything. O(live), amortized against the doubling /
    /// quartering / overflow triggers; a pure function of the op sequence.
    fn rebuild(&mut self, generations: &[u32]) {
        let mut entries: Vec<CalEntry> = Vec::with_capacity(self.live());
        let live = |e: &CalEntry| generations[e.id as usize] == e.generation;
        entries.extend(self.under.drain().filter(live));
        entries.extend(self.over.drain().filter(live));
        for lv in &mut self.levels {
            lv.start = 0;
            lv.cursor = 0;
            for b in &mut lv.buckets {
                entries.extend(b.drain(..).filter(live));
            }
        }
        self.count = entries.len();
        self.stale = 0;
        self.sized_for = entries.len().max(1);
        self.sorted = usize::MAX;
        if entries.is_empty() {
            self.initialized = false;
            return;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for e in &entries {
            lo = lo.min(e.key);
            hi = hi.max(e.key);
        }
        let span = hi - lo;
        // Fit one live entry per level-0 tick, but never let the span
        // outrun the horizon (entries past it would re-land in `over`).
        let denom = (entries.len() as f64).min((G[LEVELS] / 2) as f64);
        self.width = if span > 0.0 { span / denom } else { 1.0 };
        self.base = lo;
        self.init_around(lo);
        for e in entries {
            self.place(e);
        }
    }

    fn iter_live<'a>(
        &'a self,
        generations: &'a [u32],
    ) -> impl Iterator<Item = &'a CalEntry> + 'a {
        self.under
            .iter()
            .chain(self.over.iter())
            .chain(self.levels.iter().flat_map(|lv| lv.buckets.iter().flatten()))
            .filter(move |e| generations[e.id as usize] == e.generation)
    }

    fn clear(&mut self) {
        self.under.clear();
        self.over.clear();
        for lv in &mut self.levels {
            lv.start = 0;
            lv.cursor = 0;
            for b in &mut lv.buckets {
                b.clear();
            }
        }
        self.count = 0;
        self.stale = 0;
        self.sorted = usize::MAX;
        // Keep width and sized_for: the next busy period's population is
        // usually similar, and both are replay-deterministic either way.
        self.initialized = false;
    }
}

/// Membership state; tags live in the parallel SoA arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Absent,
    Pending,
    Ready,
}

/// See the [module documentation](self).
#[derive(Debug, Clone, Default)]
pub struct CalendarEligibleSet {
    /// Wheel keyed by eligibility (start) tag.
    pending: Wheel,
    /// Wheel keyed by primary (finish) rank.
    ready: Wheel,
    /// Sorted monotone tail, physically pruned — identical contract to the
    /// dual heap's.
    ready_tail: VecDeque<CalEntry>,
    /// SoA per-session bookkeeping, indexed by session id: membership
    /// state, start tag, finish tag, and the generation counter
    /// invalidating stale wheel entries.
    state: Vec<Slot>,
    starts: Vec<f64>,
    finishes: Vec<f64>,
    generations: Vec<u32>,
}

impl CalendarEligibleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, id: SessionId) {
        if id.0 >= self.state.len() {
            self.state.resize(id.0 + 1, Slot::Absent);
            self.starts.resize(id.0 + 1, 0.0);
            self.finishes.resize(id.0 + 1, 0.0);
            self.generations.resize(id.0 + 1, 0);
            debug_assert!(
                id.0 <= u32::MAX as usize,
                "session id overflows entry narrowing"
            );
        }
    }

    /// Migrates every pending entry whose eligibility key is within `thr`
    /// into the ready wheel (exact comparison, same as the dual heap).
    fn migrate(&mut self, thr: f64) {
        while let Some((loc, top)) = self.pending.locate_min(&self.generations) {
            if vtime::exactly_lt(thr, top.key) {
                break;
            }
            let e = self.pending.take(loc, &self.generations);
            let id = e.id as usize;
            debug_assert_eq!(self.state[id], Slot::Pending);
            debug_assert_eq!(self.starts[id], e.key);
            self.state[id] = Slot::Ready;
            self.ready.insert(
                CalEntry {
                    key: self.finishes[id],
                    secondary: e.secondary,
                    id: e.id,
                    generation: e.generation,
                },
                &self.generations,
            );
        }
    }

    fn ready_nonempty(&mut self) -> bool {
        !self.ready_tail.is_empty() || self.ready.locate_min(&self.generations).is_some()
    }
}

impl PifoBackend for CalendarEligibleSet {
    fn backend_name(&self) -> &'static str {
        "calendar"
    }

    #[inline]
    fn ensure_sessions(&mut self, n: usize) {
        if n > 0 {
            self.ensure(SessionId(n - 1));
        }
    }

    #[inline]
    fn insert_ranked(&mut self, id: SessionId, elig: Option<f64>, primary: f64, secondary: f64) {
        debug_assert!(
            primary.is_finite() && secondary.is_finite() && elig.is_none_or(f64::is_finite),
            "bad rank ({elig:?}, {primary}, {secondary}) for session {id:?}"
        );
        debug_assert!(
            id.0 < self.state.len(),
            "session {id:?} not registered via ensure_sessions"
        );
        debug_assert_eq!(
            self.state[id.0],
            Slot::Absent,
            "session {id:?} inserted twice"
        );
        let generation = self.generations[id.0];
        match elig {
            Some(start) => {
                self.state[id.0] = Slot::Pending;
                self.starts[id.0] = start;
                self.finishes[id.0] = primary;
                self.pending.insert(
                    CalEntry {
                        key: start,
                        secondary,
                        id: id.0 as u32,
                        generation,
                    },
                    &self.generations,
                );
            }
            None => {
                self.state[id.0] = Slot::Ready;
                let e = CalEntry {
                    key: primary,
                    secondary,
                    id: id.0 as u32,
                    generation,
                };
                match self.ready_tail.back() {
                    Some(b) if rank_of(&e) < rank_of(b) => {
                        self.ready.insert(e, &self.generations);
                    }
                    _ => self.ready_tail.push_back(e),
                }
            }
        }
    }

    #[inline]
    fn push_monotone(&mut self, id: SessionId, primary: f64, secondary: f64) {
        debug_assert!(
            primary.is_finite() && secondary.is_finite(),
            "bad rank ({primary}, {secondary}) for session {id:?}"
        );
        debug_assert!(
            id.0 < self.state.len(),
            "session {id:?} not registered via ensure_sessions"
        );
        debug_assert_eq!(
            self.state[id.0],
            Slot::Absent,
            "session {id:?} inserted twice"
        );
        let e = CalEntry {
            key: primary,
            secondary,
            id: id.0 as u32,
            generation: 0,
        };
        #[cfg(debug_assertions)]
        {
            self.state[id.0] = Slot::Ready;
        }
        match self.ready_tail.back() {
            Some(b) if rank_of(&e) < rank_of(b) => {
                debug_assert!(
                    self.ready_tail
                        .front()
                        .is_none_or(|f| rank_of(&e) <= rank_of(f)),
                    "MONOTONE_RANKS violated: rank between the tail front and back"
                );
                self.ready_tail.push_front(e);
            }
            _ => self.ready_tail.push_back(e),
        }
    }

    #[inline]
    fn pop_monotone(&mut self) -> Option<SessionId> {
        debug_assert!(
            self.pending.count == 0 && self.ready.count == 0,
            "MONOTONE_RANKS program has wheel entries"
        );
        let top = self.ready_tail.pop_front()?;
        debug_assert_eq!(self.state[top.id as usize], Slot::Ready);
        #[cfg(debug_assertions)]
        {
            self.state[top.id as usize] = Slot::Absent;
        }
        Some(SessionId(top.id as usize))
    }

    #[inline]
    fn pop_min_ranked(&mut self) -> Option<SessionId> {
        PifoBackend::pop_eligible(self, f64::INFINITY)
    }

    fn clamp_threshold(&mut self, v: f64) -> Option<f64> {
        if PifoBackend::members(self) == 0 {
            return None;
        }
        if self.ready_nonempty() {
            Some(v)
        } else {
            let smin = self
                .pending
                .locate_min(&self.generations)
                // lint:allow(L002): len() > 0 and ready is empty, so pending
                // holds at least one current-generation entry
                .expect("live members must be in a wheel")
                .1
                .key;
            Some(v.max(smin))
        }
    }

    #[inline]
    fn pop_eligible(&mut self, thr: f64) -> Option<SessionId> {
        self.migrate(thr);
        // Ring-discipline fast path, identical to the dual heap's: the
        // ready wheel holds nothing live, so the tail front is the min.
        if self.ready.live() == 0 {
            let top = self.ready_tail.pop_front()?;
            debug_assert_eq!(self.state[top.id as usize], Slot::Ready);
            self.state[top.id as usize] = Slot::Absent;
            return Some(SessionId(top.id as usize));
        }
        let wheel_min = self.ready.locate_min(&self.generations);
        let take_tail = match (&wheel_min, self.ready_tail.front()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some((_, w)), Some(t)) => rank_of(t) < rank_of(w),
        };
        let top = if take_tail {
            self.ready_tail.pop_front()
        } else {
            wheel_min.map(|(loc, _)| self.ready.take(loc, &self.generations))
        };
        let top = top?;
        debug_assert_eq!(self.state[top.id as usize], Slot::Ready);
        self.state[top.id as usize] = Slot::Absent;
        Some(SessionId(top.id as usize))
    }

    fn members_in_order(&self) -> Vec<(SessionId, Option<f64>, f64, f64)> {
        // Fully sorted in both sections — the serialized form depends only
        // on the live membership, not on wheel/heap internals.
        let exact = |a: &(f64, f64, u32), b: &(f64, f64, u32)| {
            a.partial_cmp(b)
                // lint:allow(L002): cold snapshot path; ranks are finite
                .expect("ranks must not be NaN")
        };
        let mut open: Vec<&CalEntry> = self.ready.iter_live(&self.generations).collect();
        open.extend(self.ready_tail.iter());
        open.sort_by(|a, b| exact(&rank_of(a), &rank_of(b)));
        let mut out: Vec<(SessionId, Option<f64>, f64, f64)> = open
            .iter()
            .map(|e| (SessionId(e.id as usize), None, e.key, e.secondary))
            .collect();
        let mut gated: Vec<&CalEntry> = self.pending.iter_live(&self.generations).collect();
        gated.sort_by(|a, b| exact(&rank_of(a), &rank_of(b)));
        out.extend(gated.iter().map(|e| {
            (
                SessionId(e.id as usize),
                Some(e.key),
                self.finishes[e.id as usize],
                e.secondary,
            )
        }));
        out
    }

    #[inline]
    fn members(&self) -> usize {
        self.pending.live() + self.ready.live() + self.ready_tail.len()
    }

    fn reset(&mut self) {
        self.pending.clear();
        self.ready.clear();
        self.ready_tail.clear();
        self.state.fill(Slot::Absent);
        for g in &mut self.generations {
            *g += 1;
        }
    }
}

impl EligibleSet for CalendarEligibleSet {
    fn insert(&mut self, id: SessionId, start: f64, finish: f64) {
        assert!(
            start.is_finite() && finish.is_finite() && vtime::exactly_le(start, finish),
            "bad tags ({start}, {finish}) for session {id:?}"
        );
        self.ensure(id);
        PifoBackend::insert_ranked(self, id, Some(start), finish, 0.0);
    }

    fn remove(&mut self, id: SessionId) {
        self.ensure(id);
        if self.state[id.0] != Slot::Absent {
            let was = self.state[id.0];
            self.state[id.0] = Slot::Absent;
            self.generations[id.0] += 1;
            if let Some(pos) = self.ready_tail.iter().position(|e| e.id as usize == id.0) {
                self.ready_tail.remove(pos);
            } else if was == Slot::Pending {
                self.pending.stale += 1;
            } else {
                self.ready.stale += 1;
            }
        }
    }

    fn eligibility_threshold(&mut self, v: f64) -> Option<f64> {
        PifoBackend::clamp_threshold(self, v)
    }

    fn pop_min_finish(&mut self, thr: f64) -> Option<SessionId> {
        PifoBackend::pop_eligible(self, thr)
    }

    fn len(&self) -> usize {
        PifoBackend::members(self)
    }

    fn clear(&mut self) {
        PifoBackend::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::super::BruteForceEligibleSet;
    use super::*;

    #[test]
    fn matches_module_example() {
        let mut s = CalendarEligibleSet::new();
        s.insert(SessionId(0), 2.0, 5.0);
        s.insert(SessionId(1), 0.0, 9.0);
        s.insert(SessionId(2), 0.5, 3.0);
        assert_eq!(EligibleSet::eligibility_threshold(&mut s, 1.0), Some(1.0));
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 1.0), Some(SessionId(2)));
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 1.0), Some(SessionId(1)));
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 1.0), None);
        assert_eq!(EligibleSet::eligibility_threshold(&mut s, 1.0), Some(2.0));
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 2.0), Some(SessionId(0)));
        assert!(EligibleSet::is_empty(&s));
    }

    #[test]
    fn reinsertion_after_pop() {
        let mut s = CalendarEligibleSet::new();
        s.insert(SessionId(4), 0.0, 1.0);
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 0.0), Some(SessionId(4)));
        s.insert(SessionId(4), 1.0, 2.0);
        assert_eq!(EligibleSet::len(&s), 1);
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 1.0), Some(SessionId(4)));
    }

    #[test]
    fn remove_is_lazy_but_correct() {
        let mut s = CalendarEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.insert(SessionId(1), 0.0, 2.0);
        EligibleSet::remove(&mut s, SessionId(0));
        assert_eq!(EligibleSet::len(&s), 1);
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 0.0), Some(SessionId(1)));
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 0.0), None);
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut s = CalendarEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        PifoBackend::reset(&mut s);
        assert!(EligibleSet::is_empty(&s));
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 10.0), None);
        s.insert(SessionId(0), 5.0, 6.0);
        assert_eq!(EligibleSet::eligibility_threshold(&mut s, 0.0), Some(5.0));
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 5.0), Some(SessionId(0)));
    }

    #[test]
    fn finish_ties_break_by_session_id() {
        let mut s = CalendarEligibleSet::new();
        s.insert(SessionId(3), 0.0, 4.0);
        s.insert(SessionId(1), 0.0, 4.0);
        s.insert(SessionId(2), 0.0, 4.0);
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 0.0), Some(SessionId(1)));
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 0.0), Some(SessionId(2)));
        assert_eq!(EligibleSet::pop_min_finish(&mut s, 0.0), Some(SessionId(3)));
    }

    #[test]
    fn ranked_insert_orders_by_primary_then_secondary_then_id() {
        let mut s = CalendarEligibleSet::new();
        PifoBackend::ensure_sessions(&mut s, 4);
        PifoBackend::insert_ranked(&mut s, SessionId(0), None, 4.0, 2.0);
        PifoBackend::insert_ranked(&mut s, SessionId(1), None, 4.0, 1.0);
        PifoBackend::insert_ranked(&mut s, SessionId(3), None, 4.0, 1.0);
        PifoBackend::insert_ranked(&mut s, SessionId(2), None, 3.0, 9.0);
        assert_eq!(s.pop_min_ranked(), Some(SessionId(2)));
        assert_eq!(s.pop_min_ranked(), Some(SessionId(1)));
        assert_eq!(s.pop_min_ranked(), Some(SessionId(3)));
        assert_eq!(s.pop_min_ranked(), Some(SessionId(0)));
        assert_eq!(s.pop_min_ranked(), None);
    }

    #[test]
    fn under_window_inserts_pop_first() {
        // Fill enough spread-out members to move the window, then insert a
        // key below everything: it must still pop in exact order.
        let mut s = CalendarEligibleSet::new();
        for i in 0..200 {
            s.insert(SessionId(i), i as f64 * 10.0 + 1.0, i as f64 * 10.0 + 2.0);
        }
        for _ in 0..100 {
            EligibleSet::pop_min_finish(&mut s, f64::INFINITY);
        }
        s.insert(SessionId(500), 0.25, 0.5);
        assert_eq!(
            EligibleSet::pop_min_finish(&mut s, f64::INFINITY),
            Some(SessionId(500))
        );
    }

    #[test]
    fn wide_spread_triggers_rebuilds_and_stays_exact() {
        // Keys spanning ten orders of magnitude force over-heap spills and
        // width re-fits; pops must still come out in exact sorted order.
        let mut s = CalendarEligibleSet::new();
        let mut keys: Vec<(usize, f64)> = (0..300)
            .map(|i| (i, (i as f64 * 1.618_033).sin().abs() * 10f64.powi((i % 10) as i32)))
            .collect();
        for &(i, k) in &keys {
            s.insert(SessionId(i), k, k + 1.0);
        }
        keys.sort_by(|a, b| (a.1, a.0).partial_cmp(&(b.1, b.0)).unwrap());
        for &(i, _) in &keys {
            assert_eq!(
                EligibleSet::pop_min_finish(&mut s, f64::INFINITY),
                Some(SessionId(i))
            );
        }
        assert!(EligibleSet::is_empty(&s));
    }

    #[test]
    fn agrees_with_brute_force_on_scripted_churn() {
        // Deterministic LCG-driven churn: interleaved inserts, removes,
        // threshold queries, pops, and clears against the oracle.
        let mut cal = CalendarEligibleSet::new();
        let mut brute = BruteForceEligibleSet::default();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut lcg = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut present = [false; 64];
        let mut thr = 0.0_f64;
        for step in 0..4000 {
            let r = lcg();
            if step % 701 == 700 {
                EligibleSet::clear(&mut cal);
                brute.clear();
                present = [false; 64];
                thr = 0.0;
            } else if r < 0.5 {
                let id = (lcg() * 64.0) as usize % 64;
                if !present[id] {
                    let start = thr + (lcg() - 0.3) * 50.0;
                    let start = if start.is_finite() { start.max(0.0) } else { 0.0 };
                    let finish = start + lcg() * 100.0;
                    cal.insert(SessionId(id), start, finish);
                    brute.insert(SessionId(id), start, finish);
                    present[id] = true;
                }
            } else if r < 0.6 {
                let id = (lcg() * 64.0) as usize % 64;
                EligibleSet::remove(&mut cal, SessionId(id));
                brute.remove(SessionId(id));
                present[id] = false;
            } else if r < 0.7 {
                let v = thr + lcg();
                assert_eq!(
                    EligibleSet::eligibility_threshold(&mut cal, v),
                    brute.eligibility_threshold(v),
                    "step {step}"
                );
            } else {
                thr += lcg() * 10.0;
                let got = EligibleSet::pop_min_finish(&mut cal, thr);
                let want = brute.pop_min_finish(thr);
                assert_eq!(got, want, "step {step}");
                if let Some(id) = got {
                    present[id.0] = false;
                }
            }
            assert_eq!(EligibleSet::len(&cal), brute.len(), "step {step}");
        }
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    #[cfg(debug_assertions)]
    fn double_insert_panics() {
        let mut s = CalendarEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.insert(SessionId(0), 0.0, 2.0);
    }

    #[test]
    fn snapshot_order_is_membership_deterministic() {
        // Two structurally different histories with the same final live
        // membership must serialize identically.
        let mut a = CalendarEligibleSet::new();
        let mut b = CalendarEligibleSet::new();
        PifoBackend::ensure_sessions(&mut a, 40);
        PifoBackend::ensure_sessions(&mut b, 40);
        // a: ascending open inserts (all land on the monotone tail), then
        // pops and re-inserts scrambling tail vs wheel placement.
        for i in 0..40 {
            PifoBackend::insert_ranked(&mut a, SessionId(i), None, i as f64, 0.5);
        }
        for i in 0..10 {
            assert_eq!(a.pop_min_ranked(), Some(SessionId(i)));
        }
        for i in 0..10 {
            PifoBackend::insert_ranked(&mut a, SessionId(i), None, i as f64, 0.5);
        }
        // b: descending inserts — same membership, all in the wheel.
        for i in (0..40).rev() {
            PifoBackend::insert_ranked(&mut b, SessionId(i), None, i as f64, 0.5);
        }
        assert_eq!(a.members_in_order(), b.members_in_order());
    }
}
