//! Eligible-set data structures for SEFF (Smallest Eligible virtual Finish
//! time First) schedulers.
//!
//! A SEFF scheduler (WF²Q, WF²Q+) must repeatedly answer: *among the
//! backlogged sessions whose virtual start time `S_i` is at most a threshold
//! `thr`, which has the smallest virtual finish time `F_i`?* — and it must
//! also know `Smin`, the smallest start time over **all** backlogged
//! sessions, to evaluate the `max(V, Smin)` operation of the paper's
//! eq. (27) / RESTART-NODE line 12.
//!
//! Two O(log N) implementations are provided behind the [`EligibleSet`]
//! trait:
//!
//! * [`dual_heap::DualHeapEligibleSet`] — a pair of lazy binary heaps
//!   (pending sessions ordered by start time, eligible ones by finish time);
//!   sessions migrate as the virtual time advances. This is the structure
//!   used by production WF²Q+ implementations (e.g. dummynet).
//! * [`treap::TreapEligibleSet`] — a randomized balanced BST keyed by start
//!   time in which every subtree caches its minimum finish time, answering
//!   the query in a single descent with no migration.
//!
//! Both are exercised against [`BruteForceEligibleSet`] in unit and property
//! tests, and against each other in the `eligible_set` bench ablation.

pub mod calendar;
pub mod dual_heap;
pub mod treap;

use crate::scheduler::SessionId;
use crate::vtime;

/// Backing priority structure for the PIFO driver ([`crate::pifo::PifoTree`]).
///
/// This is the generalized *ranked* interface the dual-heap set grew for the
/// PIFO substrate, lifted to a trait so the driver can swap structures: the
/// dual heap (amortized O(log N)), the treap (worst-case O(log N) start-keyed
/// BST), and the hierarchical calendar queue (amortized O(1)). Every method
/// mirrors the dual-heap original; the semantic contract — rank model,
/// monotone thresholds within a busy period, id tie-breaks, the
/// `MONOTONE_RANKS` tail promise — is documented on
/// [`dual_heap::DualHeapEligibleSet`] and applies verbatim to every
/// implementation. All implementations must pop in the exact same
/// `(primary, secondary, id)` order: the PIFO equivalence suite drives them
/// in lockstep and requires byte-identical dispatch sequences.
pub trait PifoBackend: std::fmt::Debug + Clone + Default {
    /// Short structure name for snapshots and diagnostics.
    fn backend_name(&self) -> &'static str;

    /// Pre-sizes the per-session arrays for ids `< n` (the driver registers
    /// every session before scheduling starts).
    fn ensure_sessions(&mut self, n: usize);

    /// Inserts a member under the PIFO rank model: optional eligibility key
    /// (`None` = immediately eligible), lexicographic `(primary, secondary)`
    /// rank, ties by session id.
    fn insert_ranked(&mut self, id: SessionId, elig: Option<f64>, primary: f64, secondary: f64);

    /// Ring-discipline insert under the `MONOTONE_RANKS` promise (open rank,
    /// >= everything queued or <= everything queued).
    fn push_monotone(&mut self, id: SessionId, primary: f64, secondary: f64);

    /// Pop for `MONOTONE_RANKS` programs: the front of the sorted tail.
    fn pop_monotone(&mut self) -> Option<SessionId>;

    /// Pops the minimum `(primary, secondary, id)` rank regardless of
    /// eligibility keys ([`Threshold::All`](crate::pifo::Threshold::All)).
    fn pop_min_ranked(&mut self) -> Option<SessionId>;

    /// `max(v, Smin)` over all members — eq. (27)'s clamp. `None` if empty.
    /// ([`EligibleSet::eligibility_threshold`] under a non-colliding name:
    /// every backend also implements the narrow trait, and duplicated
    /// method names would force UFCS at each call site.)
    fn clamp_threshold(&mut self, v: f64) -> Option<f64>;

    /// Pops the minimum-rank member among those eligible at `thr`
    /// ([`EligibleSet::pop_min_finish`] generalized to ranks).
    fn pop_eligible(&mut self, thr: f64) -> Option<SessionId>;

    /// Live membership as re-insertable `(id, elig, primary, secondary)`
    /// ranks, replayable through [`PifoBackend::insert_ranked`]. Must be a
    /// deterministic function of the live membership (snapshot stability).
    fn members_in_order(&self) -> Vec<(SessionId, Option<f64>, f64, f64)>;

    /// Number of members.
    fn members(&self) -> usize;

    /// Removes all members and resets monotone state (new busy period).
    fn reset(&mut self);
}

/// A set of backlogged sessions, each with immutable `(start, finish)`
/// virtual tags, supporting the SEFF queries.
///
/// Invariants required from the caller (upheld by the schedulers):
///
/// * a session id is inserted at most once until popped or removed;
/// * tags are finite and `start <= finish`;
/// * within one busy period, the thresholds passed to
///   [`EligibleSet::pop_min_finish`] are non-decreasing (virtual time is
///   monotone); [`EligibleSet::clear`] starts a new busy period.
pub trait EligibleSet {
    /// Adds a backlogged session with the tags of its head packet.
    fn insert(&mut self, id: SessionId, start: f64, finish: f64);

    /// Removes a session regardless of eligibility (used when a logical
    /// queue is torn down). No-op if absent.
    fn remove(&mut self, id: SessionId);

    /// `max(v, Smin)` where `Smin` is the minimum start tag over all
    /// members — the eligibility threshold of eq. (27). `None` if empty.
    fn eligibility_threshold(&mut self, v: f64) -> Option<f64>;

    /// Removes and returns the member with the smallest finish tag among
    /// those with `start <= thr`. Ties are broken by the smaller session
    /// index — the convention that reproduces the paper's Fig. 2 timelines
    /// (where session 1's packet wins finish-tag ties against the small
    /// sessions). `None` if no member is eligible.
    fn pop_min_finish(&mut self, thr: f64) -> Option<SessionId>;

    /// Number of members.
    fn len(&self) -> usize;

    /// Whether the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all members and resets internal monotonic state (new busy
    /// period).
    fn clear(&mut self);
}

/// Deterministic total-order key for selecting the minimum-finish eligible
/// session: finish tag, then session id (the paper's Fig. 2 tie-break).
/// `start` is carried along as the BST key for deletions, not for ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FinishKey {
    pub finish: f64,
    pub start: f64,
    pub id: SessionId,
}

impl FinishKey {
    pub(crate) fn better_than(&self, other: &FinishKey) -> bool {
        // Exact comparison and exact stamp equality: the id tie-break only
        // fires on *identical* finish tags (paper Fig. 2 determinism), and
        // a tolerance here would reorder dispatch.
        vtime::exactly_lt(self.finish, other.finish)
            || (vtime::same_stamp(self.finish, other.finish) && self.id.0 < other.id.0)
    }
}

/// O(N) reference implementation used as the oracle in tests.
#[derive(Debug, Default, Clone)]
pub struct BruteForceEligibleSet {
    members: Vec<(SessionId, f64, f64)>,
}

impl EligibleSet for BruteForceEligibleSet {
    fn insert(&mut self, id: SessionId, start: f64, finish: f64) {
        debug_assert!(start.is_finite() && finish.is_finite() && vtime::exactly_le(start, finish));
        debug_assert!(!self.members.iter().any(|&(m, _, _)| m == id));
        self.members.push((id, start, finish));
    }

    fn remove(&mut self, id: SessionId) {
        self.members.retain(|&(m, _, _)| m != id);
    }

    fn eligibility_threshold(&mut self, v: f64) -> Option<f64> {
        self.members
            .iter()
            .map(|&(_, s, _)| s)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.min(s)))
            })
            .map(|smin| v.max(smin))
    }

    fn pop_min_finish(&mut self, thr: f64) -> Option<SessionId> {
        let mut best: Option<(usize, FinishKey)> = None;
        for (i, &(id, start, finish)) in self.members.iter().enumerate() {
            if vtime::exactly_le(start, thr) {
                let key = FinishKey { finish, start, id };
                if best.as_ref().is_none_or(|(_, b)| key.better_than(b)) {
                    best = Some((i, key));
                }
            }
        }
        best.map(|(i, key)| {
            self.members.swap_remove(i);
            key.id
        })
    }

    fn len(&self) -> usize {
        self.members.len()
    }

    fn clear(&mut self) {
        self.members.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_basics() {
        let mut s = BruteForceEligibleSet::default();
        assert!(s.is_empty());
        assert_eq!(s.eligibility_threshold(1.0), None);
        s.insert(SessionId(0), 2.0, 5.0);
        s.insert(SessionId(1), 0.0, 9.0);
        s.insert(SessionId(2), 0.5, 3.0);
        // Smin = 0.0 <= v, threshold is v itself.
        assert_eq!(s.eligibility_threshold(1.0), Some(1.0));
        // Only ids 1 and 2 eligible at thr=1.0; min finish is id 2.
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(2)));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(1.0), None);
        // Remaining session has start 2.0 > v: threshold jumps to Smin.
        assert_eq!(s.eligibility_threshold(1.0), Some(2.0));
        assert_eq!(s.pop_min_finish(2.0), Some(SessionId(0)));
        assert!(s.is_empty());
    }

    #[test]
    fn ties_break_deterministically() {
        let mut s = BruteForceEligibleSet::default();
        s.insert(SessionId(3), 0.0, 4.0);
        s.insert(SessionId(1), 0.0, 4.0);
        s.insert(SessionId(2), 0.0, 4.0);
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(2)));
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(3)));
    }
}
