//! Augmented-treap eligible set.
//!
//! Sessions are stored in a randomized balanced BST keyed by
//! `(start tag, session id)`. Every node caches the minimum finish key of
//! its subtree, so *"minimum finish among start ≤ thr"* is answered in one
//! O(log N) descent without moving elements — the alternative O(log N)
//! realization of the paper's §3.4 complexity claim, benchmarked against the
//! dual-heap structure in the `eligible_set` ablation.

use std::collections::VecDeque;

use super::{EligibleSet, FinishKey, PifoBackend};
use crate::scheduler::SessionId;
use crate::vtime;

type Link = Option<usize>;

/// Sentinel start tag for *open* PIFO ranks living in the treap: finite (so
/// the tag assertions hold) and below every real virtual time, so the member
/// is admitted at any threshold and never perturbs the `max(v, Smin)` clamp
/// (`max(v, f64::MIN) == v` for all finite thresholds).
const OPEN_START: f64 = f64::MIN;

#[derive(Debug, Clone)]
struct Node {
    start: f64,
    finish: f64,
    id: SessionId,
    prio: u64,
    left: Link,
    right: Link,
    /// Minimum finish key in this node's subtree (including itself).
    min_fk: FinishKey,
}

impl Node {
    fn own_key(&self) -> FinishKey {
        FinishKey {
            finish: self.finish,
            start: self.start,
            id: self.id,
        }
    }
}

/// Small deterministic xorshift64* generator for treap priorities; avoids a
/// dependency on `rand` in the core crate and keeps runs reproducible.
#[derive(Debug, Clone)]
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct TreapEligibleSet {
    arena: Vec<Node>,
    free: Vec<usize>,
    root: Link,
    /// Per-session membership: `(start, finish)` while present.
    slots: Vec<Option<(f64, f64)>>,
    live: usize,
    rng: XorShift64,
    /// Sorted deque for ring-discipline ranks (`MONOTONE_RANKS`) and
    /// in-order open inserts — same O(1) fast path as the dual heap's
    /// `ready_tail`. Entries are `(primary, id)`; the PIFO interface on
    /// this backend requires zero secondary keys (see
    /// [`PifoBackend::insert_ranked`] below).
    ready_tail: VecDeque<(f64, u32)>,
    /// Per-session flag: the member was inserted *open* (treap start tag is
    /// the [`OPEN_START`] sentinel, not a real eligibility key).
    open: Vec<bool>,
}

impl Default for TreapEligibleSet {
    fn default() -> Self {
        Self::new()
    }
}

impl TreapEligibleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TreapEligibleSet {
            arena: Vec::new(),
            free: Vec::new(),
            root: None,
            slots: Vec::new(),
            live: 0,
            rng: XorShift64(0x9E37_79B9_7F4A_7C15),
            ready_tail: VecDeque::new(),
            open: Vec::new(),
        }
    }

    fn tail_front_key(&self) -> Option<FinishKey> {
        self.ready_tail.front().map(|&(primary, id)| FinishKey {
            finish: primary,
            start: OPEN_START,
            id: SessionId(id as usize),
        })
    }

    fn key(&self, n: usize) -> (f64, usize) {
        (self.arena[n].start, self.arena[n].id.0)
    }

    fn pull(&mut self, n: usize) {
        let mut best = self.arena[n].own_key();
        for child in [self.arena[n].left, self.arena[n].right]
            .into_iter()
            .flatten()
        {
            let ck = self.arena[child].min_fk;
            if ck.better_than(&best) {
                best = ck;
            }
        }
        self.arena[n].min_fk = best;
    }

    fn alloc(&mut self, id: SessionId, start: f64, finish: f64) -> usize {
        let prio = self.rng.next();
        let node = Node {
            start,
            finish,
            id,
            prio,
            left: None,
            right: None,
            min_fk: FinishKey { finish, start, id },
        };
        if let Some(i) = self.free.pop() {
            self.arena[i] = node;
            i
        } else {
            self.arena.push(node);
            self.arena.len() - 1
        }
    }

    fn insert_at(&mut self, root: Link, n: usize) -> usize {
        let Some(r) = root else { return n };
        if self.key(n) < self.key(r) {
            let nl = self.insert_at(self.arena[r].left, n);
            self.arena[r].left = Some(nl);
            if self.arena[nl].prio > self.arena[r].prio {
                // Rotate right: nl becomes the root of this subtree.
                self.arena[r].left = self.arena[nl].right;
                self.arena[nl].right = Some(r);
                self.pull(r);
                self.pull(nl);
                nl
            } else {
                self.pull(r);
                r
            }
        } else {
            let nr = self.insert_at(self.arena[r].right, n);
            self.arena[r].right = Some(nr);
            if self.arena[nr].prio > self.arena[r].prio {
                // Rotate left.
                self.arena[r].right = self.arena[nr].left;
                self.arena[nr].left = Some(r);
                self.pull(r);
                self.pull(nr);
                nr
            } else {
                self.pull(r);
                r
            }
        }
    }

    /// Merges two treaps where every key in `l` is smaller than every key in
    /// `r`.
    fn merge(&mut self, l: Link, r: Link) -> Link {
        match (l, r) {
            (None, r) => r,
            (l, None) => l,
            (Some(a), Some(b)) => {
                if self.arena[a].prio > self.arena[b].prio {
                    let m = self.merge(self.arena[a].right, Some(b));
                    self.arena[a].right = m;
                    self.pull(a);
                    Some(a)
                } else {
                    let m = self.merge(Some(a), self.arena[b].left);
                    self.arena[b].left = m;
                    self.pull(b);
                    Some(b)
                }
            }
        }
    }

    fn delete_at(&mut self, root: Link, key: (f64, usize)) -> Link {
        // lint:allow(L002): callers pass keys recorded in slots at insert
        let r = root.expect("key to delete must be present");
        let rk = self.key(r);
        if key == rk {
            let merged = self.merge(self.arena[r].left, self.arena[r].right);
            self.free.push(r);
            merged
        } else if key < rk {
            let nl = self.delete_at(self.arena[r].left, key);
            self.arena[r].left = nl;
            self.pull(r);
            Some(r)
        } else {
            let nr = self.delete_at(self.arena[r].right, key);
            self.arena[r].right = nr;
            self.pull(r);
            Some(r)
        }
    }

    /// Minimum-finish key among members with `start <= thr`.
    fn query_best(&self, thr: f64) -> Option<FinishKey> {
        let mut best: Option<FinishKey> = None;
        let consider = |k: FinishKey, best: &mut Option<FinishKey>| {
            if best.as_ref().is_none_or(|b| k.better_than(b)) {
                *best = Some(k);
            }
        };
        let mut cur = self.root;
        while let Some(n) = cur {
            let node = &self.arena[n];
            // Exact threshold test — see DualHeapEligibleSet::migrate.
            if vtime::exactly_le(node.start, thr) {
                // The node itself and its whole left subtree are eligible.
                consider(node.own_key(), &mut best);
                if let Some(l) = node.left {
                    consider(self.arena[l].min_fk, &mut best);
                }
                cur = node.right;
            } else {
                cur = node.left;
            }
        }
        best
    }

    fn min_start(&self) -> Option<f64> {
        let mut cur = self.root?;
        while let Some(l) = self.arena[cur].left {
            cur = l;
        }
        Some(self.arena[cur].start)
    }
}

impl EligibleSet for TreapEligibleSet {
    fn insert(&mut self, id: SessionId, start: f64, finish: f64) {
        assert!(
            start.is_finite() && finish.is_finite() && vtime::exactly_le(start, finish),
            "bad tags ({start}, {finish}) for session {id:?}"
        );
        if id.0 >= self.slots.len() {
            self.slots.resize(id.0 + 1, None);
            self.open.resize(id.0 + 1, false);
        }
        assert!(self.slots[id.0].is_none(), "session {id:?} inserted twice");
        self.slots[id.0] = Some((start, finish));
        self.open[id.0] = vtime::same_stamp(start, OPEN_START);
        let n = self.alloc(id, start, finish);
        self.root = Some(self.insert_at(self.root, n));
        self.live += 1;
    }

    fn remove(&mut self, id: SessionId) {
        if let Some(Some((start, _))) = self.slots.get(id.0).copied() {
            self.slots[id.0] = None;
            self.open[id.0] = false;
            self.root = self.delete_at(self.root, (start, id.0));
            self.live -= 1;
        } else if let Some(pos) = self.ready_tail.iter().position(|&(_, t)| t as usize == id.0) {
            // Tail members are pruned physically (same policy as the dual
            // heap's `ready_tail`).
            self.ready_tail.remove(pos);
        }
    }

    fn eligibility_threshold(&mut self, v: f64) -> Option<f64> {
        self.min_start().map(|smin| v.max(smin))
    }

    fn pop_min_finish(&mut self, thr: f64) -> Option<SessionId> {
        let best = self.query_best(thr)?;
        self.slots[best.id.0] = None;
        self.root = self.delete_at(self.root, (best.start, best.id.0));
        self.live -= 1;
        Some(best.id)
    }

    fn len(&self) -> usize {
        self.live
    }

    fn clear(&mut self) {
        self.arena.clear();
        self.free.clear();
        self.root = None;
        self.slots.fill(None);
        self.live = 0;
        self.ready_tail.clear();
        self.open.fill(false);
    }
}

impl PifoBackend for TreapEligibleSet {
    fn backend_name(&self) -> &'static str {
        "treap"
    }

    fn ensure_sessions(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, None);
            self.open.resize(n, false);
        }
    }

    /// The treap orders strictly by [`FinishKey`] — `(primary, id)` — so it
    /// can only back rank programs whose secondary key is always zero
    /// (WF²Q+/WF²Q gated ranks, WFQ/FIFO/DRR/RR open ranks). SCFQ and SFQ
    /// carry a live secondary and are rejected by the debug assertion;
    /// [`crate::MixedScheduler`] only exposes the treap under WF²Q+.
    fn insert_ranked(&mut self, id: SessionId, elig: Option<f64>, primary: f64, secondary: f64) {
        debug_assert!(
            secondary == 0.0,
            "treap backend requires zero secondary keys (got {secondary} for {id:?})"
        );
        match elig {
            Some(start) => EligibleSet::insert(self, id, start, primary),
            None => {
                debug_assert!(
                    self.slots.get(id.0).copied().flatten().is_none()
                        && !self.ready_tail.iter().any(|&(_, t)| t as usize == id.0),
                    "session {id:?} inserted twice"
                );
                // In-order open ranks ride the sorted tail in O(1); only
                // out-of-order ones pay the treap's O(log N), parked at the
                // always-eligible sentinel start.
                match self.ready_tail.back() {
                    Some(&(bp, bi)) if (primary, id.0 as u32) < (bp, bi) => {
                        EligibleSet::insert(self, id, OPEN_START, primary);
                    }
                    _ => self.ready_tail.push_back((primary, id.0 as u32)),
                }
            }
        }
    }

    fn push_monotone(&mut self, id: SessionId, primary: f64, secondary: f64) {
        debug_assert!(
            secondary == 0.0,
            "treap backend requires zero secondary keys (got {secondary} for {id:?})"
        );
        debug_assert!(
            primary.is_finite(),
            "bad rank {primary} for session {id:?}"
        );
        let e = (primary, id.0 as u32);
        match self.ready_tail.back() {
            Some(&b) if e < b => {
                debug_assert!(
                    self.ready_tail.front().is_none_or(|&f| e <= f),
                    "MONOTONE_RANKS violated: rank between the tail front and back"
                );
                self.ready_tail.push_front(e);
            }
            _ => self.ready_tail.push_back(e),
        }
    }

    fn pop_monotone(&mut self) -> Option<SessionId> {
        debug_assert!(
            self.live == 0,
            "MONOTONE_RANKS program has treap entries"
        );
        self.ready_tail
            .pop_front()
            .map(|(_, id)| SessionId(id as usize))
    }

    fn pop_min_ranked(&mut self) -> Option<SessionId> {
        PifoBackend::pop_eligible(self, f64::INFINITY)
    }

    fn clamp_threshold(&mut self, v: f64) -> Option<f64> {
        if !self.ready_tail.is_empty() {
            // Tail members are open: Smin is effectively -inf, the clamp
            // degenerates to v itself.
            return Some(v);
        }
        EligibleSet::eligibility_threshold(self, v)
    }

    fn pop_eligible(&mut self, thr: f64) -> Option<SessionId> {
        let tree_best = self.query_best(thr);
        let tail_best = self.tail_front_key();
        let from_tree = match (&tree_best, &tail_best) {
            (Some(t), Some(f)) => t.better_than(f),
            (Some(_), None) => true,
            _ => false,
        };
        if from_tree {
            let best = tree_best?;
            self.slots[best.id.0] = None;
            self.open[best.id.0] = false;
            self.root = self.delete_at(self.root, (best.start, best.id.0));
            self.live -= 1;
            Some(best.id)
        } else {
            self.ready_tail
                .pop_front()
                .map(|(_, id)| SessionId(id as usize))
        }
    }

    fn members_in_order(&self) -> Vec<(SessionId, Option<f64>, f64, f64)> {
        // Same shape as the dual heap's snapshot: open members first sorted
        // by rank (admitted members stay admitted under monotone
        // thresholds), then gated members with their eligibility keys. The
        // id-indexed slot scan makes the order a pure function of the live
        // membership.
        let mut open: Vec<(f64, u32)> = self.ready_tail.iter().copied().collect();
        let mut gated: Vec<(SessionId, Option<f64>, f64, f64)> = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let Some((start, finish)) = *slot else { continue };
            if self.open[i] {
                open.push((finish, i as u32));
            } else {
                gated.push((SessionId(i), Some(start), finish, 0.0));
            }
        }
        open.sort_by(|a, b| {
            a.partial_cmp(b)
                // lint:allow(L002): cold snapshot path; ranks are finite
                .expect("ranks must not be NaN")
        });
        let mut out: Vec<(SessionId, Option<f64>, f64, f64)> = open
            .into_iter()
            .map(|(primary, id)| (SessionId(id as usize), None, primary, 0.0))
            .collect();
        out.extend(gated);
        out
    }

    fn members(&self) -> usize {
        self.live + self.ready_tail.len()
    }

    fn reset(&mut self) {
        EligibleSet::clear(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eligible::BruteForceEligibleSet;

    #[test]
    fn matches_module_example() {
        let mut s = TreapEligibleSet::new();
        s.insert(SessionId(0), 2.0, 5.0);
        s.insert(SessionId(1), 0.0, 9.0);
        s.insert(SessionId(2), 0.5, 3.0);
        assert_eq!(s.eligibility_threshold(1.0), Some(1.0));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(2)));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(1.0), None);
        assert_eq!(s.eligibility_threshold(1.0), Some(2.0));
        assert_eq!(s.pop_min_finish(2.0), Some(SessionId(0)));
        assert!(s.is_empty());
    }

    #[test]
    fn agrees_with_brute_force_on_scripted_sequence() {
        // Deterministic pseudo-random workload (no rand dependency).
        let mut rng = XorShift64(42);
        let mut treap = TreapEligibleSet::new();
        let mut oracle = BruteForceEligibleSet::default();
        let mut present = [false; 64];
        let mut thr = 0.0_f64;
        for step in 0..4000 {
            let r = rng.next();
            let id = (r % 64) as usize;
            match (r >> 8) % 3 {
                0 => {
                    if !present[id] {
                        let start = thr + ((r >> 16) % 1000) as f64 / 100.0;
                        let finish = start + 0.01 + ((r >> 32) % 1000) as f64 / 100.0;
                        treap.insert(SessionId(id), start, finish);
                        oracle.insert(SessionId(id), start, finish);
                        present[id] = true;
                    }
                }
                1 => {
                    thr += ((r >> 16) % 300) as f64 / 100.0;
                    let a = treap.pop_min_finish(thr);
                    let b = oracle.pop_min_finish(thr);
                    assert_eq!(a, b, "step {step}");
                    if let Some(id) = a {
                        present[id.0] = false;
                    }
                }
                _ => {
                    let a = treap.eligibility_threshold(thr);
                    let b = oracle.eligibility_threshold(thr);
                    assert_eq!(a, b, "step {step}");
                }
            }
            assert_eq!(treap.len(), oracle.len(), "step {step}");
        }
    }

    #[test]
    fn remove_and_reinsert() {
        let mut s = TreapEligibleSet::new();
        for i in 0..10 {
            s.insert(SessionId(i), i as f64, 10.0 + i as f64);
        }
        s.remove(SessionId(5));
        s.remove(SessionId(0));
        assert_eq!(s.len(), 8);
        assert_eq!(s.eligibility_threshold(0.0), Some(1.0));
        s.insert(SessionId(5), 0.5, 0.75);
        assert_eq!(s.pop_min_finish(0.5), Some(SessionId(5)));
        // Min finish among start <= 3 is id 1 (finish 11).
        assert_eq!(s.pop_min_finish(3.0), Some(SessionId(1)));
    }
}
