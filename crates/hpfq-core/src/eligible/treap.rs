//! Augmented-treap eligible set.
//!
//! Sessions are stored in a randomized balanced BST keyed by
//! `(start tag, session id)`. Every node caches the minimum finish key of
//! its subtree, so *"minimum finish among start ≤ thr"* is answered in one
//! O(log N) descent without moving elements — the alternative O(log N)
//! realization of the paper's §3.4 complexity claim, benchmarked against the
//! dual-heap structure in the `eligible_set` ablation.

use super::{EligibleSet, FinishKey};
use crate::scheduler::SessionId;
use crate::vtime;

type Link = Option<usize>;

#[derive(Debug, Clone)]
struct Node {
    start: f64,
    finish: f64,
    id: SessionId,
    prio: u64,
    left: Link,
    right: Link,
    /// Minimum finish key in this node's subtree (including itself).
    min_fk: FinishKey,
}

impl Node {
    fn own_key(&self) -> FinishKey {
        FinishKey {
            finish: self.finish,
            start: self.start,
            id: self.id,
        }
    }
}

/// Small deterministic xorshift64* generator for treap priorities; avoids a
/// dependency on `rand` in the core crate and keeps runs reproducible.
#[derive(Debug, Clone)]
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct TreapEligibleSet {
    arena: Vec<Node>,
    free: Vec<usize>,
    root: Link,
    /// Per-session membership: `(start, finish)` while present.
    slots: Vec<Option<(f64, f64)>>,
    live: usize,
    rng: XorShift64,
}

impl Default for TreapEligibleSet {
    fn default() -> Self {
        Self::new()
    }
}

impl TreapEligibleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TreapEligibleSet {
            arena: Vec::new(),
            free: Vec::new(),
            root: None,
            slots: Vec::new(),
            live: 0,
            rng: XorShift64(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn key(&self, n: usize) -> (f64, usize) {
        (self.arena[n].start, self.arena[n].id.0)
    }

    fn pull(&mut self, n: usize) {
        let mut best = self.arena[n].own_key();
        for child in [self.arena[n].left, self.arena[n].right]
            .into_iter()
            .flatten()
        {
            let ck = self.arena[child].min_fk;
            if ck.better_than(&best) {
                best = ck;
            }
        }
        self.arena[n].min_fk = best;
    }

    fn alloc(&mut self, id: SessionId, start: f64, finish: f64) -> usize {
        let prio = self.rng.next();
        let node = Node {
            start,
            finish,
            id,
            prio,
            left: None,
            right: None,
            min_fk: FinishKey { finish, start, id },
        };
        if let Some(i) = self.free.pop() {
            self.arena[i] = node;
            i
        } else {
            self.arena.push(node);
            self.arena.len() - 1
        }
    }

    fn insert_at(&mut self, root: Link, n: usize) -> usize {
        let Some(r) = root else { return n };
        if self.key(n) < self.key(r) {
            let nl = self.insert_at(self.arena[r].left, n);
            self.arena[r].left = Some(nl);
            if self.arena[nl].prio > self.arena[r].prio {
                // Rotate right: nl becomes the root of this subtree.
                self.arena[r].left = self.arena[nl].right;
                self.arena[nl].right = Some(r);
                self.pull(r);
                self.pull(nl);
                nl
            } else {
                self.pull(r);
                r
            }
        } else {
            let nr = self.insert_at(self.arena[r].right, n);
            self.arena[r].right = Some(nr);
            if self.arena[nr].prio > self.arena[r].prio {
                // Rotate left.
                self.arena[r].right = self.arena[nr].left;
                self.arena[nr].left = Some(r);
                self.pull(r);
                self.pull(nr);
                nr
            } else {
                self.pull(r);
                r
            }
        }
    }

    /// Merges two treaps where every key in `l` is smaller than every key in
    /// `r`.
    fn merge(&mut self, l: Link, r: Link) -> Link {
        match (l, r) {
            (None, r) => r,
            (l, None) => l,
            (Some(a), Some(b)) => {
                if self.arena[a].prio > self.arena[b].prio {
                    let m = self.merge(self.arena[a].right, Some(b));
                    self.arena[a].right = m;
                    self.pull(a);
                    Some(a)
                } else {
                    let m = self.merge(Some(a), self.arena[b].left);
                    self.arena[b].left = m;
                    self.pull(b);
                    Some(b)
                }
            }
        }
    }

    fn delete_at(&mut self, root: Link, key: (f64, usize)) -> Link {
        // lint:allow(L002): callers pass keys recorded in slots at insert
        let r = root.expect("key to delete must be present");
        let rk = self.key(r);
        if key == rk {
            let merged = self.merge(self.arena[r].left, self.arena[r].right);
            self.free.push(r);
            merged
        } else if key < rk {
            let nl = self.delete_at(self.arena[r].left, key);
            self.arena[r].left = nl;
            self.pull(r);
            Some(r)
        } else {
            let nr = self.delete_at(self.arena[r].right, key);
            self.arena[r].right = nr;
            self.pull(r);
            Some(r)
        }
    }

    /// Minimum-finish key among members with `start <= thr`.
    fn query_best(&self, thr: f64) -> Option<FinishKey> {
        let mut best: Option<FinishKey> = None;
        let consider = |k: FinishKey, best: &mut Option<FinishKey>| {
            if best.as_ref().is_none_or(|b| k.better_than(b)) {
                *best = Some(k);
            }
        };
        let mut cur = self.root;
        while let Some(n) = cur {
            let node = &self.arena[n];
            // Exact threshold test — see DualHeapEligibleSet::migrate.
            if vtime::exactly_le(node.start, thr) {
                // The node itself and its whole left subtree are eligible.
                consider(node.own_key(), &mut best);
                if let Some(l) = node.left {
                    consider(self.arena[l].min_fk, &mut best);
                }
                cur = node.right;
            } else {
                cur = node.left;
            }
        }
        best
    }

    fn min_start(&self) -> Option<f64> {
        let mut cur = self.root?;
        while let Some(l) = self.arena[cur].left {
            cur = l;
        }
        Some(self.arena[cur].start)
    }
}

impl EligibleSet for TreapEligibleSet {
    fn insert(&mut self, id: SessionId, start: f64, finish: f64) {
        assert!(
            start.is_finite() && finish.is_finite() && vtime::exactly_le(start, finish),
            "bad tags ({start}, {finish}) for session {id:?}"
        );
        if id.0 >= self.slots.len() {
            self.slots.resize(id.0 + 1, None);
        }
        assert!(self.slots[id.0].is_none(), "session {id:?} inserted twice");
        self.slots[id.0] = Some((start, finish));
        let n = self.alloc(id, start, finish);
        self.root = Some(self.insert_at(self.root, n));
        self.live += 1;
    }

    fn remove(&mut self, id: SessionId) {
        if let Some(Some((start, _))) = self.slots.get(id.0).copied() {
            self.slots[id.0] = None;
            self.root = self.delete_at(self.root, (start, id.0));
            self.live -= 1;
        }
    }

    fn eligibility_threshold(&mut self, v: f64) -> Option<f64> {
        self.min_start().map(|smin| v.max(smin))
    }

    fn pop_min_finish(&mut self, thr: f64) -> Option<SessionId> {
        let best = self.query_best(thr)?;
        self.slots[best.id.0] = None;
        self.root = self.delete_at(self.root, (best.start, best.id.0));
        self.live -= 1;
        Some(best.id)
    }

    fn len(&self) -> usize {
        self.live
    }

    fn clear(&mut self) {
        self.arena.clear();
        self.free.clear();
        self.root = None;
        self.slots.fill(None);
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eligible::BruteForceEligibleSet;

    #[test]
    fn matches_module_example() {
        let mut s = TreapEligibleSet::new();
        s.insert(SessionId(0), 2.0, 5.0);
        s.insert(SessionId(1), 0.0, 9.0);
        s.insert(SessionId(2), 0.5, 3.0);
        assert_eq!(s.eligibility_threshold(1.0), Some(1.0));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(2)));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(1.0), None);
        assert_eq!(s.eligibility_threshold(1.0), Some(2.0));
        assert_eq!(s.pop_min_finish(2.0), Some(SessionId(0)));
        assert!(s.is_empty());
    }

    #[test]
    fn agrees_with_brute_force_on_scripted_sequence() {
        // Deterministic pseudo-random workload (no rand dependency).
        let mut rng = XorShift64(42);
        let mut treap = TreapEligibleSet::new();
        let mut oracle = BruteForceEligibleSet::default();
        let mut present = [false; 64];
        let mut thr = 0.0_f64;
        for step in 0..4000 {
            let r = rng.next();
            let id = (r % 64) as usize;
            match (r >> 8) % 3 {
                0 => {
                    if !present[id] {
                        let start = thr + ((r >> 16) % 1000) as f64 / 100.0;
                        let finish = start + 0.01 + ((r >> 32) % 1000) as f64 / 100.0;
                        treap.insert(SessionId(id), start, finish);
                        oracle.insert(SessionId(id), start, finish);
                        present[id] = true;
                    }
                }
                1 => {
                    thr += ((r >> 16) % 300) as f64 / 100.0;
                    let a = treap.pop_min_finish(thr);
                    let b = oracle.pop_min_finish(thr);
                    assert_eq!(a, b, "step {step}");
                    if let Some(id) = a {
                        present[id.0] = false;
                    }
                }
                _ => {
                    let a = treap.eligibility_threshold(thr);
                    let b = oracle.eligibility_threshold(thr);
                    assert_eq!(a, b, "step {step}");
                }
            }
            assert_eq!(treap.len(), oracle.len(), "step {step}");
        }
    }

    #[test]
    fn remove_and_reinsert() {
        let mut s = TreapEligibleSet::new();
        for i in 0..10 {
            s.insert(SessionId(i), i as f64, 10.0 + i as f64);
        }
        s.remove(SessionId(5));
        s.remove(SessionId(0));
        assert_eq!(s.len(), 8);
        assert_eq!(s.eligibility_threshold(0.0), Some(1.0));
        s.insert(SessionId(5), 0.5, 0.75);
        assert_eq!(s.pop_min_finish(0.5), Some(SessionId(5)));
        // Min finish among start <= 3 is id 1 (finish 11).
        assert_eq!(s.pop_min_finish(3.0), Some(SessionId(1)));
    }
}
