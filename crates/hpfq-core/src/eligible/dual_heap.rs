//! Dual-heap eligible set: the structure used by production WF²Q+
//! implementations.
//!
//! Sessions whose start tag exceeds the highest threshold seen so far live
//! in a *pending* min-heap ordered by start tag; the rest live in a *ready*
//! min-heap ordered by finish tag. Each [`EligibleSet::pop_min_finish`] call
//! first migrates every pending session whose start tag is within the
//! threshold, then pops the ready heap. Since virtual time (and hence the
//! thresholds) is monotone within a busy period, each session migrates at
//! most once per backlog episode, giving amortized O(log N) per operation.
//!
//! Removal is lazy *for the heaps*: heap entries carry a per-session
//! generation number, [`EligibleSet::remove`] bumps it, and stale entries
//! are skipped on pop. The monotone tail is instead pruned physically on
//! the (cold) remove path, so the per-packet tail pop never touches the
//! generation array. Pops remove entries physically everywhere, so neither
//! insertion nor popping needs a generation bump.
//!
//! The per-session bookkeeping is laid out structure-of-arrays: membership
//! state, start tags, finish tags, and secondary ranks live in parallel
//! `Vec`s indexed by session id, and a heap entry carries only its ordering
//! key pair plus a narrowed `(id, generation)` word. Sift operations
//! therefore move 24-byte entries instead of 48-byte ones, and the migrate loop's start-tag scan
//! walks a dense `f64` array — the hot-path layout the scaling sweep in
//! `hpfq-bench` measures.
//!
//! Besides the [`EligibleSet`] trait (start/finish tags, ties by session
//! id), the set exposes a generalized *ranked* interface for the PIFO
//! substrate ([`crate::pifo`]): [`DualHeapEligibleSet::insert_ranked`]
//! takes an optional eligibility key (absent = immediately eligible, as in
//! the un-gated policies WFQ/SCFQ/SFQ/FIFO/DRR) and a `(primary,
//! secondary)` rank pair ordered lexicographically with ties broken by
//! session id — exactly the `tag_heap` order, so both legacy backing
//! structures collapse onto this one.
//!
//! Immediately-eligible inserts whose ranks arrive in nondecreasing order
//! append to a sorted *monotone tail* deque instead of the ready heap
//! (pops take the smaller of the two fronts). Ring disciplines — FIFO
//! offer order, DRR rotation — emit exactly such monotone sequence ranks,
//! so their steady-state cost stays O(1) per operation, matching the
//! `VecDeque` rings of the hand-rolled schedulers they replace.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use super::{EligibleSet, PifoBackend};
use crate::scheduler::SessionId;
use crate::vtime;

/// Heap entry; ordering is inverted so `BinaryHeap` (a max-heap) acts as a
/// min-heap on `(key, secondary, id)`. The key is the eligibility (start)
/// tag in the pending heap — where `secondary` is held at 0 — and the
/// primary (finish) rank in the ready heap; the id tie-break reproduces the
/// session-index order of the paper's Fig. 2 timelines.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    key: f64,
    secondary: f64,
    /// Session id, narrowed to keep the entry at 24 bytes (the driver
    /// registers sessions up front; more than `u32::MAX` of them would
    /// exhaust memory long before the narrowing matters).
    id: u32,
    generation: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: smaller (key, secondary, id) is "greater" for the heap.
        let lhs = (other.key, other.secondary, other.id);
        let rhs = (self.key, self.secondary, self.id);
        lhs.partial_cmp(&rhs)
            // lint:allow(L002): insert() asserts finite tags — total order
            .expect("tags must not be NaN (asserted on insert)")
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Membership state only — the tags live in the parallel `starts` /
/// `finishes` arrays, so this stays a one-byte fieldless enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Absent,
    Pending,
    Ready,
}

/// See the [module documentation](self).
#[derive(Debug, Default, Clone)]
pub struct DualHeapEligibleSet {
    /// Min-heap on start tag of not-yet-eligible sessions.
    pending: BinaryHeap<Entry>,
    /// Min-heap on finish tag of eligible sessions.
    ready: BinaryHeap<Entry>,
    /// Sorted monotone tail of the eligible set: immediately-eligible
    /// inserts whose `(key, secondary, id)` rank is >= the current back
    /// land here in O(1). Pops compare this front against the ready heap's
    /// top, so the union still pops in global rank order.
    ready_tail: VecDeque<Entry>,
    /// Per-session membership state, indexed by session id.
    state: Vec<Slot>,
    /// Per-session start tags (valid while `state` is not `Absent`).
    starts: Vec<f64>,
    /// Per-session finish tags (valid while `state` is not `Absent`).
    finishes: Vec<f64>,
    /// Per-session generation counters invalidating stale heap entries.
    generations: Vec<u32>,
    /// Number of stale (generation-mismatched) entries still parked in the
    /// two heaps. Membership count is derived (`len()` subtracts this from
    /// the container sizes), so the per-packet insert/pop paths never
    /// maintain a live counter.
    stale: usize,
}

impl DualHeapEligibleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the per-session arrays for ids `< n` so the ranked hot
    /// path can skip the bounds-growth check (the driver registers every
    /// session before scheduling starts).
    pub(crate) fn ensure_sessions(&mut self, n: usize) {
        if n > 0 {
            self.ensure(SessionId(n - 1));
        }
    }

    fn ensure(&mut self, id: SessionId) {
        if id.0 >= self.state.len() {
            self.state.resize(id.0 + 1, Slot::Absent);
            self.starts.resize(id.0 + 1, 0.0);
            self.finishes.resize(id.0 + 1, 0.0);
            self.generations.resize(id.0 + 1, 0);
            debug_assert!(
                id.0 <= u32::MAX as usize,
                "session id overflows entry narrowing"
            );
        }
    }

    /// Inserts a member under the generalized PIFO rank model: an optional
    /// eligibility key (`None` = immediately eligible — the member goes
    /// straight to the ready heap, like a `tag_heap` push) and a
    /// lexicographic `(primary, secondary)` rank pair, ties by session id.
    ///
    /// [`EligibleSet::insert`] is the `(Some(start), finish, 0.0)` special
    /// case; the monotone-threshold contract of
    /// [`EligibleSet::pop_min_finish`] applies to eligibility keys exactly
    /// as it does to start tags. Gated inserts order the pending heap by
    /// `(eligibility, secondary, id)`; every in-tree gated rank carries a
    /// zero secondary, reproducing the legacy `(start, id)` order.
    ///
    /// This is the per-packet hot path of the PIFO substrate, so the rank
    /// validity checks (finite, not already a member) are debug assertions;
    /// the trait method keeps its release-mode tag assertion.
    #[inline]
    pub(crate) fn insert_ranked(
        &mut self,
        id: SessionId,
        elig: Option<f64>,
        primary: f64,
        secondary: f64,
    ) {
        debug_assert!(
            primary.is_finite() && secondary.is_finite() && elig.is_none_or(f64::is_finite),
            "bad rank ({elig:?}, {primary}, {secondary}) for session {id:?}"
        );
        debug_assert!(
            id.0 < self.state.len(),
            "session {id:?} not registered via ensure_sessions"
        );
        debug_assert_eq!(
            self.state[id.0],
            Slot::Absent,
            "session {id:?} inserted twice"
        );
        // No generation bump: a member leaves either by pop (entry removed
        // physically, nothing left to invalidate) or by remove() (which
        // bumps). The current generation is always newer than any stale
        // heap entry this id may have left behind.
        let generation = self.generations[id.0];
        match elig {
            Some(start) => {
                self.state[id.0] = Slot::Pending;
                self.starts[id.0] = start;
                self.finishes[id.0] = primary;
                self.pending.push(Entry {
                    key: start,
                    secondary,
                    id: id.0 as u32,
                    generation,
                });
            }
            None => {
                self.state[id.0] = Slot::Ready;
                let e = Entry {
                    key: primary,
                    secondary,
                    id: id.0 as u32,
                    generation,
                };
                // Monotone tail: a rank >= the current back appends in
                // O(1); only out-of-order ranks pay the heap's O(log N).
                match self.ready_tail.back() {
                    Some(b) if (e.key, e.secondary, e.id) < (b.key, b.secondary, b.id) => {
                        self.ready.push(e);
                    }
                    _ => self.ready_tail.push_back(e),
                }
            }
        }
    }

    /// Ring-discipline insert: the caller promises (via
    /// [`crate::pifo::RankProgram::MONOTONE_RANKS`]) that every rank is
    /// open and is either >= everything queued (a fresh sequence value —
    /// the common case, appended to the tail back) or <= everything queued
    /// (a re-offered front, e.g. DRR's in-deficit continuation — pushed
    /// back onto the tail front). Either way the tail stays sorted and the
    /// heaps stay empty, so [`Self::pop_monotone`] is a single deque pop.
    #[inline]
    pub(crate) fn push_monotone(&mut self, id: SessionId, primary: f64, secondary: f64) {
        debug_assert!(
            primary.is_finite() && secondary.is_finite(),
            "bad rank ({primary}, {secondary}) for session {id:?}"
        );
        debug_assert!(
            id.0 < self.state.len(),
            "session {id:?} not registered via ensure_sessions"
        );
        debug_assert_eq!(
            self.state[id.0],
            Slot::Absent,
            "session {id:?} inserted twice"
        );
        let e = Entry {
            key: primary,
            secondary,
            id: id.0 as u32,
            // Tail entries' generation is never read (tail pops skip the
            // check, remove() prunes physically by id), so skip the load.
            generation: 0,
        };
        // The membership byte is only read by EligibleSet::remove(), which
        // the PIFO driver — the sole caller of the monotone interface —
        // never uses; keep it consistent for the debug assertions only.
        #[cfg(debug_assertions)]
        {
            self.state[id.0] = Slot::Ready;
        }
        match self.ready_tail.back() {
            Some(b) if (e.key, e.secondary, e.id) < (b.key, b.secondary, b.id) => {
                debug_assert!(
                    self.ready_tail
                        .front()
                        .is_none_or(|f| (e.key, e.secondary, e.id) <= (f.key, f.secondary, f.id)),
                    "MONOTONE_RANKS violated: rank between the tail front and back"
                );
                self.ready_tail.push_front(e);
            }
            _ => self.ready_tail.push_back(e),
        }
    }

    /// Pop for `MONOTONE_RANKS` programs: the heaps are provably empty (no
    /// gated or out-of-order insert ever happened), so the minimum rank is
    /// the tail front — one deque pop, exactly a legacy ring.
    #[inline]
    pub(crate) fn pop_monotone(&mut self) -> Option<SessionId> {
        debug_assert!(
            self.pending.is_empty() && self.ready.is_empty(),
            "MONOTONE_RANKS program has heap entries"
        );
        let top = self.ready_tail.pop_front()?;
        debug_assert_eq!(self.state[top.id as usize], Slot::Ready);
        // Debug-only for the same reason as in push_monotone.
        #[cfg(debug_assertions)]
        {
            self.state[top.id as usize] = Slot::Absent;
        }
        Some(SessionId(top.id as usize))
    }

    /// Pops the member with the minimum `(primary, secondary, id)` rank
    /// regardless of eligibility keys — the un-gated companion of
    /// [`EligibleSet::pop_min_finish`], used by rank programs whose
    /// [`crate::pifo::Threshold::All`] admits every member.
    pub(crate) fn pop_min_ranked(&mut self) -> Option<SessionId> {
        // Admit everything: members inserted with an eligibility key still
        // participate (a custom rank program may mix gated and un-gated
        // ranks); for purely un-gated programs `pending` is empty and this
        // is a single peek.
        EligibleSet::pop_min_finish(self, f64::INFINITY)
    }

    /// Drops stale entries from the top of `pending` and migrates every
    /// current entry with `start <= thr` into `ready`.
    fn migrate(&mut self, thr: f64) {
        while let Some(top) = self.pending.peek().copied() {
            if self.generations[top.id as usize] != top.generation {
                self.pending.pop();
                self.stale -= 1;
                continue;
            }
            // Exact: the threshold derives from the same tag arithmetic, and
            // blurring it would migrate sessions early and reorder dispatch.
            if vtime::exactly_lt(thr, top.key) {
                break;
            }
            self.pending.pop();
            debug_assert_eq!(self.state[top.id as usize], Slot::Pending);
            debug_assert_eq!(self.starts[top.id as usize], top.key);
            self.state[top.id as usize] = Slot::Ready;
            self.ready.push(Entry {
                key: self.finishes[top.id as usize],
                secondary: top.secondary,
                id: top.id,
                generation: top.generation,
            });
        }
    }

    /// Minimum start tag among pending members, pruning stale entries.
    fn pending_min_start(&mut self) -> Option<f64> {
        while let Some(top) = self.pending.peek().copied() {
            if self.generations[top.id as usize] == top.generation {
                return Some(top.key);
            }
            self.pending.pop();
            self.stale -= 1;
        }
        None
    }

    /// Live minimum of the ready heap, pruning stale tops.
    #[inline]
    fn live_heap_top(&mut self) -> Option<Entry> {
        while let Some(top) = self.ready.peek().copied() {
            if self.generations[top.id as usize] == top.generation {
                return Some(top);
            }
            self.ready.pop();
            self.stale -= 1;
        }
        None
    }

    /// Front of the monotone tail. Always live: remove() prunes the tail
    /// physically, so tail entries never go stale.
    #[inline]
    fn live_tail_front(&mut self) -> Option<Entry> {
        self.ready_tail.front().copied()
    }

    /// Whether any live member is eligible (ready heap or monotone tail).
    fn ready_nonempty(&mut self) -> bool {
        self.live_heap_top().is_some() || self.live_tail_front().is_some()
    }

    /// Snapshot of the live membership as re-insertable `(id, elig,
    /// primary, secondary)` ranks: eligible members first, sorted by rank
    /// and saved *open* (they were already admitted, and thresholds are
    /// monotone within a busy period, so unconditional re-admission is
    /// behavior-identical), then gated members with their eligibility
    /// keys. Replaying the list through [`Self::insert_ranked`] in order
    /// reproduces the structure — ring-discipline members re-form the pure
    /// monotone tail because they arrive open and sorted. Stale heap
    /// entries are skipped.
    pub(crate) fn members_in_order(&self) -> Vec<(SessionId, Option<f64>, f64, f64)> {
        let live = |e: &Entry| self.generations[e.id as usize] == e.generation;
        let mut open: Vec<&Entry> = self.ready.iter().filter(|e| live(e)).collect();
        open.extend(self.ready_tail.iter());
        open.sort_by(|a, b| {
            (a.key, a.secondary, a.id)
                .partial_cmp(&(b.key, b.secondary, b.id))
                // lint:allow(L002): cold snapshot path; ranks are finite
                .expect("ranks must not be NaN")
        });
        let mut out: Vec<(SessionId, Option<f64>, f64, f64)> = open
            .iter()
            .map(|e| (SessionId(e.id as usize), None, e.key, e.secondary))
            .collect();
        for e in self.pending.iter().filter(|e| live(e)) {
            out.push((
                SessionId(e.id as usize),
                Some(e.key),
                self.finishes[e.id as usize],
                e.secondary,
            ));
        }
        out
    }
}

impl EligibleSet for DualHeapEligibleSet {
    fn insert(&mut self, id: SessionId, start: f64, finish: f64) {
        assert!(
            start.is_finite() && finish.is_finite() && vtime::exactly_le(start, finish),
            "bad tags ({start}, {finish}) for session {id:?}"
        );
        self.ensure(id);
        self.insert_ranked(id, Some(start), finish, 0.0);
    }

    fn remove(&mut self, id: SessionId) {
        self.ensure(id);
        if self.state[id.0] != Slot::Absent {
            self.state[id.0] = Slot::Absent;
            self.generations[id.0] += 1; // invalidates any heap entry
                                         // The monotone tail is never lazily pruned (its per-packet pop
                                         // skips the generation check), so delete physically here on
                                         // the cold path. A member not in the tail lives in one of the
                                         // heaps: its entry just went stale under the generation bump.
            if let Some(pos) = self.ready_tail.iter().position(|e| e.id as usize == id.0) {
                self.ready_tail.remove(pos);
            } else {
                self.stale += 1;
            }
        }
    }

    fn eligibility_threshold(&mut self, v: f64) -> Option<f64> {
        if EligibleSet::len(self) == 0 {
            return None;
        }
        // Any ready member has start <= some earlier threshold <= v
        // (thresholds are monotone within a busy period), so Smin <= v and
        // the clamp is v itself. Otherwise Smin is the pending minimum.
        if self.ready_nonempty() {
            Some(v)
        } else {
            let smin = self
                .pending_min_start()
                // lint:allow(L002): len() > 0 and ready is empty, so pending
                // holds at least one current-generation entry
                .expect("live members must be in a heap");
            Some(v.max(smin))
        }
    }

    #[inline]
    fn pop_min_finish(&mut self, thr: f64) -> Option<SessionId> {
        self.migrate(thr);
        // Ring-discipline fast path: everything lives in the monotone tail
        // (FIFO/DRR steady state), so a pop is one deque front like the
        // legacy rings — tail entries are always live (see remove()), so
        // no generation check either.
        if self.ready.is_empty() {
            let top = self.ready_tail.pop_front()?;
            debug_assert_eq!(self.state[top.id as usize], Slot::Ready);
            self.state[top.id as usize] = Slot::Absent;
            return Some(SessionId(top.id as usize));
        }
        let take_tail = match (self.live_heap_top(), self.live_tail_front()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(h), Some(t)) => (t.key, t.secondary, t.id) < (h.key, h.secondary, h.id),
        };
        let top = if take_tail {
            self.ready_tail.pop_front()
        } else {
            self.ready.pop()
        };
        // Unreachable (both fronts were just pruned live), kept panic-free.
        let top = top?;
        debug_assert_eq!(self.state[top.id as usize], Slot::Ready);
        self.state[top.id as usize] = Slot::Absent;
        Some(SessionId(top.id as usize))
    }

    fn len(&self) -> usize {
        // Derived rather than maintained: every container entry is a live
        // member except the heap entries orphaned by remove().
        self.pending.len() + self.ready.len() + self.ready_tail.len() - self.stale
    }

    fn clear(&mut self) {
        self.pending.clear();
        self.ready.clear();
        self.ready_tail.clear();
        self.state.fill(Slot::Absent);
        // Bump generations rather than zeroing so pre-clear entries can
        // never be mistaken for live ones.
        for g in &mut self.generations {
            *g += 1;
        }
        self.stale = 0;
    }
}

/// The PIFO-backend view: straight delegation to the inherent ranked
/// interface (these methods *are* the trait's reference semantics).
impl PifoBackend for DualHeapEligibleSet {
    fn backend_name(&self) -> &'static str {
        "dual-heap"
    }

    #[inline]
    fn ensure_sessions(&mut self, n: usize) {
        DualHeapEligibleSet::ensure_sessions(self, n);
    }

    #[inline]
    fn insert_ranked(&mut self, id: SessionId, elig: Option<f64>, primary: f64, secondary: f64) {
        DualHeapEligibleSet::insert_ranked(self, id, elig, primary, secondary);
    }

    #[inline]
    fn push_monotone(&mut self, id: SessionId, primary: f64, secondary: f64) {
        DualHeapEligibleSet::push_monotone(self, id, primary, secondary);
    }

    #[inline]
    fn pop_monotone(&mut self) -> Option<SessionId> {
        DualHeapEligibleSet::pop_monotone(self)
    }

    #[inline]
    fn pop_min_ranked(&mut self) -> Option<SessionId> {
        DualHeapEligibleSet::pop_min_ranked(self)
    }

    #[inline]
    fn clamp_threshold(&mut self, v: f64) -> Option<f64> {
        EligibleSet::eligibility_threshold(self, v)
    }

    #[inline]
    fn pop_eligible(&mut self, thr: f64) -> Option<SessionId> {
        EligibleSet::pop_min_finish(self, thr)
    }

    fn members_in_order(&self) -> Vec<(SessionId, Option<f64>, f64, f64)> {
        DualHeapEligibleSet::members_in_order(self)
    }

    #[inline]
    fn members(&self) -> usize {
        EligibleSet::len(self)
    }

    fn reset(&mut self) {
        EligibleSet::clear(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_module_example() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 2.0, 5.0);
        s.insert(SessionId(1), 0.0, 9.0);
        s.insert(SessionId(2), 0.5, 3.0);
        assert_eq!(s.eligibility_threshold(1.0), Some(1.0));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(2)));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(1.0), None);
        assert_eq!(s.eligibility_threshold(1.0), Some(2.0));
        assert_eq!(s.pop_min_finish(2.0), Some(SessionId(0)));
        assert!(s.is_empty());
    }

    #[test]
    fn reinsertion_after_pop() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(4), 0.0, 1.0);
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(4)));
        s.insert(SessionId(4), 1.0, 2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(4)));
    }

    #[test]
    fn remove_is_lazy_but_correct() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.insert(SessionId(1), 0.0, 2.0);
        s.remove(SessionId(0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(0.0), None);
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pop_min_finish(10.0), None);
        s.insert(SessionId(0), 5.0, 6.0);
        assert_eq!(s.eligibility_threshold(0.0), Some(5.0));
        assert_eq!(s.pop_min_finish(5.0), Some(SessionId(0)));
    }

    #[test]
    fn heap_entry_stays_small() {
        // The point of the SoA split: sift operations move (key, secondary,
        // id, generation) only. Guard against fields creeping back in.
        assert_eq!(std::mem::size_of::<Entry>(), 24);
    }

    #[test]
    fn ranked_insert_orders_by_primary_then_secondary_then_id() {
        // SCFQ's tag_heap order: (finish, start, id).
        let mut s = DualHeapEligibleSet::new();
        s.ensure_sessions(4);
        s.insert_ranked(SessionId(0), None, 4.0, 2.0);
        s.insert_ranked(SessionId(1), None, 4.0, 1.0);
        s.insert_ranked(SessionId(3), None, 4.0, 1.0);
        s.insert_ranked(SessionId(2), None, 3.0, 9.0);
        assert_eq!(s.pop_min_ranked(), Some(SessionId(2)));
        assert_eq!(s.pop_min_ranked(), Some(SessionId(1)));
        assert_eq!(s.pop_min_ranked(), Some(SessionId(3)));
        assert_eq!(s.pop_min_ranked(), Some(SessionId(0)));
        assert_eq!(s.pop_min_ranked(), None);
    }

    #[test]
    fn pop_min_ranked_admits_gated_members() {
        let mut s = DualHeapEligibleSet::new();
        s.ensure_sessions(2);
        s.insert_ranked(SessionId(0), Some(10.0), 12.0, 0.0);
        s.insert_ranked(SessionId(1), None, 15.0, 0.0);
        // Ungated pop ignores eligibility: session 0's smaller primary wins
        // even though its eligibility key is far in the future.
        assert_eq!(s.pop_min_ranked(), Some(SessionId(0)));
        assert_eq!(s.pop_min_ranked(), Some(SessionId(1)));
    }

    #[test]
    fn finish_ties_break_by_session_id() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(3), 0.0, 4.0);
        s.insert(SessionId(1), 0.0, 4.0);
        s.insert(SessionId(2), 0.0, 4.0);
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(2)));
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(3)));
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    #[cfg(debug_assertions)] // the double-insert check is a debug_assert
    fn double_insert_panics() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.insert(SessionId(0), 0.0, 2.0);
    }
}
