//! Dual-heap eligible set: the structure used by production WF²Q+
//! implementations.
//!
//! Sessions whose start tag exceeds the highest threshold seen so far live
//! in a *pending* min-heap ordered by start tag; the rest live in a *ready*
//! min-heap ordered by finish tag. Each [`EligibleSet::pop_min_finish`] call
//! first migrates every pending session whose start tag is within the
//! threshold, then pops the ready heap. Since virtual time (and hence the
//! thresholds) is monotone within a busy period, each session migrates at
//! most once per backlog episode, giving amortized O(log N) per operation.
//!
//! Removal is lazy: heap entries carry a per-session generation number and
//! stale entries are skipped on pop.
//!
//! The per-session bookkeeping is laid out structure-of-arrays: membership
//! state, start tags, and finish tags live in three parallel `Vec`s indexed
//! by session id, and a heap entry carries only its one ordering key plus
//! `(id, generation)`. Sift operations therefore move 24-byte entries
//! instead of 40-byte ones, and the migrate loop's start-tag scan walks a
//! dense `f64` array — the hot-path layout the scaling sweep in
//! `hpfq-bench` measures.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use super::EligibleSet;
use crate::scheduler::SessionId;
use crate::vtime;

/// Heap entry; ordering is inverted so `BinaryHeap` (a max-heap) acts as a
/// min-heap on `(key, id)`. The key is the start tag in the pending heap
/// and the finish tag in the ready heap; the id tie-break reproduces the
/// session-index order of the paper's Fig. 2 timelines.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    key: f64,
    id: SessionId,
    generation: u64,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: smaller (key, id) is "greater" for the heap.
        let lhs = (other.key, other.id.0);
        let rhs = (self.key, self.id.0);
        lhs.partial_cmp(&rhs)
            // lint:allow(L002): insert() asserts finite tags — total order
            .expect("tags must not be NaN (asserted on insert)")
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Membership state only — the tags live in the parallel `starts` /
/// `finishes` arrays, so this stays a one-byte fieldless enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Absent,
    Pending,
    Ready,
}

/// See the [module documentation](self).
#[derive(Debug, Default, Clone)]
pub struct DualHeapEligibleSet {
    /// Min-heap on start tag of not-yet-eligible sessions.
    pending: BinaryHeap<Entry>,
    /// Min-heap on finish tag of eligible sessions.
    ready: BinaryHeap<Entry>,
    /// Per-session membership state, indexed by session id.
    state: Vec<Slot>,
    /// Per-session start tags (valid while `state` is not `Absent`).
    starts: Vec<f64>,
    /// Per-session finish tags (valid while `state` is not `Absent`).
    finishes: Vec<f64>,
    /// Per-session generation counters invalidating stale heap entries.
    generations: Vec<u64>,
    /// Number of live members.
    live: usize,
}

impl DualHeapEligibleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, id: SessionId) {
        if id.0 >= self.state.len() {
            self.state.resize(id.0 + 1, Slot::Absent);
            self.starts.resize(id.0 + 1, 0.0);
            self.finishes.resize(id.0 + 1, 0.0);
            self.generations.resize(id.0 + 1, 0);
        }
    }

    /// Drops stale entries from the top of `pending` and migrates every
    /// current entry with `start <= thr` into `ready`.
    fn migrate(&mut self, thr: f64) {
        while let Some(top) = self.pending.peek().copied() {
            if self.generations[top.id.0] != top.generation {
                self.pending.pop();
                continue;
            }
            // Exact: the threshold derives from the same tag arithmetic, and
            // blurring it would migrate sessions early and reorder dispatch.
            if vtime::exactly_lt(thr, top.key) {
                break;
            }
            self.pending.pop();
            debug_assert_eq!(self.state[top.id.0], Slot::Pending);
            debug_assert_eq!(self.starts[top.id.0], top.key);
            self.state[top.id.0] = Slot::Ready;
            self.ready.push(Entry {
                key: self.finishes[top.id.0],
                id: top.id,
                generation: top.generation,
            });
        }
    }

    /// Minimum start tag among pending members, pruning stale entries.
    fn pending_min_start(&mut self) -> Option<f64> {
        while let Some(top) = self.pending.peek().copied() {
            if self.generations[top.id.0] == top.generation {
                return Some(top.key);
            }
            self.pending.pop();
        }
        None
    }

    /// Whether any live member is in the ready heap (prunes stale tops).
    fn ready_nonempty(&mut self) -> bool {
        while let Some(top) = self.ready.peek().copied() {
            if self.generations[top.id.0] == top.generation {
                return true;
            }
            self.ready.pop();
        }
        false
    }
}

impl EligibleSet for DualHeapEligibleSet {
    fn insert(&mut self, id: SessionId, start: f64, finish: f64) {
        assert!(
            start.is_finite() && finish.is_finite() && vtime::exactly_le(start, finish),
            "bad tags ({start}, {finish}) for session {id:?}"
        );
        self.ensure(id);
        assert_eq!(
            self.state[id.0],
            Slot::Absent,
            "session {id:?} inserted twice"
        );
        self.generations[id.0] += 1;
        self.state[id.0] = Slot::Pending;
        self.starts[id.0] = start;
        self.finishes[id.0] = finish;
        self.pending.push(Entry {
            key: start,
            id,
            generation: self.generations[id.0],
        });
        self.live += 1;
    }

    fn remove(&mut self, id: SessionId) {
        self.ensure(id);
        if self.state[id.0] != Slot::Absent {
            self.state[id.0] = Slot::Absent;
            self.generations[id.0] += 1; // invalidates any heap entry
            self.live -= 1;
        }
    }

    fn eligibility_threshold(&mut self, v: f64) -> Option<f64> {
        if self.live == 0 {
            return None;
        }
        // Any ready member has start <= some earlier threshold <= v
        // (thresholds are monotone within a busy period), so Smin <= v and
        // the clamp is v itself. Otherwise Smin is the pending minimum.
        if self.ready_nonempty() {
            Some(v)
        } else {
            let smin = self
                .pending_min_start()
                // lint:allow(L002): live > 0 and ready is empty, so pending
                // holds at least one current-generation entry
                .expect("live members must be in a heap");
            Some(v.max(smin))
        }
    }

    fn pop_min_finish(&mut self, thr: f64) -> Option<SessionId> {
        self.migrate(thr);
        while let Some(top) = self.ready.pop() {
            if self.generations[top.id.0] != top.generation {
                continue;
            }
            debug_assert_eq!(self.state[top.id.0], Slot::Ready);
            self.state[top.id.0] = Slot::Absent;
            self.generations[top.id.0] += 1;
            self.live -= 1;
            return Some(top.id);
        }
        None
    }

    fn len(&self) -> usize {
        self.live
    }

    fn clear(&mut self) {
        self.pending.clear();
        self.ready.clear();
        self.state.fill(Slot::Absent);
        // Bump generations rather than zeroing so pre-clear entries can
        // never be mistaken for live ones.
        for g in &mut self.generations {
            *g += 1;
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_module_example() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 2.0, 5.0);
        s.insert(SessionId(1), 0.0, 9.0);
        s.insert(SessionId(2), 0.5, 3.0);
        assert_eq!(s.eligibility_threshold(1.0), Some(1.0));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(2)));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(1.0), None);
        assert_eq!(s.eligibility_threshold(1.0), Some(2.0));
        assert_eq!(s.pop_min_finish(2.0), Some(SessionId(0)));
        assert!(s.is_empty());
    }

    #[test]
    fn reinsertion_after_pop() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(4), 0.0, 1.0);
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(4)));
        s.insert(SessionId(4), 1.0, 2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(4)));
    }

    #[test]
    fn remove_is_lazy_but_correct() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.insert(SessionId(1), 0.0, 2.0);
        s.remove(SessionId(0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(0.0), None);
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pop_min_finish(10.0), None);
        s.insert(SessionId(0), 5.0, 6.0);
        assert_eq!(s.eligibility_threshold(0.0), Some(5.0));
        assert_eq!(s.pop_min_finish(5.0), Some(SessionId(0)));
    }

    #[test]
    fn heap_entry_stays_small() {
        // The point of the SoA split: sift operations move (key, id,
        // generation) only. Guard against fields creeping back in.
        assert_eq!(std::mem::size_of::<Entry>(), 24);
    }

    #[test]
    fn finish_ties_break_by_session_id() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(3), 0.0, 4.0);
        s.insert(SessionId(1), 0.0, 4.0);
        s.insert(SessionId(2), 0.0, 4.0);
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(2)));
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(3)));
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.insert(SessionId(0), 0.0, 2.0);
    }
}
