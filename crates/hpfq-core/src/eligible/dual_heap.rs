//! Dual-heap eligible set: the structure used by production WF²Q+
//! implementations.
//!
//! Sessions whose start tag exceeds the highest threshold seen so far live
//! in a *pending* min-heap ordered by start tag; the rest live in a *ready*
//! min-heap ordered by finish tag. Each [`EligibleSet::pop_min_finish`] call
//! first migrates every pending session whose start tag is within the
//! threshold, then pops the ready heap. Since virtual time (and hence the
//! thresholds) is monotone within a busy period, each session migrates at
//! most once per backlog episode, giving amortized O(log N) per operation.
//!
//! Removal is lazy: heap entries carry a per-session generation number and
//! stale entries are skipped on pop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use super::EligibleSet;
use crate::scheduler::SessionId;
use crate::vtime;

/// Heap entry; ordering is inverted so `BinaryHeap` (a max-heap) acts as a
/// min-heap on `(key, tiebreak, id)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    key: f64,
    tiebreak: f64,
    id: SessionId,
    generation: u64,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: smaller (key, tiebreak, id) is "greater" for the heap.
        let lhs = (other.key, other.tiebreak, other.id.0);
        let rhs = (self.key, self.tiebreak, self.id.0);
        lhs.partial_cmp(&rhs)
            // lint:allow(L002): insert() asserts finite tags — total order
            .expect("tags must not be NaN (asserted on insert)")
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    Absent,
    Pending { start: f64, finish: f64 },
    Ready,
}

/// See the [module documentation](self).
#[derive(Debug, Default, Clone)]
pub struct DualHeapEligibleSet {
    /// Min-heap on start tag of not-yet-eligible sessions.
    pending: BinaryHeap<Entry>,
    /// Min-heap on finish tag of eligible sessions.
    ready: BinaryHeap<Entry>,
    /// Per-session membership state, indexed by session id.
    slots: Vec<Slot>,
    /// Per-session generation counters invalidating stale heap entries.
    generations: Vec<u64>,
    /// Number of live members.
    live: usize,
}

impl DualHeapEligibleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, id: SessionId) {
        if id.0 >= self.slots.len() {
            self.slots.resize(id.0 + 1, Slot::Absent);
            self.generations.resize(id.0 + 1, 0);
        }
    }

    /// Drops stale entries from the top of `pending` and migrates every
    /// current entry with `start <= thr` into `ready`.
    fn migrate(&mut self, thr: f64) {
        while let Some(top) = self.pending.peek().copied() {
            if self.generations[top.id.0] != top.generation {
                self.pending.pop();
                continue;
            }
            // Exact: the threshold derives from the same tag arithmetic, and
            // blurring it would migrate sessions early and reorder dispatch.
            if vtime::exactly_lt(thr, top.key) {
                break;
            }
            self.pending.pop();
            let Slot::Pending { start, finish } = self.slots[top.id.0] else {
                // lint:allow(L002): generation match implies the slot state;
                // remove() bumps the generation when it clears a slot
                unreachable!("current-generation pending entry must be Pending");
            };
            debug_assert_eq!(start, top.key);
            self.slots[top.id.0] = Slot::Ready;
            // tiebreak pinned to 0 so ready ordering is (finish, id) — the
            // session-index tie-break of the paper's Fig. 2 timelines.
            let _ = start;
            self.ready.push(Entry {
                key: finish,
                tiebreak: 0.0,
                id: top.id,
                generation: top.generation,
            });
        }
    }

    /// Minimum start tag among pending members, pruning stale entries.
    fn pending_min_start(&mut self) -> Option<f64> {
        while let Some(top) = self.pending.peek().copied() {
            if self.generations[top.id.0] == top.generation {
                return Some(top.key);
            }
            self.pending.pop();
        }
        None
    }

    /// Whether any live member is in the ready heap (prunes stale tops).
    fn ready_nonempty(&mut self) -> bool {
        while let Some(top) = self.ready.peek().copied() {
            if self.generations[top.id.0] == top.generation {
                return true;
            }
            self.ready.pop();
        }
        false
    }
}

impl EligibleSet for DualHeapEligibleSet {
    fn insert(&mut self, id: SessionId, start: f64, finish: f64) {
        assert!(
            start.is_finite() && finish.is_finite() && vtime::exactly_le(start, finish),
            "bad tags ({start}, {finish}) for session {id:?}"
        );
        self.ensure(id);
        assert_eq!(
            self.slots[id.0],
            Slot::Absent,
            "session {id:?} inserted twice"
        );
        self.generations[id.0] += 1;
        self.slots[id.0] = Slot::Pending { start, finish };
        self.pending.push(Entry {
            key: start,
            tiebreak: finish,
            id,
            generation: self.generations[id.0],
        });
        self.live += 1;
    }

    fn remove(&mut self, id: SessionId) {
        self.ensure(id);
        if self.slots[id.0] != Slot::Absent {
            self.slots[id.0] = Slot::Absent;
            self.generations[id.0] += 1; // invalidates any heap entry
            self.live -= 1;
        }
    }

    fn eligibility_threshold(&mut self, v: f64) -> Option<f64> {
        if self.live == 0 {
            return None;
        }
        // Any ready member has start <= some earlier threshold <= v
        // (thresholds are monotone within a busy period), so Smin <= v and
        // the clamp is v itself. Otherwise Smin is the pending minimum.
        if self.ready_nonempty() {
            Some(v)
        } else {
            let smin = self
                .pending_min_start()
                // lint:allow(L002): live > 0 and ready is empty, so pending
                // holds at least one current-generation entry
                .expect("live members must be in a heap");
            Some(v.max(smin))
        }
    }

    fn pop_min_finish(&mut self, thr: f64) -> Option<SessionId> {
        self.migrate(thr);
        while let Some(top) = self.ready.pop() {
            if self.generations[top.id.0] != top.generation {
                continue;
            }
            debug_assert_eq!(self.slots[top.id.0], Slot::Ready);
            self.slots[top.id.0] = Slot::Absent;
            self.generations[top.id.0] += 1;
            self.live -= 1;
            return Some(top.id);
        }
        None
    }

    fn len(&self) -> usize {
        self.live
    }

    fn clear(&mut self) {
        self.pending.clear();
        self.ready.clear();
        self.slots.fill(Slot::Absent);
        // Bump generations rather than zeroing so pre-clear entries can
        // never be mistaken for live ones.
        for g in &mut self.generations {
            *g += 1;
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_module_example() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 2.0, 5.0);
        s.insert(SessionId(1), 0.0, 9.0);
        s.insert(SessionId(2), 0.5, 3.0);
        assert_eq!(s.eligibility_threshold(1.0), Some(1.0));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(2)));
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(1.0), None);
        assert_eq!(s.eligibility_threshold(1.0), Some(2.0));
        assert_eq!(s.pop_min_finish(2.0), Some(SessionId(0)));
        assert!(s.is_empty());
    }

    #[test]
    fn reinsertion_after_pop() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(4), 0.0, 1.0);
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(4)));
        s.insert(SessionId(4), 1.0, 2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_min_finish(1.0), Some(SessionId(4)));
    }

    #[test]
    fn remove_is_lazy_but_correct() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.insert(SessionId(1), 0.0, 2.0);
        s.remove(SessionId(0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_min_finish(0.0), Some(SessionId(1)));
        assert_eq!(s.pop_min_finish(0.0), None);
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pop_min_finish(10.0), None);
        s.insert(SessionId(0), 5.0, 6.0);
        assert_eq!(s.eligibility_threshold(0.0), Some(5.0));
        assert_eq!(s.pop_min_finish(5.0), Some(SessionId(0)));
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut s = DualHeapEligibleSet::new();
        s.insert(SessionId(0), 0.0, 1.0);
        s.insert(SessionId(0), 0.0, 2.0);
    }
}
