//! SFQ — Start-time Fair Queueing (Goyal, Vin & Cheng, SIGCOMM '96).
//!
//! A contemporary of WF²Q+ included as an extra baseline (see DESIGN.md
//! §6): tags are computed exactly as in SCFQ, the virtual time is the
//! *start* tag of the packet in service, and the server picks the smallest
//! start tag (ties by finish tag). SFQ is fair and cheap but, like SCFQ and
//! unlike WF²Q+, its delay bound degrades with the number of sessions.

use hpfq_obs::snap::{SnapError, Value};

use crate::scheduler::{
    load_opt_id, load_sessions, save_opt_id, save_sessions, NodeScheduler, SessionId, SessionState,
};
use crate::tag_heap::TagHeap;

/// The SFQ scheduler.
#[derive(Debug, Clone)]
pub struct Sfq {
    rate: f64,
    sessions: Vec<SessionState>,
    /// Backlogged sessions keyed by (start, finish).
    heap: TagHeap,
    /// Virtual time = start tag of the packet most recently dispatched.
    v: f64,
    t: f64,
    in_service: Option<SessionId>,
    backlogged: usize,
}

impl Sfq {
    /// Creates an SFQ server of the given rate.
    pub fn new(rate_bps: f64) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "invalid rate {rate_bps}"
        );
        Sfq {
            rate: rate_bps,
            sessions: Vec::new(),
            heap: TagHeap::new(),
            v: 0.0,
            t: 0.0,
            in_service: None,
            backlogged: 0,
        }
    }

    /// Current reference time.
    pub fn reference_time(&self) -> f64 {
        self.t
    }
}

impl NodeScheduler for Sfq {
    fn rate_bps(&self) -> f64 {
        self.rate
    }

    fn add_session(&mut self, phi: f64) -> SessionId {
        self.sessions.push(SessionState::new(phi, self.rate));
        SessionId(self.sessions.len() - 1)
    }

    fn backlog(&mut self, id: SessionId, head_bits: f64, _ref_now: Option<f64>) {
        let s = &mut self.sessions[id.0];
        debug_assert!(!s.backlogged);
        s.stamp_new_backlog(self.v, head_bits);
        self.heap.push(id, s.start, s.finish);
        self.backlogged += 1;
    }

    fn select_next(&mut self) -> Option<SessionId> {
        debug_assert!(self.in_service.is_none());
        let (id, start, _) = self.heap.pop_min()?;
        self.v = start;
        self.t += self.sessions[id.0].head_bits / self.rate;
        self.in_service = Some(id);
        Some(id)
    }

    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>) {
        debug_assert_eq!(self.in_service, Some(id));
        self.in_service = None;
        match next_head_bits {
            Some(bits) => {
                let s = &mut self.sessions[id.0];
                s.stamp_continuation(bits);
                self.heap.push(id, s.start, s.finish);
            }
            None => {
                self.sessions[id.0].backlogged = false;
                self.backlogged -= 1;
                if self.backlogged == 0 {
                    self.v = 0.0;
                    self.t = 0.0;
                    self.heap.clear();
                    for s in &mut self.sessions {
                        s.reset();
                    }
                }
            }
        }
    }

    fn backlogged(&self) -> usize {
        self.backlogged
    }

    fn virtual_time(&self) -> f64 {
        self.v
    }

    fn phi(&self, id: SessionId) -> f64 {
        self.sessions[id.0].phi
    }

    fn tags(&self, id: SessionId) -> (f64, f64) {
        let s = &self.sessions[id.0];
        (s.start, s.finish)
    }

    fn name(&self) -> &'static str {
        "sfq"
    }

    fn save_state(&self) -> Value {
        Value::map(vec![
            ("rate", Value::F64(self.rate)),
            ("v", Value::F64(self.v)),
            ("t", Value::F64(self.t)),
            ("in_service", save_opt_id(self.in_service)),
            ("sessions", save_sessions(&self.sessions)),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let rate = state.get("rate")?.as_f64()?;
        if rate.to_bits() != self.rate.to_bits() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "sfq rate mismatch: snapshot {rate}, configured {}",
                    self.rate
                ),
            });
        }
        self.sessions = load_sessions(state.get("sessions")?)?;
        self.v = state.get("v")?.as_f64()?;
        self.t = state.get("t")?.as_f64()?;
        self.in_service = load_opt_id(state.get("in_service")?)?;
        self.backlogged = self.sessions.iter().filter(|s| s.backlogged).count();
        self.heap.clear();
        for (i, s) in self.sessions.iter().enumerate() {
            let id = SessionId(i);
            if s.backlogged && self.in_service != Some(id) {
                self.heap.push(id, s.start, s.finish);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_split() {
        let mut s = Sfq::new(1.0);
        let a = s.add_session(0.75);
        let b = s.add_session(0.25);
        s.backlog(a, 1.0, None);
        s.backlog(b, 1.0, None);
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            let id = s.select_next().unwrap();
            counts[id.0] += 1;
            s.requeue(id, Some(1.0));
        }
        assert!((counts[0] as f64 - 300.0).abs() <= 2.0, "{counts:?}");
    }

    /// A newcomer is tagged from the start tag of the in-service packet, so
    /// it begins service ahead of sessions that have built up large finish
    /// tags — SFQ's low-latency property for newly active sessions.
    #[test]
    fn newcomer_starts_promptly() {
        let mut s = Sfq::new(1.0);
        let a = s.add_session(0.5);
        let b = s.add_session(0.5);
        s.backlog(a, 1.0, None);
        // Serve a for a while, accumulating start tags 0, 2, 4, ...
        for _ in 0..5 {
            let id = s.select_next().unwrap();
            assert_eq!(id, a);
            s.requeue(id, Some(1.0));
        }
        // V is the start tag of a's 5th packet = 8.
        assert_eq!(s.virtual_time(), 8.0);
        s.backlog(b, 1.0, None);
        assert_eq!(s.tags(b).0, 8.0);
        // Next dispatch: a's head has start 10, b's start 8 → b wins.
        assert_eq!(s.select_next(), Some(b));
        s.requeue(b, None);
    }
}
