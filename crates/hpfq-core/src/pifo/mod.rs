//! The PIFO-tree substrate: one programmable scheduler for every policy.
//!
//! Sivaraman et al., *Programmable Packet Scheduling at Line Rate*
//! (SIGCOMM 2016), observe that a large family of scheduling algorithms —
//! including all seven policies in this crate — reduce to a single
//! *push-in-first-out* (PIFO) priority structure plus a per-node *rank
//! program* that stamps each head packet with a rank on arrival. This
//! module is that reduction for the H-PFQ node schedulers:
//!
//! * [`PifoTree`] is a [`NodeScheduler`] implementing the driving contract
//!   (backlog / select / requeue / busy-period reset / checkpointing)
//!   exactly once, over the crate's one optimized priority structure — the
//!   SoA dual-heap eligible set ([`DualHeapEligibleSet`]).
//! * [`RankProgram`] is the pluggable policy: it stamps ranks on backlog
//!   and continuation, chooses the eligibility [`Threshold`] per dispatch,
//!   advances its virtual clock in [`RankProgram::on_dispatch`], and resets
//!   at busy-period boundaries.
//!
//! The seven in-tree programs live in [`rank`] and are proven
//! *byte-identical* to the hand-rolled originals (kept behind the
//! `legacy-schedulers` feature as the differential oracle) by the golden
//! traces and differential proptests in `tests/pifo_equivalence.rs`: same
//! dispatch order, same tags, same virtual times, bit-for-bit.
//!
//! ## The rank model
//!
//! A [`Rank`] is `(eligibility, primary, secondary)`. Members are served in
//! ascending `(primary, secondary, session id)` order among those whose
//! eligibility key has been reached; `eligibility: None` means immediately
//! eligible (the single-heap policies WFQ/SCFQ/SFQ and the round-robin
//! policies FIFO/DRR), while `Some(start)` gates the member behind the
//! monotone per-busy-period threshold exactly as WF²Q/WF²Q+ gate SEFF
//! selection on `S_i ≤ V`.
//!
//! Round-robin policies need one more hook: [`RankProgram::admit`] may
//! *rotate* a popped member to the back of the service order instead of
//! serving it (DRR's "head does not fit in the deficit" case), which is the
//! only loop in the driver.
//!
//! ## `ref_now` convention
//!
//! [`NodeScheduler::backlog`]'s `ref_now` convention — the hierarchy passes
//! `Some(real elapsed busy time)` only for the *root* server, `None` for
//! internal nodes — used to be restated as prose in every implementation.
//! The PIFO driver centralizes it: [`crate::Hierarchy`] marks every
//! non-root scheduler via [`NodeScheduler::set_is_root`], and [`PifoTree`]
//! debug-asserts that internal nodes never receive `Some`.

pub mod rank;

use hpfq_obs::snap::{SnapError, Value};

use crate::eligible::dual_heap::DualHeapEligibleSet;
use crate::eligible::PifoBackend;
use crate::scheduler::{load_opt_id, save_opt_id, NodeScheduler, SessionId, SessionTable};

/// A PIFO rank: where a head packet slots into the service order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rank {
    /// Eligibility key: `None` admits the member immediately; `Some(start)`
    /// hides it until the program's [`Threshold`] reaches `start` (the SEFF
    /// eligibility gate `S_i ≤ V`).
    pub elig: Option<f64>,
    /// Primary service key (e.g. the virtual finish tag); smaller first.
    pub primary: f64,
    /// Secondary key breaking primary ties (e.g. SCFQ's start tag); further
    /// ties go to the smaller session id, reproducing the paper's Fig. 2
    /// timelines.
    pub secondary: f64,
}

impl Rank {
    /// An immediately eligible rank (no SEFF gate).
    #[inline]
    pub fn open(primary: f64, secondary: f64) -> Self {
        Rank {
            elig: None,
            primary,
            secondary,
        }
    }

    /// A rank gated behind the eligibility key `elig` (SEFF policies pass
    /// the start tag here and the finish tag as the primary key).
    #[inline]
    pub fn gated(elig: f64, primary: f64) -> Self {
        Rank {
            elig: Some(elig),
            primary,
            secondary: 0.0,
        }
    }
}

/// How a rank program bounds eligibility for one dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// Serve the globally minimum rank; eligibility keys are ignored.
    /// The policy for every un-gated program (WFQ, SCFQ, SFQ, FIFO, DRR).
    All,
    /// Serve the minimum rank among members eligible at
    /// `max(v, min start)` — eq. (27)'s max-over-min clamp, which always
    /// admits at least one member (WF²Q+).
    Clamped(f64),
    /// Serve the minimum rank among members eligible at exactly `v`; if
    /// none is ([`RankProgram::on_fallback`] is notified), fall back to the
    /// `Clamped` rule to stay work-conserving (WF²Q's head-only GPS
    /// emulation artifact).
    ExactWithFallback(f64),
}

/// Verdict of [`RankProgram::admit`] on a popped minimum-rank member.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Serve the member now.
    Serve,
    /// Do not serve: re-insert under the given rank and pop again (DRR's
    /// "head exceeds the deficit, rotate the ring" step). The program must
    /// guarantee the rotation sequence terminates (DRR's does: every
    /// revisit credits a positive quantum).
    Rotate(Rank),
}

/// A pluggable per-node scheduling policy for [`PifoTree`]: computes ranks
/// on backlog/continuation, chooses the per-dispatch eligibility
/// [`Threshold`], advances its virtual clock on dispatch, and resets at
/// busy-period boundaries.
///
/// The driver owns the [`SessionTable`] (shares, eq. (28)/(29) tags, head
/// lengths, backlog flags — structure-of-arrays, so each dispatch pulls
/// dense tag lanes instead of 48-byte records) and the priority structure;
/// the program owns everything policy-specific (virtual clocks, GPS
/// emulation, deficit counters, …). `ref_time` arguments carry the driver's reference time
/// `T = W(0,t)/r`, advanced by `L/r` per dispatch and reset to zero at busy
/// period end — identical across all policies, which is why it lives in the
/// driver.
///
/// Programs defined *outside* this crate work exactly like the in-tree
/// ones; see `examples/custom_policy.rs`.
pub trait RankProgram {
    /// Promise that every rank this program ever emits is *open* (no
    /// eligibility key) and ring-shaped: at the moment it is emitted, the
    /// rank is either >= every queued rank (a fresh sequence value — FIFO
    /// offers, DRR rotations) or <= every queued rank (a re-offered front,
    /// e.g. DRR's in-deficit continuation, whose old sequence value was
    /// the unique minimum when it was popped). The driver then bypasses
    /// the dual-heap machinery entirely: inserts land on the sorted tail
    /// deque at one of its two ends and pops take its front, one deque
    /// operation each, matching the legacy `VecDeque` rings. Violations
    /// are caught by debug assertions in the backing structure.
    const MONOTONE_RANKS: bool = false;

    /// Short policy name for reports ("wf2q+", "wfq", …).
    fn name(&self) -> &'static str;

    /// A session with share `phi` was registered. Programs keeping
    /// per-session state (GPS clocks, deficit slots, …) extend it here; the
    /// default keeps nothing.
    fn on_add_session(&mut self, phi: f64) {
        let _ = phi;
    }

    /// Session `id` transitions idle → backlogged with a head of
    /// `head_bits`. Stamp its tags (via [`SessionTable::stamp_new_backlog`]
    /// for virtual-time policies) and return the head's rank. `ref_now`
    /// follows the [`NodeScheduler::backlog`] convention — already
    /// validated by the driver — and `ref_time` is the driver's reference
    /// time.
    fn rank_backlog(
        &mut self,
        id: SessionId,
        sessions: &mut SessionTable,
        head_bits: f64,
        ref_now: Option<f64>,
        ref_time: f64,
    ) -> Rank;

    /// A packet of `bits` joined already-backlogged session `id` behind its
    /// head (see [`NodeScheduler::arrival_hint`]). GPS-emulating policies
    /// record the exact eq. (28) base here; the default ignores it.
    fn arrival_hint(
        &mut self,
        id: SessionId,
        sessions: &SessionTable,
        bits: f64,
        ref_now: Option<f64>,
        ref_time: f64,
    ) {
        let _ = (id, sessions, bits, ref_now, ref_time);
    }

    /// Session `id` continues with a next head of `bits` after a dispatch
    /// (`S = F` continuation, eq. (28) first case, for virtual-time
    /// policies). Stamp its tags and return the new head's rank.
    fn rank_continuation(&mut self, id: SessionId, sessions: &mut SessionTable, bits: f64)
        -> Rank;

    /// Eligibility rule for the next dispatch, computed once per dispatch
    /// ([`Admission::Rotate`] rounds re-pop under the same rule); the
    /// default admits everything.
    fn threshold(&mut self, ref_time: f64) -> Threshold {
        let _ = ref_time;
        Threshold::All
    }

    /// Last word on the popped minimum-rank member; the default serves it.
    /// Round-robin programs apply their quantum accounting here.
    fn admit(&mut self, id: SessionId, sessions: &SessionTable) -> Admission {
        let _ = (id, sessions);
        Admission::Serve
    }

    /// [`Threshold::ExactWithFallback`] found no eligible member and the
    /// driver is falling back to the clamped rule. Diagnostic hook; the
    /// default ignores it.
    fn on_fallback(&mut self) {}

    /// Session `id` (head already accounted) was picked. `thr` is the
    /// eligibility threshold that admitted it (`+∞` under
    /// [`Threshold::All`]) and `dt = head_bits / rate` the head's service
    /// time; virtual-clock advance rules (RESTART-NODE line 12) go here.
    fn on_dispatch(&mut self, id: SessionId, sessions: &SessionTable, thr: f64, dt: f64) {
        let _ = (id, sessions, thr, dt);
    }

    /// Session `id` went idle (its dispatched head had no successor).
    fn on_idle(&mut self, id: SessionId) {
        let _ = id;
    }

    /// The server's busy period ended: every session is idle, the driver
    /// has zeroed its reference time and session tags. Reset virtual clocks
    /// and per-session policy state (paper eq. 4: virtual time is defined
    /// per busy period).
    fn on_busy_reset(&mut self);

    /// Current virtual time in reference-time seconds, given the driver's
    /// reference time. The default returns it as-is — correct for any
    /// policy without a virtual clock of its own (FIFO, DRR, priority, …).
    fn virtual_time(&self, ref_time: f64) -> f64 {
        ref_time
    }

    /// Serializes program state for an epoch checkpoint (the driver saves
    /// the session table, reference time, and in-service marker itself).
    /// The default returns [`Value::Null`] for stateless programs.
    fn save_state(&self) -> Value {
        Value::Null
    }

    /// Restores state saved by [`RankProgram::save_state`]. `sessions` is
    /// the already-restored session table for validation. The default
    /// accepts only [`Value::Null`].
    fn load_state(&mut self, state: &Value, sessions: &SessionTable) -> Result<(), SnapError> {
        let _ = sessions;
        if state.is_null() {
            Ok(())
        } else {
            Err(SnapError {
                at: 0,
                what: format!("rank program '{}' does not support load_state", self.name()),
            })
        }
    }
}

/// A [`NodeScheduler`] driving any [`RankProgram`] over a pluggable
/// [`PifoBackend`] priority structure — the SoA dual heap by default, the
/// hierarchical calendar queue for amortized O(1) dispatch at scale. See
/// the [module documentation](self).
#[derive(Debug, Clone)]
pub struct PifoTree<P: RankProgram, Q: PifoBackend = DualHeapEligibleSet> {
    rate: f64,
    /// SoA flow table: each dispatch reads dense tag lanes, not 48-byte
    /// per-session records (see [`SessionTable`]).
    sessions: SessionTable,
    queue: Q,
    /// Reference time `T = W(0,t)/r`, advanced by `L/r` per dispatch —
    /// identical across all seven policies, hence owned by the driver.
    t: f64,
    in_service: Option<SessionId>,
    backlogged: usize,
    /// Whether this scheduler serves the hierarchy root (the default for a
    /// standalone server); cleared by [`NodeScheduler::set_is_root`].
    is_root: bool,
    /// Dispatch batch size `k`: the eligibility [`Threshold`] is recomputed
    /// every `k` dispatches instead of every dispatch. `k = 1` (default)
    /// is the exact per-dispatch path; `k > 1` trades a bounded amount of
    /// short-term fairness (see DESIGN.md §16) for fewer virtual-clock
    /// reads on the hot path.
    batch_k: usize,
    /// Dispatches remaining under the cached [`Self::batch_rule`].
    batch_left: usize,
    /// Threshold cached for the current batch (valid while `batch_left > 0`).
    batch_rule: Threshold,
    program: P,
}

impl<P: RankProgram> PifoTree<P> {
    /// Creates a PIFO-backed server of the given rate running `program`
    /// over the default dual-heap structure.
    pub fn new(rate_bps: f64, program: P) -> Self {
        Self::with_backend(rate_bps, program)
    }
}

impl<P: RankProgram, Q: PifoBackend> PifoTree<P, Q> {
    /// Creates a PIFO-backed server over the backend chosen by the `Q`
    /// type parameter ([`PifoTree::new`] pins the dual heap).
    pub fn with_backend(rate_bps: f64, program: P) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "invalid rate {rate_bps}"
        );
        PifoTree {
            rate: rate_bps,
            sessions: SessionTable::new(),
            queue: Q::default(),
            t: 0.0,
            in_service: None,
            backlogged: 0,
            is_root: true,
            batch_k: 1,
            batch_left: 0,
            batch_rule: Threshold::All,
            program,
        }
    }

    /// Current reference time.
    pub fn reference_time(&self) -> f64 {
        self.t
    }

    /// The rank program (for policy-specific diagnostics, e.g.
    /// [`rank::Wf2qRank::fallback_dispatches`]).
    pub fn program(&self) -> &P {
        &self.program
    }
}

impl<P: RankProgram, Q: PifoBackend> NodeScheduler for PifoTree<P, Q> {
    fn rate_bps(&self) -> f64 {
        self.rate
    }

    fn add_session(&mut self, phi: f64) -> SessionId {
        let id = self.sessions.push(phi, self.rate);
        // Pre-size the priority structure's per-session arrays so the
        // per-packet insert path skips the growth check.
        self.queue.ensure_sessions(self.sessions.len());
        self.program.on_add_session(phi);
        id
    }

    #[inline]
    fn backlog(&mut self, id: SessionId, head_bits: f64, ref_now: Option<f64>) {
        debug_assert!(
            self.is_root || ref_now.is_none(),
            "internal nodes must pass ref_now = None (only the root's \
             reference time coincides with real time, paper eq. 32)"
        );
        debug_assert!(
            !self.sessions.is_backlogged(id),
            "backlog() on a backlogged session"
        );
        let rank = self
            .program
            .rank_backlog(id, &mut self.sessions, head_bits, ref_now, self.t);
        self.sessions.note_head(id, head_bits, true);
        if P::MONOTONE_RANKS {
            debug_assert!(rank.elig.is_none(), "MONOTONE_RANKS rank is gated");
            self.queue.push_monotone(id, rank.primary, rank.secondary);
        } else {
            self.queue
                .insert_ranked(id, rank.elig, rank.primary, rank.secondary);
        }
        self.backlogged += 1;
    }

    #[inline]
    fn arrival_hint(&mut self, id: SessionId, bits: f64, ref_now: Option<f64>) {
        debug_assert!(
            self.is_root || ref_now.is_none(),
            "internal nodes must pass ref_now = None"
        );
        debug_assert!(
            self.sessions.is_backlogged(id),
            "arrival_hint() on an idle session"
        );
        self.program
            .arrival_hint(id, &self.sessions, bits, ref_now, self.t);
    }

    #[inline]
    fn select_next(&mut self) -> Option<SessionId> {
        debug_assert!(
            self.in_service.is_none(),
            "select_next() while a session is in service"
        );
        // Every legacy policy returns None from an empty queue without any
        // other state change, so the early return is byte-identical. With
        // no session in service, queue membership == backlogged sessions.
        if self.backlogged == 0 {
            return None;
        }
        // One eligibility rule per dispatch: rotation rounds re-pop under
        // the same rule (the in-tree rotator, DRR, is threshold-free).
        // Batched dispatch (k > 1) holds one rule for k consecutive
        // dispatches; at k = 1 this is exactly the per-dispatch path.
        let rule = if self.batch_k > 1 {
            if self.batch_left == 0 {
                self.batch_rule = self.program.threshold(self.t);
                self.batch_left = self.batch_k;
            }
            self.batch_left -= 1;
            self.batch_rule
        } else {
            self.program.threshold(self.t)
        };
        let (id, thr) = loop {
            let (id, thr) = match rule {
                Threshold::All => {
                    let popped = if P::MONOTONE_RANKS {
                        self.queue.pop_monotone()
                    } else {
                        self.queue.pop_min_ranked()
                    };
                    // lint:allow(L002): queue verified non-empty above
                    let id = popped.expect("queue is non-empty");
                    (id, f64::INFINITY)
                }
                Threshold::Clamped(v) => {
                    let thr = self
                        .queue
                        .clamp_threshold(v)
                        // lint:allow(L002): queue verified non-empty above
                        .expect("queue is non-empty");
                    let id = self
                        .queue
                        .pop_eligible(thr)
                        // lint:allow(L002): thr = max(V, Smin) admits the Smin session
                        .expect("max(V, Smin) always admits at least one session");
                    (id, thr)
                }
                Threshold::ExactWithFallback(v) => match self.queue.pop_eligible(v) {
                    Some(id) => (id, v),
                    None => {
                        self.program.on_fallback();
                        let thr = self
                            .queue
                            .clamp_threshold(v)
                            // lint:allow(L002): queue verified non-empty above
                            .expect("queue is non-empty");
                        let id = self
                            .queue
                            .pop_eligible(thr)
                            // lint:allow(L002): thr = max(V, Smin) admits the Smin session
                            .expect("max(V, Smin) always admits at least one session");
                        (id, thr)
                    }
                },
            };
            match self.program.admit(id, &self.sessions) {
                Admission::Serve => break (id, thr),
                Admission::Rotate(rank) => {
                    if P::MONOTONE_RANKS {
                        debug_assert!(rank.elig.is_none(), "MONOTONE_RANKS rank is gated");
                        self.queue.push_monotone(id, rank.primary, rank.secondary);
                    } else {
                        self.queue
                            .insert_ranked(id, rank.elig, rank.primary, rank.secondary);
                    }
                }
            }
        };
        let dt = self.sessions.head_bits(id) / self.rate;
        // lint:allow(L006): RankProgram hook, not an Observer call — the
        // rank program's virtual clock must advance unconditionally
        self.program.on_dispatch(id, &self.sessions, thr, dt);
        // RESTART-NODE line 13.
        self.t += dt;
        self.in_service = Some(id);
        Some(id)
    }

    #[inline]
    fn requeue(&mut self, id: SessionId, next_head_bits: Option<f64>) {
        debug_assert_eq!(
            self.in_service,
            Some(id),
            "requeue() must match the in-service session"
        );
        self.in_service = None;
        match next_head_bits {
            Some(bits) => {
                let rank = self.program.rank_continuation(id, &mut self.sessions, bits);
                self.sessions.note_head(id, bits, true);
                if P::MONOTONE_RANKS {
                    debug_assert!(rank.elig.is_none(), "MONOTONE_RANKS rank is gated");
                    self.queue.push_monotone(id, rank.primary, rank.secondary);
                } else {
                    self.queue
                        .insert_ranked(id, rank.elig, rank.primary, rank.secondary);
                }
            }
            None => {
                self.sessions.set_idle(id);
                self.program.on_idle(id);
                self.backlogged -= 1;
                if self.backlogged == 0 {
                    // Busy period over (paper eq. 4): restart the reference
                    // clock, session tags, the program's virtual clock, and
                    // any half-consumed dispatch batch.
                    self.t = 0.0;
                    self.batch_left = 0;
                    self.queue.reset();
                    self.sessions.reset_tags();
                    // lint:allow(L006): RankProgram hook, not an Observer
                    // call — busy-period reset is unconditional policy state
                    self.program.on_busy_reset();
                }
            }
        }
    }

    fn backlogged(&self) -> usize {
        self.backlogged
    }

    fn virtual_time(&self) -> f64 {
        self.program.virtual_time(self.t)
    }

    fn phi(&self, id: SessionId) -> f64 {
        self.sessions.phi(id)
    }

    fn tags(&self, id: SessionId) -> (f64, f64) {
        (self.sessions.start(id), self.sessions.finish(id))
    }

    fn name(&self) -> &'static str {
        self.program.name()
    }

    fn set_is_root(&mut self, is_root: bool) {
        self.is_root = is_root;
    }

    fn set_dispatch_batch(&mut self, k: usize) {
        assert!(k >= 1, "dispatch batch must be at least 1");
        self.batch_k = k;
        // Any cached rule dies with the old batch size: the next dispatch
        // recomputes (k = 1 never reads the cache).
        self.batch_left = 0;
    }

    fn save_state(&self) -> Value {
        // The priority structure is saved verbatim (in rank order) and
        // replayed on load, so programs persist no queue-shadowing state
        // and restore needs no rank recomputation.
        Value::map(vec![
            ("backend", Value::Str("pifo".to_string())),
            ("rate", Value::F64(self.rate)),
            ("t", Value::F64(self.t)),
            ("in_service", save_opt_id(self.in_service)),
            ("sessions", self.sessions.save()),
            (
                "queue",
                Value::List(
                    self.queue
                        .members_in_order()
                        .into_iter()
                        .map(|(id, elig, primary, secondary)| {
                            Value::map(vec![
                                ("id", Value::U64(id.0 as u64)),
                                ("elig", Value::opt(elig.map(Value::F64))),
                                ("primary", Value::F64(primary)),
                                ("secondary", Value::F64(secondary)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("program", self.program.save_state()),
        ])
    }

    fn load_state(&mut self, state: &Value) -> Result<(), SnapError> {
        let backend = state.get("backend")?.as_str()?;
        if backend != "pifo" {
            return Err(SnapError {
                at: 0,
                what: format!("pifo scheduler cannot load backend '{backend}' snapshot"),
            });
        }
        let rate = state.get("rate")?.as_f64()?;
        if rate.to_bits() != self.rate.to_bits() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "pifo rate mismatch: snapshot {rate}, configured {}",
                    self.rate
                ),
            });
        }
        self.sessions = SessionTable::load(state.get("sessions")?)?;
        self.program
            .load_state(state.get("program")?, &self.sessions)?;
        self.t = state.get("t")?.as_f64()?;
        self.in_service = load_opt_id(state.get("in_service")?)?;
        self.backlogged = self.sessions.backlogged_count();
        // Restores never resume mid-batch: the threshold cache is a
        // transient perf artifact, not schedule state.
        self.batch_left = 0;
        self.queue.reset();
        self.queue.ensure_sessions(self.sessions.len());
        let mut queued = 0usize;
        let mut seen = vec![false; self.sessions.len()];
        for mv in state.get("queue")?.items()? {
            let id = mv.get("id")?.as_usize()?;
            let ev = mv.get("elig")?;
            let elig = if ev.is_null() {
                None
            } else {
                Some(ev.as_f64()?)
            };
            let primary = mv.get("primary")?.as_f64()?;
            let secondary = mv.get("secondary")?.as_f64()?;
            let valid = id < self.sessions.len()
                && !std::mem::replace(&mut seen[id], true)
                && self.sessions.is_backlogged(SessionId(id))
                && self.in_service != Some(SessionId(id))
                && primary.is_finite()
                && secondary.is_finite()
                && elig.is_none_or(f64::is_finite);
            if !valid {
                return Err(SnapError {
                    at: 0,
                    what: format!("queue entry for session {id} is invalid"),
                });
            }
            self.queue
                .insert_ranked(SessionId(id), elig, primary, secondary);
            queued += 1;
        }
        let expected = (0..self.sessions.len())
            .map(SessionId)
            .filter(|&i| self.sessions.is_backlogged(i) && self.in_service != Some(i))
            .count();
        if queued != expected {
            return Err(SnapError {
                at: 0,
                what: format!("queue holds {queued} members, session table implies {expected}"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::rank::{DrrRank, FifoRank, Wf2qPlusRank, WfqRank};
    use super::*;

    /// The Fig. 2 scenario on the PIFO substrate running the WF²Q+ rank
    /// program: session 0 (φ=0.5) interleaves with ten φ=0.05 sessions.
    #[test]
    fn wf2q_plus_program_interleaves_fig2() {
        let mut s = PifoTree::new(1.0, Wf2qPlusRank::new());
        let s0 = s.add_session(0.5);
        for _ in 0..10 {
            s.add_session(0.05);
        }
        s.backlog(s0, 1.0, Some(0.0));
        for i in 1..=10 {
            s.backlog(SessionId(i), 1.0, Some(0.0));
        }
        let mut remaining = vec![11usize, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let mut order = Vec::new();
        while let Some(id) = s.select_next() {
            order.push(id.0);
            remaining[id.0] -= 1;
            s.requeue(id, if remaining[id.0] > 0 { Some(1.0) } else { None });
        }
        assert_eq!(order.len(), 21);
        for (slot, &id) in order.iter().enumerate() {
            if slot % 2 == 0 {
                assert_eq!(id, 0, "slot {slot}");
            } else {
                assert_ne!(id, 0, "slot {slot}");
            }
        }
    }

    /// The Fig. 2 pathology under the WFQ rank program: the burst goes
    /// back-to-back (no eligibility gate).
    #[test]
    fn wfq_program_bursts_fig2() {
        let mut s = PifoTree::new(1.0, WfqRank::new());
        let s0 = s.add_session(0.5);
        for _ in 0..10 {
            s.add_session(0.05);
        }
        s.backlog(s0, 1.0, Some(0.0));
        for i in 1..=10 {
            s.backlog(SessionId(i), 1.0, Some(0.0));
        }
        let mut remaining = vec![11usize, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let mut order = Vec::new();
        while let Some(id) = s.select_next() {
            order.push(id.0);
            remaining[id.0] -= 1;
            s.requeue(id, if remaining[id.0] > 0 { Some(1.0) } else { None });
        }
        assert_eq!(&order[..10], &[0; 10]);
        assert_eq!(order[20], 0);
    }

    #[test]
    fn busy_period_reset_restarts_clocks() {
        let mut s = PifoTree::new(2.0, Wf2qPlusRank::new());
        let a = s.add_session(0.25);
        s.backlog(a, 2.0, None);
        assert_eq!(s.select_next(), Some(a));
        s.requeue(a, None);
        assert_eq!(s.backlogged(), 0);
        assert_eq!(s.virtual_time(), 0.0);
        assert_eq!(s.reference_time(), 0.0);
        assert_eq!(s.select_next(), None);
        s.backlog(a, 2.0, None);
        assert_eq!(s.tags(a).0, 0.0);
    }

    /// DRR's rotate path through `Admission::Rotate`: small packets
    /// interleave while an oversized packet accumulates deficit.
    #[test]
    fn drr_program_rotates_oversized_heads() {
        let mut s = PifoTree::new(1.0, DrrRank::with_quantum_base(1.0));
        let a = s.add_session(0.5); // quantum 0.5 bits/turn
        let b = s.add_session(0.5);
        s.backlog(a, 2.0, None); // needs 4 turns of credit
        s.backlog(b, 0.5, None);
        assert_eq!(s.select_next(), Some(b));
        s.requeue(b, Some(0.5));
        assert_eq!(s.select_next(), Some(b));
        s.requeue(b, None);
        assert_eq!(s.select_next(), Some(a));
        s.requeue(a, None);
        assert_eq!(s.backlogged(), 0);
    }

    #[test]
    fn fifo_program_serves_in_offer_order() {
        let mut s = PifoTree::new(1.0, FifoRank::new());
        let a = s.add_session(0.5);
        let b = s.add_session(0.5);
        s.backlog(b, 1.0, None);
        s.backlog(a, 1.0, None);
        assert_eq!(s.select_next(), Some(b));
        s.requeue(b, None);
        assert_eq!(s.select_next(), Some(a));
        s.requeue(a, Some(2.0));
        assert_eq!(s.select_next(), Some(a));
        s.requeue(a, None);
        assert_eq!(s.select_next(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "internal nodes must pass ref_now = None")]
    fn non_root_rejects_ref_now() {
        let mut s = PifoTree::new(1.0, Wf2qPlusRank::new());
        s.set_is_root(false);
        let a = s.add_session(0.5);
        s.backlog(a, 1.0, Some(0.0));
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        let mut s = PifoTree::new(1.0, Wf2qPlusRank::new());
        let a = s.add_session(0.5);
        let b = s.add_session(0.5);
        s.backlog(a, 1.0, Some(0.0));
        s.backlog(b, 2.0, Some(0.0));
        let first = s.select_next().unwrap();
        s.requeue(first, Some(1.0));

        let snap = s.save_state();
        let mut restored = PifoTree::new(1.0, Wf2qPlusRank::new());
        restored.add_session(0.5);
        restored.add_session(0.5);
        restored.load_state(&snap).unwrap();

        for _ in 0..8 {
            let x = s.select_next();
            let y = restored.select_next();
            assert_eq!(x, y);
            let (Some(x), Some(_)) = (x, y) else { break };
            assert_eq!(s.tags(x), restored.tags(x));
            assert_eq!(
                s.virtual_time().to_bits(),
                restored.virtual_time().to_bits()
            );
            s.requeue(x, Some(1.0));
            restored.requeue(x, Some(1.0));
        }
    }
}
