//! SFQ (Goyal, Vin & Cheng, SIGCOMM '96) as a PIFO rank program.
//!
//! Start-time fair queueing: tags are computed as in SCFQ, the virtual
//! time is the *start* tag of the packet in service, and heads are ranked
//! `(start, finish)` with ties by session id — smallest start tag first.

use hpfq_obs::snap::{SnapError, Value};

use crate::pifo::{Rank, RankProgram};
use crate::scheduler::{SessionId, SessionTable};

/// The SFQ rank program. Byte-identical to the legacy `Sfq` scheduler
/// (differential oracle behind the `legacy-schedulers` feature).
#[derive(Debug, Clone, Default)]
pub struct SfqRank {
    /// Virtual time = start tag of the packet most recently dispatched.
    v: f64,
}

impl SfqRank {
    /// Creates the program with its virtual clock at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RankProgram for SfqRank {
    fn name(&self) -> &'static str {
        "sfq"
    }

    fn rank_backlog(
        &mut self,
        id: SessionId,
        sessions: &mut SessionTable,
        head_bits: f64,
        _ref_now: Option<f64>,
        _ref_time: f64,
    ) -> Rank {
        sessions.stamp_new_backlog(id, self.v, head_bits);
        Rank::open(sessions.start(id), sessions.finish(id))
    }

    fn rank_continuation(&mut self, id: SessionId, sessions: &mut SessionTable, bits: f64) -> Rank {
        sessions.stamp_continuation(id, bits);
        Rank::open(sessions.start(id), sessions.finish(id))
    }

    fn on_dispatch(&mut self, id: SessionId, sessions: &SessionTable, _thr: f64, _dt: f64) {
        self.v = sessions.start(id);
    }

    fn on_busy_reset(&mut self) {
        self.v = 0.0;
    }

    fn virtual_time(&self, _ref_time: f64) -> f64 {
        self.v
    }

    fn save_state(&self) -> Value {
        Value::map(vec![("v", Value::F64(self.v))])
    }

    fn load_state(&mut self, state: &Value, _sessions: &SessionTable) -> Result<(), SnapError> {
        self.v = state.get("v")?.as_f64()?;
        Ok(())
    }
}
