//! FIFO (the null scheduler baseline) as a PIFO rank program.
//!
//! Head-offer order as a rank: each offered head receives the next value of
//! a monotone sequence counter as its primary key, so popping the minimum
//! rank replays the legacy `VecDeque` offer order exactly. No tags are
//! stamped ([`NodeScheduler::tags`] stays `(0, 0)`) and the virtual time is
//! the driver's reference time.
//!
//! [`NodeScheduler::tags`]: crate::NodeScheduler::tags

use hpfq_obs::snap::{SnapError, Value};

use crate::pifo::{Rank, RankProgram};
use crate::scheduler::{SessionId, SessionTable};

/// The FIFO rank program. Byte-identical to the legacy `Fifo` scheduler
/// (differential oracle behind the `legacy-schedulers` feature).
#[derive(Debug, Clone, Default)]
pub struct FifoRank {
    /// Next sequence value to hand out. `f64` is exact for sequence values
    /// below 2^53, far beyond any busy period, and the counter resets with
    /// each one. No per-session state: the driver persists the queue (and
    /// with it the offer order) verbatim across checkpoints.
    next: f64,
}

impl FifoRank {
    /// Creates the program.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_seq(&mut self) -> f64 {
        let q = self.next;
        self.next += 1.0;
        q
    }
}

impl RankProgram for FifoRank {
    // Offer order is a single global sequence counter: open ranks, strictly
    // increasing — the ring-discipline contract.
    const MONOTONE_RANKS: bool = true;

    fn name(&self) -> &'static str {
        "fifo"
    }

    fn rank_backlog(
        &mut self,
        _id: SessionId,
        _sessions: &mut SessionTable,
        _head_bits: f64,
        _ref_now: Option<f64>,
        _ref_time: f64,
    ) -> Rank {
        Rank::open(self.next_seq(), 0.0)
    }

    fn rank_continuation(&mut self, _id: SessionId, _sessions: &mut SessionTable, _bits: f64) -> Rank {
        // The next head re-joins at the back, like the legacy push_back.
        Rank::open(self.next_seq(), 0.0)
    }

    fn on_busy_reset(&mut self) {
        // No live offers remain; restart the counter so it never drifts
        // toward the 2^53 exactness bound across busy periods.
        self.next = 0.0;
    }

    fn save_state(&self) -> Value {
        Value::map(vec![("next", Value::F64(self.next))])
    }

    fn load_state(&mut self, state: &Value, _sessions: &SessionTable) -> Result<(), SnapError> {
        self.next = state.get("next")?.as_f64()?;
        Ok(())
    }
}
