//! Overlapped round-robin (after Luangsomboon & Liebeherr, "A Fast
//! Round-Robin Scheduler with Tight Fairness Bounds") as a PIFO rank
//! program.
//!
//! Classic round-robin serves *rounds* as hard barriers: every backlogged
//! session sends its quantum, then the next round starts. This program
//! relaxes the barrier into per-packet integer *finish rounds*:
//!
//! * a session of share `phi` owns `phi * quantum_base` bits of every
//!   round; a packet's finish round is the round in which its **last bit**
//!   fits, so small packets share a round (the per-session `slack` carries
//!   the unconsumed remainder of the finish round) and a large packet
//!   spans `ceil` of its length in quanta;
//! * a packet starts filling at round `max(R, prev_finish)` where `R` is
//!   the round the server is working in and `prev_finish` the session's
//!   previous finish round — a busy session fills consecutive rounds, a
//!   returning one cannot reclaim rounds it slept through (the
//!   round-number analogue of eq. (28)'s `max`) and forfeits stale slack;
//! * the PIFO rank is the **finish round** alone, ties by session id, and
//!   dispatching advances `R` to the served packet's finish round (pops
//!   are min-rank, so `R` — and therefore every rank — is non-decreasing
//!   within a busy period).
//!
//! Because ranks are small integers drawn from the narrow moving window
//! `[R, R + ceil(Lmax/quantum)]`, the hierarchical calendar backend files
//! every insert in its lowest-granularity level and pops in amortized O(1):
//! this program is the round-robin competitor whose dispatch cost stays
//! flat at 1M+ sessions. Unlike DRR's ring sequence the ranks are *not*
//! monotone — a light session backlogging mid-round slots below a heavy
//! packet's distant finish round — so the program runs on the general
//! ranked interface ([`MONOTONE_RANKS`] stays false).
//!
//! Fairness: sessions backlogged together receive within one quantum per
//! round of their share, giving a WFI-style bound of
//! `quantum/phi + Lmax/r` seconds — quantum-granular like DRR
//! (`hpfq-analysis` checks the conservation law and this bound in the
//! scheduler sweeps), not packet-sharp like WF²Q+'s `Lmax` bounds.
//!
//! [`MONOTONE_RANKS`]: RankProgram::MONOTONE_RANKS

use hpfq_obs::snap::{SnapError, Value};

use crate::pifo::{Rank, RankProgram};
use crate::scheduler::{SessionId, SessionTable};
use crate::vtime;

/// The overlapped round-robin rank program. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct RrRank {
    /// Per-session quantum in bits (`phi * quantum_base`).
    quanta: Vec<f64>,
    /// Per-session finish round of the most recently ranked head; 0 when
    /// the session has never sent this busy period.
    finish: Vec<u64>,
    /// Per-session bits still unconsumed in round `finish[i]` (always in
    /// `[0, quantum)` after ranking): the next head fills these first.
    slack: Vec<f64>,
    /// The round the server is working in: the finish round of the last
    /// dispatched packet. Non-decreasing within a busy period because
    /// dispatch order is finish-round order.
    round: u64,
    quantum_base: f64,
}

impl RrRank {
    /// Default base quantum: one 1500-byte MTU in bits, matching
    /// [`crate::pifo::rank::DrrRank::DEFAULT_QUANTUM_BASE`] so the two
    /// round-robin variants are directly comparable.
    pub const DEFAULT_QUANTUM_BASE: f64 = 12_000.0;

    /// Creates the program with the default quantum base.
    pub fn new() -> Self {
        Self::with_quantum_base(Self::DEFAULT_QUANTUM_BASE)
    }

    /// Creates the program giving a session of share `phi` a quantum of
    /// `phi * quantum_base_bits` per round. Larger quanta mean fewer rounds
    /// per packet (cheaper) but a coarser fairness granularity.
    pub fn with_quantum_base(quantum_base_bits: f64) -> Self {
        assert!(
            quantum_base_bits.is_finite() && quantum_base_bits > 0.0,
            "invalid quantum base {quantum_base_bits}"
        );
        RrRank {
            quanta: Vec::new(),
            finish: Vec::new(),
            slack: Vec::new(),
            round: 0,
            quantum_base: quantum_base_bits,
        }
    }

    /// Ranks a head of `bits`: fill the slack of round `max(R, prev_finish)`
    /// first, then whole quanta per further round; the rank is the round
    /// the last bit lands in. Finish rounds stay far below 2^53 (the
    /// counter resets each busy period), so the `u64 -> f64` rank is exact.
    fn rank_head(&mut self, id: SessionId, bits: f64) -> Rank {
        let start = self.round.max(self.finish[id.0]);
        // lint:allow(L001): integer round counters (u64), not float
        // virtual-time tags — equality is exact
        if start != self.finish[id.0] {
            // The session slept past its last finish round; banked slack in
            // that round is gone (no retroactive service).
            self.finish[id.0] = start;
            self.slack[id.0] = 0.0;
        }
        // Tolerance absorbs float drift from repeated slack updates (same
        // rationale as DRR's deficit comparisons).
        if !vtime::approx_le(bits, self.slack[id.0]) {
            let rest = bits - self.slack[id.0];
            let q = self.quanta[id.0];
            // lint:allow(L005): rest/q <= bits/quantum < 2^53 per the
            // rank_head doc — ceil() of a positive finite float is exact
            let extra = ((rest / q).ceil() as u64).max(1);
            self.finish[id.0] += extra;
            self.slack[id.0] += extra as f64 * q;
        }
        self.slack[id.0] -= bits;
        Rank::open(self.finish[id.0] as f64, 0.0)
    }
}

impl Default for RrRank {
    fn default() -> Self {
        Self::new()
    }
}

impl RankProgram for RrRank {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn on_add_session(&mut self, phi: f64) {
        self.quanta.push(phi * self.quantum_base);
        self.finish.push(0);
        self.slack.push(0.0);
    }

    fn rank_backlog(
        &mut self,
        id: SessionId,
        _sessions: &mut SessionTable,
        head_bits: f64,
        _ref_now: Option<f64>,
        _ref_time: f64,
    ) -> Rank {
        self.rank_head(id, head_bits)
    }

    fn rank_continuation(&mut self, id: SessionId, _sessions: &mut SessionTable, bits: f64) -> Rank {
        self.rank_head(id, bits)
    }

    fn on_dispatch(&mut self, id: SessionId, _sessions: &SessionTable, _thr: f64, _dt: f64) {
        // rank_continuation has not run yet, so finish[id] is still the
        // dispatched head's finish round.
        self.round = self.round.max(self.finish[id.0]);
    }

    fn on_idle(&mut self, id: SessionId) {
        // Like DRR's deficit: a drained session forfeits its leftover round
        // capacity.
        self.slack[id.0] = 0.0;
    }

    fn on_busy_reset(&mut self) {
        self.round = 0;
        self.finish.fill(0);
        self.slack.fill(0.0);
    }

    fn save_state(&self) -> Value {
        Value::map(vec![
            ("quantum_base", Value::F64(self.quantum_base)),
            (
                "quanta",
                Value::List(self.quanta.iter().map(|&q| Value::F64(q)).collect()),
            ),
            (
                "finish",
                Value::List(self.finish.iter().map(|&f| Value::U64(f)).collect()),
            ),
            (
                "slack",
                Value::List(self.slack.iter().map(|&w| Value::F64(w)).collect()),
            ),
            ("round", Value::U64(self.round)),
        ])
    }

    fn load_state(&mut self, state: &Value, sessions: &SessionTable) -> Result<(), SnapError> {
        let quantum_base = state.get("quantum_base")?.as_f64()?;
        if quantum_base.to_bits() != self.quantum_base.to_bits() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "rr quantum base mismatch: snapshot {quantum_base}, configured {}",
                    self.quantum_base
                ),
            });
        }
        let mut quanta = Vec::new();
        for qv in state.get("quanta")?.items()? {
            quanta.push(qv.as_f64()?);
        }
        let mut finish = Vec::new();
        for fv in state.get("finish")?.items()? {
            finish.push(fv.as_u64()?);
        }
        let mut slack = Vec::new();
        for wv in state.get("slack")?.items()? {
            slack.push(wv.as_f64()?);
        }
        if quanta.len() != sessions.len()
            // lint:allow(L001): vector length check on a snapshot load
            // path, not a virtual-time comparison
            || finish.len() != sessions.len()
            || slack.len() != sessions.len()
        {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "rr quanta/finish/slack counts {}/{}/{} do not match session count {}",
                    quanta.len(),
                    finish.len(),
                    slack.len(),
                    sessions.len()
                ),
            });
        }
        self.quanta = quanta;
        self.finish = finish;
        self.slack = slack;
        self.round = state.get("round")?.as_u64()?;
        Ok(())
    }
}
