//! The eight in-tree rank programs — one per [`SchedulerKind`] — each
//! proven byte-identical to its hand-rolled original in
//! `tests/pifo_equivalence.rs`; the originals remain available behind the
//! `legacy-schedulers` feature for one release as the differential oracle.
//! (The overlapped round-robin program [`RrRank`] is PIFO-native: it has no
//! legacy original and therefore no oracle entry.)
//!
//! [`crate::MixedScheduler`] holds a monomorphized `PifoTree<P>` per
//! program (rather than one tree over a program *enum*) so each policy's
//! driver specializes and inlines its rank hooks — the enum indirection
//! cost double-digit percent on the cheap policies (FIFO, DRR).
//!
//! [`SchedulerKind`]: crate::mixed::SchedulerKind

pub mod drr;
pub mod fifo;
pub mod rr;
pub mod scfq;
pub mod sfq;
pub mod wf2q;
pub mod wf2q_plus;
pub mod wfq;

pub use drr::DrrRank;
pub use fifo::FifoRank;
pub use rr::RrRank;
pub use scfq::ScfqRank;
pub use sfq::SfqRank;
pub use wf2q::Wf2qRank;
pub use wf2q_plus::Wf2qPlusRank;
pub use wfq::WfqRank;
