//! SCFQ (Golestani, INFOCOM '94; paper §6) as a PIFO rank program.
//!
//! Self-clocked: the virtual time is the finish tag of the packet most
//! recently dispatched — O(1) to maintain, no eligibility gate. Heads are
//! ranked `(finish, start)` with ties by session id, exactly the legacy
//! `tag_heap` order.

use hpfq_obs::snap::{SnapError, Value};

use crate::pifo::{Rank, RankProgram};
use crate::scheduler::{SessionId, SessionTable};

/// The SCFQ rank program. Byte-identical to the legacy `Scfq` scheduler
/// (differential oracle behind the `legacy-schedulers` feature).
#[derive(Debug, Clone, Default)]
pub struct ScfqRank {
    /// Virtual time = finish tag of the packet most recently dispatched.
    v: f64,
}

impl ScfqRank {
    /// Creates the program with its virtual clock at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RankProgram for ScfqRank {
    fn name(&self) -> &'static str {
        "scfq"
    }

    fn rank_backlog(
        &mut self,
        id: SessionId,
        sessions: &mut SessionTable,
        head_bits: f64,
        _ref_now: Option<f64>,
        _ref_time: f64,
    ) -> Rank {
        // F = max(V, F_prev) + L/r_i — Golestani's tag rule. The
        // self-clocked virtual time ignores ref_now entirely.
        sessions.stamp_new_backlog(id, self.v, head_bits);
        Rank::open(sessions.finish(id), sessions.start(id))
    }

    fn rank_continuation(&mut self, id: SessionId, sessions: &mut SessionTable, bits: f64) -> Rank {
        sessions.stamp_continuation(id, bits);
        Rank::open(sessions.finish(id), sessions.start(id))
    }

    fn on_dispatch(&mut self, id: SessionId, sessions: &SessionTable, _thr: f64, _dt: f64) {
        // Self-clocking: V jumps to the dispatched packet's finish tag.
        self.v = sessions.finish(id);
    }

    fn on_busy_reset(&mut self) {
        self.v = 0.0;
    }

    fn virtual_time(&self, _ref_time: f64) -> f64 {
        self.v
    }

    fn save_state(&self) -> Value {
        Value::map(vec![("v", Value::F64(self.v))])
    }

    fn load_state(&mut self, state: &Value, _sessions: &SessionTable) -> Result<(), SnapError> {
        self.v = state.get("v")?.as_f64()?;
        Ok(())
    }
}
