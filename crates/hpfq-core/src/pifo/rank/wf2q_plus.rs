//! WF²Q+ (the paper's contribution, §3.4) as a PIFO rank program.
//!
//! SEFF driven by the low-complexity virtual time of eq. (27): heads are
//! gated behind their start tags, the per-dispatch threshold is
//! [`Threshold::Clamped`] at `V` (the `max(V, Smin)` clamp), and each
//! dispatch advances `V ← max(V, Smin) + L/r` (RESTART-NODE line 12 — the
//! reference-time advance of line 13 lives in the driver).

use hpfq_obs::snap::{SnapError, Value};

use crate::pifo::{Rank, RankProgram, Threshold};
use crate::scheduler::{SessionId, SessionTable};

/// The WF²Q+ rank program. Byte-identical to the legacy `Wf2qPlus`
/// scheduler (differential oracle behind the `legacy-schedulers` feature).
#[derive(Debug, Clone, Default)]
pub struct Wf2qPlusRank {
    /// Virtual time `V` of eq. (27), in reference-time seconds.
    v: f64,
}

impl Wf2qPlusRank {
    /// Creates the program with its virtual clock at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RankProgram for Wf2qPlusRank {
    fn name(&self) -> &'static str {
        "wf2q+"
    }

    fn rank_backlog(
        &mut self,
        id: SessionId,
        sessions: &mut SessionTable,
        head_bits: f64,
        ref_now: Option<f64>,
        ref_time: f64,
    ) -> Rank {
        // Eq. (27): V(t+tau) >= V(t) + tau. At dispatches V is advanced by
        // L/r (pre-advanced to the packet's completion), so a mid-packet
        // arrival's real reference time never exceeds the stored V; the
        // max() below is a no-op at the root and for internal nodes, but
        // implements the formula exactly.
        let v = match ref_now {
            Some(t) => self.v + (t - ref_time).max(0.0),
            None => self.v,
        };
        sessions.stamp_new_backlog(id, v, head_bits);
        Rank::gated(sessions.start(id), sessions.finish(id))
    }

    fn rank_continuation(&mut self, id: SessionId, sessions: &mut SessionTable, bits: f64) -> Rank {
        sessions.stamp_continuation(id, bits);
        Rank::gated(sessions.start(id), sessions.finish(id))
    }

    fn threshold(&mut self, _ref_time: f64) -> Threshold {
        // Eligibility threshold max(V, Smin) — eq. (27)'s max-over-min,
        // applied by the driver via the eligible set.
        Threshold::Clamped(self.v)
    }

    fn on_dispatch(&mut self, _id: SessionId, _sessions: &SessionTable, thr: f64, dt: f64) {
        // RESTART-NODE line 12: V = max(V, Smin) + L/r.
        self.v = thr + dt;
    }

    fn on_busy_reset(&mut self) {
        self.v = 0.0;
    }

    fn virtual_time(&self, _ref_time: f64) -> f64 {
        self.v
    }

    fn save_state(&self) -> Value {
        Value::map(vec![("v", Value::F64(self.v))])
    }

    fn load_state(&mut self, state: &Value, _sessions: &SessionTable) -> Result<(), SnapError> {
        self.v = state.get("v")?.as_f64()?;
        Ok(())
    }
}
