//! WFQ (PGPS, paper §3.1) as a PIFO rank program.
//!
//! The SFF policy: every head is immediately eligible and ranked by its GPS
//! virtual finish tag (ties by session id, matching the paper's Fig. 2
//! timeline). Virtual time comes from the exact GPS emulation in
//! [`GpsClock`] — O(N) worst case per advance, as the paper notes.

use std::collections::VecDeque;

use hpfq_obs::snap::{SnapError, Value};

use crate::gps_clock::GpsClock;
use crate::pifo::{Rank, RankProgram};
use crate::scheduler::{load_pending, save_pending, SessionId, SessionTable};

/// The WFQ rank program. Byte-identical to the legacy `Wfq` scheduler
/// (differential oracle behind the `legacy-schedulers` feature).
#[derive(Debug, Clone, Default)]
pub struct WfqRank {
    clock: GpsClock,
    /// Per-session virtual start tags of queued-behind-the-head packets
    /// announced via `arrival_hint`, in arrival order: each is the exact
    /// `max(F_prev, V(a_k))` of eq. (28), consumed when the packet becomes
    /// the head.
    pending: Vec<VecDeque<f64>>,
}

impl WfqRank {
    /// Creates the program (no per-session state yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Largest number of GPS fluid departures a single virtual-clock
    /// advance has processed (see [`GpsClock::worst_sweep`]).
    pub fn worst_clock_sweep(&self) -> usize {
        self.clock.worst_sweep()
    }
}

impl RankProgram for WfqRank {
    fn name(&self) -> &'static str {
        "wfq"
    }

    fn on_add_session(&mut self, phi: f64) {
        self.pending.push(VecDeque::new());
        let gps_id = self.clock.add_session(phi);
        debug_assert_eq!(gps_id, self.pending.len() - 1);
    }

    fn rank_backlog(
        &mut self,
        id: SessionId,
        sessions: &mut SessionTable,
        head_bits: f64,
        ref_now: Option<f64>,
        ref_time: f64,
    ) -> Rank {
        let v = self.clock.advance_to(ref_now.unwrap_or(ref_time));
        debug_assert!(self.pending[id.0].is_empty());
        sessions.stamp_new_backlog(id, v, head_bits);
        self.clock.on_stamp(id.0, sessions.finish(id));
        // Finish-tag ties break by session index (secondary held at 0),
        // matching the paper's Fig. 2 timeline where session 1's 10th
        // packet (GPS finish 20) precedes the small sessions' packets.
        Rank::open(sessions.finish(id), 0.0)
    }

    fn arrival_hint(
        &mut self,
        id: SessionId,
        sessions: &SessionTable,
        bits: f64,
        ref_now: Option<f64>,
        ref_time: f64,
    ) {
        let _ = self.clock.advance_to(ref_now.unwrap_or(ref_time));
        let base = self.clock.extend_backlog(id.0, bits * sessions.inv_rate(id));
        self.pending[id.0].push_back(base);
    }

    fn rank_continuation(&mut self, id: SessionId, sessions: &mut SessionTable, bits: f64) -> Rank {
        // If the next head was announced at its arrival, its exact eq. (28)
        // start base `max(F_prev, V(a_k))` was recorded then; otherwise
        // fall back to the continuation rule S = F.
        match self.pending[id.0].pop_front() {
            Some(b) => sessions.stamp_from_base(id, b, bits),
            None => sessions.stamp_continuation(id, bits),
        }
        self.clock.on_stamp(id.0, sessions.finish(id));
        Rank::open(sessions.finish(id), 0.0)
    }

    fn on_busy_reset(&mut self) {
        self.clock.reset();
        for p in &mut self.pending {
            debug_assert!(p.is_empty(), "pending stamps at busy-period end");
            p.clear();
        }
    }

    fn virtual_time(&self, _ref_time: f64) -> f64 {
        self.clock.virtual_time()
    }

    fn save_state(&self) -> Value {
        Value::map(vec![
            ("pending", save_pending(&self.pending)),
            ("clock", self.clock.save_state()),
        ])
    }

    fn load_state(&mut self, state: &Value, sessions: &SessionTable) -> Result<(), SnapError> {
        self.pending = load_pending(state.get("pending")?, sessions.len())?;
        self.clock.load_state(state.get("clock")?)?;
        Ok(())
    }
}
