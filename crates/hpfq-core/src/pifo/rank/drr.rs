//! DRR (Shreedhar & Varghese, SIGCOMM '95; paper §6) as a PIFO rank
//! program.
//!
//! The round-robin ring becomes a monotone sequence counter: the ring
//! front is the minimum sequence value, rotating to the back assigns the
//! next value. Deficit accounting runs in [`RankProgram::admit`] — the one
//! policy exercising [`Admission::Rotate`]: each visit credits the
//! session's quantum, the head is served while it fits in the deficit, and
//! an oversized head rotates away un-crediting its turn so the deficit
//! carries over (oversized packets eventually send).
//!
//! Sequence-order equals ring-order by induction: backlog appends
//! (`push_back`), rotation re-assigns the maximum (`rotate_left`), a
//! serve-continuation keeps its old value — which remains the minimum,
//! since the session was at the front when popped and every assignment
//! since was larger.
//!
//! [`Admission::Rotate`]: crate::pifo::Admission::Rotate

use hpfq_obs::snap::{SnapError, Value};

use crate::pifo::{Admission, Rank, RankProgram};
use crate::scheduler::{SessionId, SessionTable};
use crate::vtime;

/// Per-session deficit accounting.
#[derive(Debug, Clone)]
struct DrrSlot {
    /// Quantum credited at the start of each round-robin turn, in bits.
    quantum: f64,
    /// Unused credit in bits. Carries across rounds while the head packet
    /// exceeds it; reset when the session drains.
    deficit: f64,
    /// Whether the quantum for the current turn has been credited.
    turn_credited: bool,
}

/// The DRR rank program. Byte-identical to the legacy `Drr` scheduler
/// (differential oracle behind the `legacy-schedulers` feature).
#[derive(Debug, Clone)]
pub struct DrrRank {
    slots: Vec<DrrSlot>,
    /// Per-session ring position (see the module docs).
    seq: Vec<f64>,
    /// Next sequence value to hand out.
    next: f64,
    quantum_base: f64,
}

impl DrrRank {
    /// Default base quantum: one 1500-byte MTU in bits. A session of share
    /// `phi` receives `phi * base` bits per round.
    pub const DEFAULT_QUANTUM_BASE: f64 = 12_000.0;

    /// Creates the program with the default quantum base.
    pub fn new() -> Self {
        Self::with_quantum_base(Self::DEFAULT_QUANTUM_BASE)
    }

    /// Creates the program crediting `phi * quantum_base_bits` per turn.
    /// Larger quanta lower the per-packet overhead but increase burstiness
    /// (and the WFI).
    pub fn with_quantum_base(quantum_base_bits: f64) -> Self {
        assert!(
            quantum_base_bits.is_finite() && quantum_base_bits > 0.0,
            "invalid quantum base {quantum_base_bits}"
        );
        DrrRank {
            slots: Vec::new(),
            seq: Vec::new(),
            next: 0.0,
            quantum_base: quantum_base_bits,
        }
    }

    fn next_seq(&mut self, id: SessionId) -> f64 {
        self.seq[id.0] = self.next;
        self.next += 1.0;
        self.seq[id.0]
    }
}

impl Default for DrrRank {
    fn default() -> Self {
        Self::new()
    }
}

impl RankProgram for DrrRank {
    // Ring discipline: backlog/rotation ranks are fresh maxima, and the
    // in-deficit continuation re-offers the minimum it was popped with
    // (see the module docs' induction argument).
    const MONOTONE_RANKS: bool = true;

    fn name(&self) -> &'static str {
        "drr"
    }

    fn on_add_session(&mut self, phi: f64) {
        self.slots.push(DrrSlot {
            quantum: phi * self.quantum_base,
            deficit: 0.0,
            turn_credited: false,
        });
        self.seq.push(0.0);
    }

    fn rank_backlog(
        &mut self,
        id: SessionId,
        _sessions: &mut SessionTable,
        _head_bits: f64,
        _ref_now: Option<f64>,
        _ref_time: f64,
    ) -> Rank {
        let slot = &mut self.slots[id.0];
        slot.deficit = 0.0;
        slot.turn_credited = false;
        Rank::open(self.next_seq(id), 0.0)
    }

    fn admit(&mut self, id: SessionId, sessions: &SessionTable) -> Admission {
        let slot = &mut self.slots[id.0];
        if !slot.turn_credited {
            slot.deficit += slot.quantum;
            slot.turn_credited = true;
        }
        // Tolerance absorbs float drift from repeated credits.
        let head_bits = sessions.head_bits(id);
        if vtime::approx_le(head_bits, slot.deficit) {
            slot.deficit -= head_bits;
            Admission::Serve
        } else {
            // Head does not fit: next turn (deficit carries over so the
            // packet eventually sends even if it exceeds one quantum).
            slot.turn_credited = false;
            Admission::Rotate(Rank::open(self.next_seq(id), 0.0))
        }
    }

    fn rank_continuation(&mut self, id: SessionId, _sessions: &mut SessionTable, bits: f64) -> Rank {
        let slot = &mut self.slots[id.0];
        // The front session keeps its turn (and its ring position — the old
        // sequence value is still the minimum) while the deficit covers the
        // next head; otherwise its turn ends and it rotates to the back.
        if vtime::strictly_after(bits, slot.deficit) {
            slot.turn_credited = false;
            return Rank::open(self.next_seq(id), 0.0);
        }
        Rank::open(self.seq[id.0], 0.0)
    }

    fn on_idle(&mut self, id: SessionId) {
        let slot = &mut self.slots[id.0];
        slot.deficit = 0.0;
        slot.turn_credited = false;
    }

    fn on_busy_reset(&mut self) {
        // No live offers remain; restart the sequence counter (deficits
        // were already zeroed per-session as each drained).
        self.next = 0.0;
    }

    fn save_state(&self) -> Value {
        Value::map(vec![
            ("quantum_base", Value::F64(self.quantum_base)),
            (
                "slots",
                Value::List(
                    self.slots
                        .iter()
                        .map(|s| {
                            Value::map(vec![
                                ("quantum", Value::F64(s.quantum)),
                                ("deficit", Value::F64(s.deficit)),
                                ("turn_credited", Value::Bool(s.turn_credited)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "seq",
                Value::List(self.seq.iter().map(|&q| Value::F64(q)).collect()),
            ),
            ("next", Value::F64(self.next)),
        ])
    }

    fn load_state(&mut self, state: &Value, sessions: &SessionTable) -> Result<(), SnapError> {
        let quantum_base = state.get("quantum_base")?.as_f64()?;
        if quantum_base.to_bits() != self.quantum_base.to_bits() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "drr quantum base mismatch: snapshot {quantum_base}, configured {}",
                    self.quantum_base
                ),
            });
        }
        let mut slots = Vec::new();
        for sv in state.get("slots")?.items()? {
            slots.push(DrrSlot {
                quantum: sv.get("quantum")?.as_f64()?,
                deficit: sv.get("deficit")?.as_f64()?,
                turn_credited: sv.get("turn_credited")?.as_bool()?,
            });
        }
        let mut seq = Vec::new();
        for qv in state.get("seq")?.items()? {
            seq.push(qv.as_f64()?);
        }
        if slots.len() != sessions.len() || seq.len() != sessions.len() {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "drr slot/seq counts {}/{} do not match session count {}",
                    slots.len(),
                    seq.len(),
                    sessions.len()
                ),
            });
        }
        self.slots = slots;
        self.seq = seq;
        self.next = state.get("next")?.as_f64()?;
        Ok(())
    }
}
