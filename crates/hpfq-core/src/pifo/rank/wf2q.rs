//! WF²Q (paper §3.3) as a PIFO rank program.
//!
//! The SEFF policy driven by the *exact* GPS virtual time: heads are gated
//! behind their start tags and the per-dispatch threshold is
//! [`Threshold::ExactWithFallback`] at `V_GPS` — only sessions whose head
//! has started service in the corresponding GPS system compete, with the
//! `max(V, Smin)` fallback keeping the policy work-conserving under the
//! head-only GPS emulation (see [`Wf2qRank::fallback_dispatches`]).

use std::collections::VecDeque;

use hpfq_obs::snap::{SnapError, Value};

use crate::gps_clock::GpsClock;
use crate::pifo::{Rank, RankProgram, Threshold};
use crate::scheduler::{load_pending, save_pending, SessionId, SessionTable};
use crate::vtime;

/// The WF²Q rank program. Byte-identical to the legacy `Wf2q` scheduler
/// (differential oracle behind the `legacy-schedulers` feature).
#[derive(Debug, Clone, Default)]
pub struct Wf2qRank {
    clock: GpsClock,
    /// Exact eq. (28) start bases announced via `arrival_hint`, consumed as
    /// those packets become heads.
    pending: Vec<VecDeque<f64>>,
    /// Diagnostic: dispatches where no session satisfied `S_i ≤ V_GPS` and
    /// the `max(V, Smin)` fallback fired. Provably impossible with exact
    /// GPS tracking; stays zero in all paper scenarios with the head-only
    /// emulation (asserted in tests).
    fallback_dispatches: u64,
}

impl Wf2qRank {
    /// Creates the program (no per-session state yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Dispatches that needed the work-conservation fallback; zero in every
    /// paper scenario.
    pub fn fallback_dispatches(&self) -> u64 {
        self.fallback_dispatches
    }

    /// Largest number of GPS fluid departures a single virtual-clock
    /// advance has processed (see [`GpsClock::worst_sweep`]).
    pub fn worst_clock_sweep(&self) -> usize {
        self.clock.worst_sweep()
    }
}

impl RankProgram for Wf2qRank {
    fn name(&self) -> &'static str {
        "wf2q"
    }

    fn on_add_session(&mut self, phi: f64) {
        self.pending.push(VecDeque::new());
        let gps_id = self.clock.add_session(phi);
        debug_assert_eq!(gps_id, self.pending.len() - 1);
    }

    fn rank_backlog(
        &mut self,
        id: SessionId,
        sessions: &mut SessionTable,
        head_bits: f64,
        ref_now: Option<f64>,
        ref_time: f64,
    ) -> Rank {
        // Root servers pass the exact reference time of the arrival; it may
        // lag the dispatch-advanced clock, in which case advance_to clamps
        // (bounded one-packet skew, see GpsClock docs).
        let v = self.clock.advance_to(ref_now.unwrap_or(ref_time));
        debug_assert!(self.pending[id.0].is_empty());
        sessions.stamp_new_backlog(id, v, head_bits);
        self.clock.on_stamp(id.0, sessions.finish(id));
        Rank::gated(sessions.start(id), sessions.finish(id))
    }

    fn arrival_hint(
        &mut self,
        id: SessionId,
        sessions: &SessionTable,
        bits: f64,
        ref_now: Option<f64>,
        ref_time: f64,
    ) {
        let _ = self.clock.advance_to(ref_now.unwrap_or(ref_time));
        let base = self.clock.extend_backlog(id.0, bits * sessions.inv_rate(id));
        self.pending[id.0].push_back(base);
    }

    fn rank_continuation(&mut self, id: SessionId, sessions: &mut SessionTable, bits: f64) -> Rank {
        match self.pending[id.0].pop_front() {
            Some(b) => sessions.stamp_from_base(id, b, bits),
            None => sessions.stamp_continuation(id, bits),
        }
        self.clock.on_stamp(id.0, sessions.finish(id));
        Rank::gated(sessions.start(id), sessions.finish(id))
    }

    fn threshold(&mut self, ref_time: f64) -> Threshold {
        // SEFF at the exact GPS virtual time of the dispatch instant. The
        // one-tolerance nudge absorbs drift from the piecewise slope
        // integration (e.g. Σφ of ten 0.05-shares summing to 1+2ulp); it is
        // ~9 orders of magnitude below packet granularity.
        let v = self.clock.advance_to(ref_time);
        Threshold::ExactWithFallback(vtime::nudge_up(v))
    }

    fn on_fallback(&mut self) {
        // Head-only emulation artifact; the driver falls back to the WF²Q+
        // threshold to stay work-conserving.
        self.fallback_dispatches += 1;
    }

    fn on_busy_reset(&mut self) {
        self.clock.reset();
        for p in &mut self.pending {
            debug_assert!(p.is_empty(), "pending stamps at busy-period end");
            p.clear();
        }
    }

    fn virtual_time(&self, _ref_time: f64) -> f64 {
        self.clock.virtual_time()
    }

    fn save_state(&self) -> Value {
        Value::map(vec![
            ("pending", save_pending(&self.pending)),
            ("clock", self.clock.save_state()),
            ("fallback_dispatches", Value::U64(self.fallback_dispatches)),
        ])
    }

    fn load_state(&mut self, state: &Value, sessions: &SessionTable) -> Result<(), SnapError> {
        self.pending = load_pending(state.get("pending")?, sessions.len())?;
        self.clock.load_state(state.get("clock")?)?;
        self.fallback_dispatches = state.get("fallback_dispatches")?.as_u64()?;
        Ok(())
    }
}
